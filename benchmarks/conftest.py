"""Shared fixtures for the benchmark suite.

Each benchmark file reproduces one table or figure of the paper.  Several of
them analyse the *same* trained baseline models (Tables 5, Figures 3 and 4),
so those models are trained once per benchmark session here and shared.

All benchmarks run at :class:`repro.eval.ExperimentScale` "quick", which is
sized so the whole suite finishes in minutes on a laptop CPU.  Set the
environment variable ``REPRO_BENCH_STEPS`` / ``REPRO_BENCH_BLOCKS`` to scale
the runs up towards the paper's setup.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.eval.harness import ExperimentHarness, ExperimentScale


def _scale_from_environment() -> ExperimentScale:
    scale = ExperimentScale.quick()
    steps = os.environ.get("REPRO_BENCH_STEPS")
    blocks = os.environ.get("REPRO_BENCH_BLOCKS")
    if steps:
        scale = replace(scale, num_training_steps=int(steps))
    if blocks:
        scale = replace(
            scale,
            ithemal_dataset_size=int(blocks),
            bhive_dataset_size=max(int(blocks) // 5, 20),
        )
    return scale


@pytest.fixture(scope="session")
def quick_scale() -> ExperimentScale:
    """The experiment scale used by every benchmark."""
    return _scale_from_environment()


@pytest.fixture(scope="session")
def shared_harness(quick_scale) -> ExperimentHarness:
    """One harness (and hence one pair of datasets) for the whole session."""
    return ExperimentHarness(quick_scale)


@pytest.fixture(scope="session")
def baseline_models(shared_harness):
    """GRANITE, Ithemal+ and Ithemal trained on the Ithemal-like dataset.

    Used by the Table 5 benchmark and re-analysed by the Figure 3/4
    benchmarks, so they are trained exactly once per session.
    """
    return {
        "granite": shared_harness.train_standard_model("granite"),
        "ithemal+": shared_harness.train_standard_model("ithemal+"),
        "ithemal": shared_harness.train_standard_model("ithemal"),
    }


def format_paper_comparison(title: str, rows) -> str:
    """Formats (label, measured, paper) rows for the benchmark reports."""
    lines = [title, f"{'':<34} {'measured':>12} {'paper':>12}"]
    for label, measured, paper_value in rows:
        paper_text = f"{paper_value:12.4f}" if paper_value is not None else f"{'n/a':>12}"
        lines.append(f"{label:<34} {measured:12.4f} {paper_text}")
    return "\n".join(lines)
