"""Section 5.2 ablation: the impact of the decoder network.

Paper claim: replacing Ithemal's single dot-product decoder with the
multi-layer feed-forward ReLU decoder (producing Ithemal+) improves its MAPE
by 0.25 / 0.39 / 1.1 percentage points on Ivy Bridge / Haswell / Skylake —
the extra non-linearity relieves the LSTM of having to model the throughput
computation itself.
"""


from repro.eval import paper_reference as paper
from repro.eval.ablations import DecoderAblationResult
from repro.data.datasets import TARGET_MICROARCHITECTURES

from conftest import format_paper_comparison


def test_decoder_ablation(benchmark, baseline_models):
    vanilla = baseline_models["ithemal"]
    extended = baseline_models["ithemal+"]

    def analyse():
        return DecoderAblationResult(
            dot_product_mape={m: vanilla.mape(m) for m in TARGET_MICROARCHITECTURES},
            mlp_decoder_mape={m: extended.mape(m) for m in TARGET_MICROARCHITECTURES},
            paper_improvement=paper.DECODER_ABLATION_IMPROVEMENT,
        )

    result = benchmark.pedantic(analyse, rounds=1, iterations=1)

    print()
    print(result.format_table())
    rows = [
        (
            f"decoder improvement / {microarchitecture}",
            result.improvement(microarchitecture),
            paper.DECODER_ABLATION_IMPROVEMENT[microarchitecture],
        )
        for microarchitecture in TARGET_MICROARCHITECTURES
    ]
    print(format_paper_comparison("Decoder ablation — MAPE reduction from MLP decoder", rows))

    # Paper shape: the MLP decoder improves the LSTM baseline on average.
    assert result.average_improvement() > 0.0
