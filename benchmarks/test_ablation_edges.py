"""DESIGN.md ablation: the value of the data-dependency edges.

The paper's central argument is that representing basic blocks as dependency
graphs — rather than flat instruction sequences — provides the inductive
bias that lets the model reason about code more accurately (Sections 1 and
2.2).  This ablation isolates that claim inside GRANITE itself: the full
graph is compared against a degraded graph that keeps only the sequential
(structural) edges, i.e. roughly the information a sequence model sees.
"""

import numpy as np

from repro.eval.ablations import run_edge_ablation


def test_dependency_edge_ablation(benchmark, quick_scale):
    result = benchmark.pedantic(lambda: run_edge_ablation(quick_scale), rounds=1, iterations=1)

    print()
    print(result.format_table())
    benefit = result.dependency_edge_benefit()
    print(f"mean MAPE reduction from dependency edges: {benefit:+.4f}")

    full = np.mean(list(result.full_graph_mape.values()))
    structural = np.mean(list(result.structural_only_mape.values()))

    # Paper shape: the dependency edges carry useful signal — the full graph
    # is at least as accurate as the structural-only encoding.
    assert full <= structural + 0.04
