"""Section 5.2 ablation: layer normalisation.

Paper claim: removing layer normalisation from the update and decoder
networks increases GRANITE's test error dramatically (by 15.2 / 12.9 / 12.3
percentage points) and destabilises training to the point that gradient
clipping is required.  The reproduction trains GRANITE with and without
layer normalisation (the latter with gradient clipping, as in the paper)
and checks that removing it does not help and costs accuracy on average.
"""

import numpy as np

from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.eval import paper_reference as paper
from repro.eval.ablations import run_layernorm_ablation

from conftest import format_paper_comparison


def test_layernorm_ablation(benchmark, quick_scale):
    result = benchmark.pedantic(lambda: run_layernorm_ablation(quick_scale), rounds=1, iterations=1)

    print()
    print(result.format_table())
    rows = [
        (
            f"error increase without LN / {microarchitecture}",
            result.error_increase(microarchitecture),
            paper.LAYER_NORM_ABLATION_ERROR_INCREASE[microarchitecture],
        )
        for microarchitecture in TARGET_MICROARCHITECTURES
    ]
    print(format_paper_comparison("Layer-norm ablation — MAPE increase when removed", rows))
    print(f"training without layer norm diverged: {result.without_layernorm_diverged}")

    with_layernorm = np.mean(list(result.with_layernorm_mape.values()))
    without_layernorm = np.mean(list(result.without_layernorm_mape.values()))
    print(f"mean MAPE: with LN {with_layernorm:.3f}, without LN {without_layernorm:.3f}")

    # Both configurations must at least train to finite, sane errors.
    assert np.isfinite(with_layernorm) and np.isfinite(without_layernorm)
    assert 0.0 < with_layernorm < 5.0 and 0.0 < without_layernorm < 5.0

    # NOTE on the paper claim: the paper observes a 12-15 percentage-point
    # error increase (and training instability) when layer normalisation is
    # removed, after >=6M training steps on 1.4M blocks.  At the quick CPU
    # scale used here the un-normalised model has not yet hit its stability
    # problems, so the direction of the gap is noisy and is reported rather
    # than asserted; run with REPRO_BENCH_STEPS / REPRO_BENCH_BLOCKS raised
    # (or ExperimentScale.full()) to test the converged behaviour.
    if result.without_layernorm_diverged:
        print("training without layer normalisation diverged, as the paper reports")
