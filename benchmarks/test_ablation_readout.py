"""DESIGN.md ablation: per-instruction decoding vs a global readout.

The paper attributes GRANITE's balanced over/under-estimation (Figures 3-4)
to its per-instruction decoding — the decoder predicts one contribution per
instruction mnemonic node and the block prediction is their sum, which bakes
the additive structure of throughput into the model.  This ablation trains
an otherwise identical GRANITE whose decoder instead reads the graph-level
global feature, and compares accuracy and error balance.
"""

import numpy as np

from repro.eval.ablations import run_readout_ablation


def test_readout_ablation(benchmark, quick_scale):
    result = benchmark.pedantic(lambda: run_readout_ablation(quick_scale), rounds=1, iterations=1)

    print()
    print(result.format_table())
    print(f"per-instruction underestimation fractions: "
          f"{ {k: round(v, 3) for k, v in result.per_instruction_underestimation.items()} }")
    print(f"global-readout underestimation fractions:  "
          f"{ {k: round(v, 3) for k, v in result.global_readout_underestimation.items()} }")
    print(f"mean MAPE benefit of per-instruction decoding: "
          f"{result.per_instruction_benefit():+.4f}")

    per_instruction = np.mean(list(result.per_instruction_mape.values()))
    global_readout = np.mean(list(result.global_readout_mape.values()))

    # Paper shape: the per-instruction readout (the paper's design) is at
    # least as accurate as decoding a single graph-level embedding.
    assert per_instruction <= global_readout + 0.04
