"""Chaos benchmark: seeded fault storm replayed against the self-healing stack.

A deterministic :class:`~repro.serve.FaultPlan` (crash / hang / slow_reply /
corrupt_reply, all keyed on a content hash of the block text and the fault
seed) is armed underneath a live :class:`AsyncPredictionService` backed by
real worker processes, and a seeded, Zipf-skewed trace is replayed through
it.  Crash-prone texts kill their worker mid-batch, hang-prone texts stall
past the job watchdog, corrupt replies are rejected by the parent — and the
self-healing plane (watchdog kill + respawn, per-worker circuit breaker,
bounded retries) has to absorb all of it.

The gate is the availability story the resilience work promises:

* **zero lost requests** — every request the trace offered resolves as a
  success; nothing errors, nothing vanishes, nothing is double-completed;
* **availability >= 99.5%** — requests complete within ``BUDGET_MS`` even
  while workers are being killed and respawned under them;
* **the breaker round-trips** — at least one trip (a worker taken out of
  the routing ring) and at least one recovery (probe admitted, worker
  re-earns traffic), with no breaker left open once the storm passes.

Because every fault decision is a pure function of (seed, kind, text) and
faults fire only against first-incarnation workers, the same seed yields
the same storm: the benchmark replays the trace twice and asserts the
deterministic outcome fields are identical.  Realized numbers land in
``BENCH_chaos.json`` next to this file — including the fault plan itself,
so the exact storm is diffable and re-runnable.

``REPRO_BENCH_STEPS`` scales the trace like the other serving benchmarks.
"""

import json
import os

from repro.serve import (
    AsyncOptions,
    AsyncPredictionService,
    BreakerPolicy,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    ServiceConfig,
    SloPolicy,
    TraceReplayer,
    synthesize_trace,
)

TRACE_SEED = 37
FAULT_SEED = 53
NUM_KEYS = 16
MEAN_RATE_RPS = 120.0
BUDGET_MS = 3000.0  # per-request deadline the availability gate judges
AVAILABILITY_FLOOR = 0.995
WARMUP_REQUESTS = 6

REPORT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_chaos.json")


def _bench_steps() -> int:
    return int(os.environ.get("REPRO_BENCH_STEPS", "0") or 0)


def _num_requests() -> int:
    steps = _bench_steps()
    return 400 if steps >= 1000 else 200


def _fault_plan() -> FaultPlan:
    """The storm: every worker-side fault kind, seeded on block content.

    ``hang``'s delay is far past the job watchdog, so a hang is observed
    as a watchdog kill + respawn; ``slow_reply`` stays under it, so a slow
    reply is absorbed as plain latency.
    """
    return FaultPlan(
        seed=FAULT_SEED,
        specs=(
            FaultSpec("crash", probability=0.25),
            FaultSpec("hang", probability=0.15, delay_ms=1500.0),
            FaultSpec("slow_reply", probability=0.20, delay_ms=120.0),
            FaultSpec("corrupt_reply", probability=0.15),
        ),
    )


def _service_config(plan: FaultPlan) -> ServiceConfig:
    return ServiceConfig(
        num_workers=2,
        max_batch_size=4,
        worker_job_timeout_s=0.5,
        breaker_policy=BreakerPolicy(
            failure_threshold=1,
            reset_timeout_s=0.25,
            probe_quota=1,
            success_threshold=1,
        ),
        fault_plan=plan,
    )


def _async_options() -> AsyncOptions:
    return AsyncOptions(
        max_latency_ms=2.0,
        max_queue_blocks=8192,
        max_concurrent_flushes=4,
        retry_policy=RetryPolicy(
            max_attempts=4, base_delay_ms=2.0, max_delay_ms=50.0, seed=FAULT_SEED
        ),
    )


def _warmup_texts(plan: FaultPlan, count: int):
    """Out-of-universe block texts that no fault spec selects.

    Warming spawns the worker pool and primes the code paths without
    consuming any worker's first (fault-eligible) incarnation, so the
    storm the trace experiences is exactly the plan's.
    """
    texts = []
    candidate = 0
    while len(texts) < count:
        text = f"mov rax, {9000 + candidate}"
        candidate += 1
        if any(plan.is_prone(kind, text) for kind in ("crash", "hang")):
            continue
        texts.append(text)
    return texts


def _run_leg(trace, plan: FaultPlan, slo: SloPolicy):
    """One replay of ``trace`` against a fresh faulted service."""
    with AsyncPredictionService(
        _async_options(), service_config=_service_config(plan)
    ) as front_end:
        for text in _warmup_texts(plan, WARMUP_REQUESTS):
            front_end.predict_blocks([text])
        replayer = TraceReplayer(front_end, slo=slo, result_timeout_s=120.0)
        report = replayer.run(trace)
        snapshot = front_end.snapshot()
    return report, snapshot


def _deterministic_outcome(report, snapshot):
    """The outcome fields a same-seed re-run must reproduce exactly."""
    return {
        "num_requests": report.num_requests,
        "completed": report.completed,
        "errors": report.errors,
        "rejected": report.rejected,
        "lost": report.lost,
        "retries_exhausted": snapshot.resilience.retries_exhausted,
        "degraded_responses": snapshot.resilience.degraded_responses,
    }


def test_chaos_storm_zero_lost_and_breaker_recovers():
    num_requests = _num_requests()
    plan = _fault_plan()
    trace = synthesize_trace(
        num_requests=num_requests,
        seed=TRACE_SEED,
        num_keys=NUM_KEYS,
        zipf_alpha=1.1,
        mean_rate_rps=MEAN_RATE_RPS,
        burstiness=4.0,
        burst_fraction=0.2,
    )
    universe = sorted({text for request in trace.requests for text in request.block_texts})
    prone = {
        kind: plan.prone_texts(kind, universe)
        for kind in ("crash", "hang", "slow_reply", "corrupt_reply")
    }
    # The seed must actually select victims, or the run proves nothing.
    assert prone["crash"], "fault seed selects no crash-prone texts"
    slo = SloPolicy(
        budget_ms=BUDGET_MS,
        max_violation_rate=1.0 - AVAILABILITY_FLOOR,
        max_error_rate=0.0,
    )

    report, snapshot = _run_leg(trace, plan, slo)
    rerun_report, rerun_snapshot = _run_leg(trace, plan, slo)

    availability = report.availability(BUDGET_MS)
    print()
    print(
        f"--- chaos replay: {num_requests} requests over {len(universe)} texts "
        f"({len(prone['crash'])} crash / {len(prone['hang'])} hang / "
        f"{len(prone['slow_reply'])} slow / {len(prone['corrupt_reply'])} "
        f"corrupt prone) ---"
    )
    for label, rep, snap in (("run 1", report, snapshot), ("run 2", rerun_report, rerun_snapshot)):
        print(
            f"{label}  completed={rep.completed}/{rep.num_requests}  lost={rep.lost}  "
            f"availability={rep.availability(BUDGET_MS):.4f}  "
            f"p99={rep.p99_ms:.1f} ms  respawns={snap.model.respawns}  "
            f"trips={snap.model.breaker_trips}  "
            f"recoveries={snap.model.breaker_recoveries}  "
            f"retries={snap.resilience.retries}"
        )

    for rep, snap in ((report, snapshot), (rerun_report, rerun_snapshot)):
        # Zero-lost invariant: everything offered resolves as a success.
        assert rep.completed == num_requests
        assert rep.errors == 0 and rep.rejected == 0 and rep.lost == 0
        # Availability within the deadline, storm included.
        assert rep.availability(BUDGET_MS) >= AVAILABILITY_FLOOR, (
            f"availability {rep.availability(BUDGET_MS):.4f} below "
            f"{AVAILABILITY_FLOOR} at {BUDGET_MS:.0f} ms"
        )
        assert rep.slo.met, f"SLO violations: {rep.slo.violations}"
        # Self-healing visibly engaged and fully unwound: workers died and
        # were respawned, the breaker tripped and re-earned traffic, and
        # no worker is still fenced off once the storm passes.
        assert snap.model.respawns >= 1
        assert snap.model.breaker_trips >= 1
        assert snap.model.breaker_recoveries >= 1
        assert snap.model.breaker_open_workers == 0

    # Same seed, same storm: the deterministic outcome is bit-identical.
    assert _deterministic_outcome(report, snapshot) == _deterministic_outcome(
        rerun_report, rerun_snapshot
    )

    payload = {
        "benchmark": "chaos_trace_replay",
        "scale": {
            "num_requests": num_requests,
            "bench_steps": _bench_steps(),
            "num_texts": len(universe),
            "prone_counts": {kind: len(texts) for kind, texts in prone.items()},
        },
        "fault_plan": plan.to_dict(),
        "trace": trace.metadata,
        "slo": slo.to_dict(),
        "gate": {
            "budget_ms": BUDGET_MS,
            "availability_floor": AVAILABILITY_FLOOR,
            "availability": availability,
            "lost": report.lost,
        },
        "report": report.to_dict(),
        "resilience": {
            "respawns": snapshot.model.respawns,
            "breaker_trips": snapshot.model.breaker_trips,
            "breaker_probes": snapshot.model.breaker_probes,
            "breaker_recoveries": snapshot.model.breaker_recoveries,
            "breaker_open_workers": snapshot.model.breaker_open_workers,
            "job_timeouts": snapshot.model.job_timeouts,
            "corrupt_replies": snapshot.model.corrupt_replies,
            "retries": snapshot.resilience.retries,
            "retries_exhausted": snapshot.resilience.retries_exhausted,
        },
        "deterministic_outcome": _deterministic_outcome(report, snapshot),
    }
    with open(REPORT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {REPORT_PATH}")
