"""Figure 3: measured-vs-predicted heatmaps on the Ithemal dataset.

Paper claim: GRANITE's density is concentrated along the y = x diagonal,
visibly more so than the LSTM baseline, across all three microarchitectures.
The reproduction summarises each heatmap by its "diagonal mass" (fraction of
blocks predicted within 25 % of the measurement) and renders an ASCII
version of the plot.
"""

import numpy as np

from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.eval.figures import compute_heatmaps, render_heatmap_ascii


def test_figure3_heatmaps(benchmark, baseline_models, shared_harness):
    models = {name: trained.model for name, trained in baseline_models.items()
              if name in ("granite", "ithemal+")}
    test_split = shared_harness.ithemal_splits.test

    result = benchmark.pedantic(
        lambda: compute_heatmaps(models, test_split), rounds=1, iterations=1
    )

    print()
    for model_name in models:
        for microarchitecture in TARGET_MICROARCHITECTURES:
            mass = result.diagonal_mass[model_name][microarchitecture]
            print(f"{model_name:<10} {microarchitecture:<11} diagonal mass (±25%): {mass:.3f}")
    print("\nGRANITE Haswell heatmap (measured →, predicted ↑):")
    print(render_heatmap_ascii(result.histograms["granite"]["haswell"]))

    # Every heatmap contains a meaningful share of the test blocks (the
    # paper crops at 10 cycles per iteration, which covers most blocks).
    for model_name in models:
        for microarchitecture in TARGET_MICROARCHITECTURES:
            histogram = result.histograms[model_name][microarchitecture]
            assert histogram.sum() > 0.3 * len(test_split)

    # Paper shape: GRANITE concentrates at least as much probability mass
    # near the diagonal as the LSTM baseline, on average.
    granite_mass = np.mean(
        [result.diagonal_mass["granite"][m] for m in TARGET_MICROARCHITECTURES]
    )
    baseline_mass = np.mean(
        [result.diagonal_mass["ithemal+"][m] for m in TARGET_MICROARCHITECTURES]
    )
    print(f"\nmean diagonal mass: granite={granite_mass:.3f} ithemal+={baseline_mass:.3f}")
    assert granite_mass >= baseline_mass - 0.05
