"""Figure 4: distribution of relative prediction errors.

Paper claim: vanilla Ithemal has a tendency to underestimate the throughput
(the error distribution is shifted towards negative relative errors), while
GRANITE's distribution is centred — the paper attributes this to the
per-instruction decoding.  The reproduction compares the underestimation
fraction (blocks with predicted < measured) of the two model families.
"""

import numpy as np

from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.eval.figures import compute_error_distributions


def test_figure4_relative_error_distribution(benchmark, baseline_models, shared_harness):
    models = {name: trained.model for name, trained in baseline_models.items()}
    test_split = shared_harness.ithemal_splits.test

    result = benchmark.pedantic(
        lambda: compute_error_distributions(models, test_split), rounds=1, iterations=1
    )

    print()
    for model_name in models:
        for microarchitecture in TARGET_MICROARCHITECTURES:
            fraction = result.underestimation[model_name][microarchitecture]
            print(f"{model_name:<10} {microarchitecture:<11} underestimated fraction: {fraction:.3f}")

    # Histograms cover the whole test split.
    for model_name in models:
        for microarchitecture in TARGET_MICROARCHITECTURES:
            counts, edges = result.histograms[model_name][microarchitecture]
            assert counts.sum() == len(test_split)
            assert len(edges) == len(counts) + 1

    # Paper shape: GRANITE's predictions are at least as balanced around the
    # measurement as the LSTM baselines' (its distance from the ideal 0.5
    # underestimation fraction is not larger).
    def mean_imbalance(model_name):
        return np.mean(
            [abs(result.underestimation[model_name][m] - 0.5) for m in TARGET_MICROARCHITECTURES]
        )

    granite_imbalance = mean_imbalance("granite")
    lstm_imbalance = min(mean_imbalance("ithemal"), mean_imbalance("ithemal+"))
    print(f"\nmean |underestimation - 0.5|: granite={granite_imbalance:.3f} "
          f"best LSTM baseline={lstm_imbalance:.3f}")
    assert granite_imbalance <= lstm_imbalance + 0.10
