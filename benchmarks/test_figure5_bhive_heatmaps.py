"""Figure 5: GRANITE heatmaps when trained and tested on the BHive dataset.

Paper claim: the behaviour observed on the Ithemal dataset carries over to
BHive — GRANITE's predictions stay concentrated along the diagonal, with a
balanced split between over- and under-estimation, on the 5x smaller
dataset (hence sparser heatmaps).
"""


from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.eval.figures import compute_error_distributions, compute_heatmaps, render_heatmap_ascii


def test_figure5_bhive_heatmaps(benchmark, quick_scale, shared_harness):
    trained = shared_harness.train_standard_model("granite", splits=shared_harness.bhive_splits)
    models = {"granite": trained.model}
    test_split = shared_harness.bhive_splits.test

    result = benchmark.pedantic(
        lambda: compute_heatmaps(models, test_split), rounds=1, iterations=1
    )
    errors = compute_error_distributions(models, test_split)

    print()
    for microarchitecture in TARGET_MICROARCHITECTURES:
        mass = result.diagonal_mass["granite"][microarchitecture]
        fraction = errors.underestimation["granite"][microarchitecture]
        print(f"granite/BHive {microarchitecture:<11} diagonal mass {mass:.3f}  "
              f"underestimated {fraction:.3f}")
    print("\nGRANITE Skylake heatmap on BHive (measured →, predicted ↑):")
    print(render_heatmap_ascii(result.histograms["granite"]["skylake"]))

    for microarchitecture in TARGET_MICROARCHITECTURES:
        histogram = result.histograms["granite"][microarchitecture]
        # The BHive-like test split is small (sparser heatmaps, as in the
        # paper), but a meaningful share of blocks must land in the plot.
        assert histogram.sum() > 0.15 * len(test_split)
        # Predictions are neither all-over nor all-under the measurement.
        fraction = errors.underestimation["granite"][microarchitecture]
        assert 0.01 < fraction < 0.99
