"""Inference throughput: seed path vs. fast path vs. batched vs. cached.

The PR this benchmark guards replaced tape-Tensor inference with a no-grad
numpy fast path, added micro-batched prediction with encode caches, and a
weights-versioned prediction cache.  The scenarios measured here:

* **seed** — the pre-PR behaviour, reconstructed faithfully: one
  ``predict`` call per block, tape :class:`Tensor` wrappers
  (``use_fast_path(False)``), no caches.  This is the baseline every
  speedup is quoted against.
* **single (cold)** — per-block calls on the fast path, all caches cold:
  the first time a block is ever seen.
* **batched (cold)** — 64-block micro-batches on the fast path, prediction
  cache disabled: new blocks arriving in bulk.
* **single/batched (steady state)** — the workload that motivates the PR
  (compiler-autotuning loops and eval sweeps predict the same blocks over
  and over): warm encode caches and a warm prediction cache.

Wall-clock measurements use best-of-N to be robust against CI noise.

Scale: by default the seed-vs-fast-path scenarios use the reduced "small"
model configs (fast enough for a smoke run) with loose speedup margins.
Setting ``REPRO_BENCH_STEPS`` to a paper-ish budget (>= 1000) switches
them to the paper-scale (Table 4) configurations, where the numpy kernels
dominate and the margins tighten — the float64-vs-float32 comparison
always runs at paper scale, as before.
"""

import os
import time

import numpy as np
import pytest

from repro.data.datasets import build_ithemal_like_dataset
from repro.data.synthetic import BlockGenerator
from repro.models import create_model
from repro.nn.tensor import use_fast_path, use_fused_ops
from repro.testing.equivalence import assert_prediction_equivalent

NUM_BLOCKS = 64
BATCH_SIZE = 64

#: Minimum speedup of the float32 batched fast path over float64 on the
#: steady-state serving workload (warm encode caches, compute every call).
FLOAT32_SPEEDUP_TARGET = 1.5


def _paper_scale() -> bool:
    """Whether this run asked for a paper-scale benchmark budget."""
    return int(os.environ.get("REPRO_BENCH_STEPS", "0") or 0) >= 1000


def _speedup_targets():
    """``(cold_batched, warm_single, warm_batched)`` speedup floors.

    Quick scale runs the reduced models, where fixed per-call overhead
    (parsing, packing, cache keys) dilutes the kernel win — the floors stay
    loose so the smoke run never flakes.  At paper scale the matmuls
    dominate: the steady-state paths are answered from the prediction
    cache while the seed path pays a full 256-wide forward, so the floors
    tighten substantially.
    """
    if _paper_scale():
        return 1.5, 10.0, 40.0
    return 1.5, 5.0, 20.0


def _measure(function, repeats: int = 3) -> float:
    """Returns the best-of-``repeats`` wall time of ``function()``."""
    function()  # warm-up run, excluded
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _seed_replica(model, name: str, small: bool):
    """A cache-free replica of ``model`` matching the pre-PR code path."""
    replica = create_model(name, small=small, seed=99)
    replica.load_state_dict(model.state_dict())
    replica.prediction_cache_size = 0
    # Zero-capacity encode caches: every call re-encodes, like the seed.
    for cache in replica.encode_caches():
        cache.maxsize = 0
    replica.clear_encode_cache()
    return replica


@pytest.fixture(scope="module")
def blocks():
    return BlockGenerator(seed=17).generate_blocks(NUM_BLOCKS)


@pytest.mark.parametrize("name", ["granite", "ithemal+"])
def test_inference_throughput(name, blocks):
    """Records blocks/sec per scenario and checks the PR's speedup targets."""
    small = not _paper_scale()
    model = create_model(name, small=small, seed=99)
    seed_model = _seed_replica(model, name, small)

    def seed_per_block():
        # use_fused_ops(False) keeps the tape faithful to the pre-fast-path
        # code: without it the no-grad tape forward would record the fused
        # training ops (fewer nodes), flattering the seed baseline.
        with use_fast_path(False), use_fused_ops(False):
            for block in blocks:
                seed_model.predict([block])

    seconds_seed = _measure(seed_per_block) / NUM_BLOCKS

    # Fast path, everything cold (measured once; caches filled as a side
    # effect are cleared again before the timed run inside _measure's loop).
    model.prediction_cache_size = 0

    def single_all_cold():
        model.clear_encode_cache()
        for block in blocks:
            model.predict([block])

    seconds_single_cold = _measure(single_all_cold) / NUM_BLOCKS

    def batched_cold():
        model.clear_encode_cache()
        model.predict(blocks, batch_size=BATCH_SIZE)

    seconds_batched_cold = _measure(batched_cold) / NUM_BLOCKS

    # Steady state: warm encode caches + warm prediction cache (the repeated
    # eval-sweep / autotuning workload this serving stack was built for).
    model.prediction_cache_size = 8192
    model.predict(blocks, batch_size=BATCH_SIZE)  # fill every cache

    def single_steady_state():
        for block in blocks:
            model.predict([block])

    seconds_single_warm = _measure(single_steady_state, repeats=5) / NUM_BLOCKS

    def batched_steady_state():
        model.predict(blocks, batch_size=BATCH_SIZE)

    seconds_batched_warm = _measure(batched_steady_state, repeats=5) / NUM_BLOCKS

    def rate(seconds: float) -> str:
        return f"{1.0 / seconds:10.0f} blocks/s ({seconds * 1e3:7.3f} ms/block)"

    print()
    scale_label = "paper scale" if _paper_scale() else "small configs"
    print(f"--- {name} inference throughput ({scale_label}) ---")
    print(f"seed (per-block, tape):    {rate(seconds_seed)}   1.0x")
    for label, seconds in [
        ("single, cold caches", seconds_single_cold),
        ("batched-64, cold caches", seconds_batched_cold),
        ("single, steady state", seconds_single_warm),
        ("batched-64, steady state", seconds_batched_warm),
    ]:
        print(f"{label:<26} {rate(seconds)}  {seconds_seed / seconds:5.1f}x")

    # Correctness: batched == per-block == seed path.
    model.clear_prediction_cache()
    batched = model.predict(blocks, batch_size=BATCH_SIZE)
    model.clear_prediction_cache()
    for index in (0, NUM_BLOCKS // 2, NUM_BLOCKS - 1):
        single = model.predict([blocks[index]])
        for task in model.tasks:
            assert np.allclose(single[task][0], batched[task][index])
    with use_fast_path(False):
        reference = seed_model.predict(blocks)
    for task in model.tasks:
        assert np.allclose(batched[task], reference[task])

    # Speedup targets of the PR, scaled with the benchmark budget: loose on
    # the reduced configs (overhead-bound), tighter at paper scale where
    # the steady-state workload answers from the prediction cache while the
    # seed path pays a full-width forward.  Batching alone must still beat
    # the seed path on completely cold caches at either scale.
    cold_target, warm_single_target, warm_batched_target = _speedup_targets()
    assert seconds_batched_cold < seconds_seed / cold_target, (
        f"cold batched path only {seconds_seed / seconds_batched_cold:.1f}x "
        f"over the seed path (expected >= {cold_target}x)"
    )
    assert seconds_single_warm < seconds_seed / warm_single_target, (
        f"steady-state per-block path only "
        f"{seconds_seed / seconds_single_warm:.1f}x over the seed path "
        f"(expected >= {warm_single_target}x)"
    )
    assert seconds_batched_warm < seconds_seed / warm_batched_target, (
        f"steady-state batched path only "
        f"{seconds_seed / seconds_batched_warm:.1f}x over the seed path "
        f"(expected >= {warm_batched_target}x)"
    )


@pytest.mark.parametrize("name", ["granite", "ithemal+"])
def test_float32_batched_speedup(name):
    """Mixed-precision serving: float32 >= 1.5x float64, within tolerance.

    Measured at paper scale (256-wide layers), where the Dense/LayerNorm
    matmuls the dtype halves actually dominate; the reduced "small" test
    configs are overhead-bound and would understate the win.  The workload
    is the steady-state serving shape: repeated blocks, warm encode caches,
    prediction cache disabled so every call pays the model compute.
    """
    dataset = build_ithemal_like_dataset(NUM_BLOCKS, seed=23)
    blocks = dataset.blocks()
    labels = {"haswell": dataset.throughputs("haswell")}

    def steady_state_seconds(model) -> float:
        model.prediction_cache_size = 0
        model.predict(blocks, batch_size=BATCH_SIZE)  # warm encode caches
        return _measure(lambda: model.predict(blocks, batch_size=BATCH_SIZE))

    model64 = create_model(
        name, small=False, tasks=("haswell",), inference_dtype="float64"
    )
    seconds64 = steady_state_seconds(model64)
    model32 = create_model(
        name, small=False, tasks=("haswell",), inference_dtype="float32"
    )
    model32.load_state_dict(model64.state_dict())
    seconds32 = steady_state_seconds(model32)

    speedup = seconds64 / seconds32
    print()
    print(f"--- {name} (paper scale) float64 vs float32, batched-{BATCH_SIZE} ---")
    print(f"float64: {NUM_BLOCKS / seconds64:8.1f} blocks/s ({seconds64 * 1e3:7.1f} ms)")
    print(
        f"float32: {NUM_BLOCKS / seconds32:8.1f} blocks/s ({seconds32 * 1e3:7.1f} ms)"
        f"  {speedup:.2f}x"
    )

    # Equivalence on the same workload: tight relative tolerance and the
    # serving acceptance budget of <= 0.5 MAPE percentage points.
    report = assert_prediction_equivalent(
        model64,
        model32,
        blocks,
        rel_tol=5e-3,
        mape_budget=0.5,
        labels=labels,
        batch_size=BATCH_SIZE,
    )
    print(report.summary())

    assert speedup >= FLOAT32_SPEEDUP_TARGET, (
        f"float32 batched path is only {speedup:.2f}x the float64 path "
        f"(expected >= {FLOAT32_SPEEDUP_TARGET}x)"
    )


def test_encode_cache_hit_rate(blocks):
    """Eval sweeps hit the graph cache after the first pass."""
    model = create_model("granite", small=True, seed=5)
    model.prediction_cache_size = 0
    for _ in range(3):
        model.predict(blocks, batch_size=16)
    stats = model.encode_cache_stats
    assert stats["graph_misses"] == NUM_BLOCKS
    assert stats["batch_hits"] >= 2 * (NUM_BLOCKS // 16)


def test_service_throughput_matches_direct_path(blocks):
    """The serving layer adds coalescing without changing predictions."""
    from repro.serve import PredictionRequest, PredictionService, ServiceConfig

    service = PredictionService(
        ServiceConfig(model_name="granite", max_batch_size=BATCH_SIZE)
    ).warm_start()
    requests = [
        PredictionRequest.of(blocks[index : index + 8])
        for index in range(0, NUM_BLOCKS, 8)
    ]
    responses = service.submit(requests)
    direct = service.model.predict(blocks)
    for task in service.model.tasks:
        served = np.concatenate(
            [response.predictions[task] for response in responses]
        )
        np.testing.assert_allclose(served, direct[task], rtol=1e-9)
    print()
    print(
        f"service: {service.stats.blocks} blocks in {service.stats.seconds:.3f}s "
        f"({service.stats.blocks_per_second:.0f} blocks/s, "
        f"{service.stats.batches} micro-batches)"
    )
