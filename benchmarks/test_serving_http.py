"""HTTP round-trip smoke benchmark for the network serving front end.

The HTTP layer exists so external tools (compilers, autotuners, other
languages) can consume throughput predictions over a socket; its cost per
request must be queueing + one JSON round trip, not a second serving
stack.  Three checks over one live server:

* **round-trip smoke** — sequential unary predicts through a real socket
  must all succeed and sustain a sane request rate (the gate is loose at
  quick scale: it guards the wiring, not the absolute number);
* **streaming equivalence** — the NDJSON streaming mode must reassemble
  to exactly the unary answer for the same blocks: chunking by
  micro-batch is a transport detail, never a numerics one;
* **concurrent tenants** — parallel clients with distinct API keys on
  distinct model variants must all be answered, with per-tenant request
  accounting adding up.

Scale with ``REPRO_BENCH_STEPS`` as usual; the HTTP smoke keeps fixed
small request counts — it measures plumbing, not model throughput.
"""

import http.client
import json
import threading
import time

import pytest

from repro.data.synthetic import BlockGenerator, GeneratorConfig
from repro.serve import (
    HttpServerConfig,
    ModelRegistry,
    ModelVariant,
    PredictionHttpServer,
    ServiceConfig,
    Tenant,
    TenantDirectory,
)

NUM_ROUND_TRIPS = 25
NUM_STREAM_BLOCKS = 48
#: Loose quick-scale floor: in-process granite serves hundreds of blocks/s,
#: so even with JSON + socket overhead a handful of requests/s is generous.
MIN_REQUESTS_PER_SECOND = 2.0

API_KEYS = {"acme": "bench-key-acme", "blue": "bench-key-blue"}


def _post(port, path, payload, api_key, timeout=120.0):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request(
            "POST", path, body=json.dumps(payload),
            headers={"X-API-Key": api_key},
        )
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def _get(port, path, api_key, timeout=120.0):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request("GET", path, headers={"X-API-Key": api_key})
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


@pytest.fixture(scope="module")
def bench_blocks():
    generator = BlockGenerator(GeneratorConfig(seed=77))
    return [block.render() for block in generator.generate_blocks(64)]


@pytest.fixture(scope="module")
def server():
    registry = ModelRegistry(
        (
            ModelVariant(
                "granite-haswell",
                ServiceConfig(tasks=("haswell",), max_batch_size=16),
            ),
            ModelVariant(
                "granite-skylake-f32",
                ServiceConfig(
                    tasks=("skylake",),
                    max_batch_size=16,
                    inference_dtype="float32",
                ),
            ),
        )
    )
    auth = TenantDirectory(
        (
            Tenant("acme", api_key=API_KEYS["acme"]),
            Tenant("blue", api_key=API_KEYS["blue"]),
        )
    )
    with PredictionHttpServer(
        registry, HttpServerConfig(), auth=auth, own_registry=True
    ) as running:
        # Warm both variants so the measured loop never pays a model build.
        for model in ("granite-haswell", "granite-skylake-f32"):
            registry.load(model)
        yield running


def test_http_round_trip_smoke(server, bench_blocks):
    begin = time.monotonic()
    for index in range(NUM_ROUND_TRIPS):
        block = bench_blocks[index % len(bench_blocks)]
        status, raw = _post(
            server.port,
            "/v1/models/granite-haswell/predict",
            {"blocks": [block], "priority": "interactive"},
            API_KEYS["acme"],
        )
        assert status == 200
        document = json.loads(raw)
        assert document["num_blocks"] == 1
        assert len(document["predictions"]["haswell"]) == 1
    elapsed = time.monotonic() - begin
    rate = NUM_ROUND_TRIPS / elapsed
    print(f"\nhttp round trips: {rate:.1f} requests/s ({elapsed:.2f}s total)")
    assert rate >= MIN_REQUESTS_PER_SECOND


def test_http_streaming_matches_unary(server, bench_blocks):
    blocks = bench_blocks[:NUM_STREAM_BLOCKS]
    status, raw = _post(
        server.port,
        "/v1/models/granite-haswell/predict",
        {"blocks": blocks},
        API_KEYS["acme"],
    )
    assert status == 200
    unary = json.loads(raw)["predictions"]["haswell"]
    status, raw = _post(
        server.port,
        "/v1/models/granite-haswell/predict",
        {"blocks": blocks, "stream": True},
        API_KEYS["acme"],
    )
    assert status == 200
    lines = [json.loads(line) for line in raw.decode().strip().split("\n")]
    assert lines[-1]["done"] is True
    assert lines[-1]["chunks"] == (NUM_STREAM_BLOCKS + 15) // 16
    streamed = [None] * NUM_STREAM_BLOCKS
    for line in lines[:-1]:
        assert "error" not in line, line
        values = line["predictions"]["haswell"]
        streamed[line["offset"] : line["offset"] + line["num_blocks"]] = values
    assert streamed == unary


def test_http_concurrent_tenants_accounted(server, bench_blocks):
    statuses = {}

    def client(tenant, model, offset):
        status, _ = _post(
            server.port,
            f"/v1/models/{model}/predict",
            {"blocks": bench_blocks[offset : offset + 4]},
            API_KEYS[tenant],
        )
        statuses[(tenant, model, offset)] = status

    threads = [
        threading.Thread(
            target=client,
            args=(
                ("acme", "blue")[index % 2],
                ("granite-haswell", "granite-skylake-f32")[index % 2],
                4 * index,
            ),
        )
        for index in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert set(statuses.values()) == {200}
    for tenant, model in (
        ("acme", "granite-haswell"),
        ("blue", "granite-skylake-f32"),
    ):
        status, report = _get(
            server.port, f"/v1/models/{model}/stats", API_KEYS[tenant]
        )
        assert status == 200
        assert report["info"]["requests_by_tenant"][tenant] >= 4
