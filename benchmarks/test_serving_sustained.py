"""Sustained-traffic serving: async front end vs. sync submit, hash sharding.

The async/queued front end exists for the production traffic shape: many
clients submitting *small* requests of mostly *novel* blocks (a compiler
autotuner streams new candidate blocks; only some repeat).  A synchronous
``submit()`` loop pays a tiny forward pass and, in sharded mode, an IPC
round-trip per request; the async dispatcher coalesces many requests into
dense micro-batch flushes that the worker shards crunch in parallel.

Three measurements over the same hash-sharded two-worker service:

* **sync** — the steady-state blocks/sec of a request-at-a-time
  synchronous submit loop (the only safe way to drive the sync service);
* **async burst** — everything enqueued at once: capacity must be at least
  the sync rate (this is the throughput half of the acceptance bar);
* **async paced at the sync rate** — the offered load the sync service can
  just sustain, now through the queue: the p99 flush wait must stay within
  2x ``max_latency_ms`` (the deadline half of the acceptance bar).

A separate test checks shard affinity: under hash sharding every worker's
caches own a stable partition of the block key space, so per-worker hit
rates must measurably beat round-robin dealing on repeated traffic.
"""

import random
import threading
import time

import pytest

from repro.data.synthetic import BlockGenerator
from repro.serve import (
    AsyncPredictionService,
    AsyncServiceConfig,
    PredictionRequest,
    PredictionService,
    ServiceConfig,
)

REQUEST_SIZE = 2
NUM_REQUESTS = 200  # per measurement phase
DEADLINE_MS = 25.0
NUM_WORKERS = 2
NUM_PRODUCERS = 4
REQUESTS_PER_PRODUCER = 50


def _requests(block_texts, start):
    """NUM_REQUESTS small requests of novel blocks, starting at ``start``."""
    return [
        PredictionRequest.of(block_texts[index : index + REQUEST_SIZE])
        for index in range(start, start + NUM_REQUESTS * REQUEST_SIZE, REQUEST_SIZE)
    ]


@pytest.fixture(scope="module")
def block_texts():
    count = 20 + 3 * NUM_REQUESTS * REQUEST_SIZE  # warmup + three phases
    blocks = BlockGenerator(seed=41).generate_blocks(count)
    return [block.canonical_text() for block in blocks]


def test_async_sustains_sync_throughput_within_deadline(block_texts):
    config = ServiceConfig(
        model_name="granite", max_batch_size=64, num_workers=NUM_WORKERS
    )
    async_config = AsyncServiceConfig(
        max_batch_size=64, max_latency_ms=DEADLINE_MS, max_queue_blocks=8192
    )
    with PredictionService(config).warm_start() as service:
        for request in _requests(block_texts[:20], 0)[: 20 // REQUEST_SIZE]:
            service.submit([request])  # warm code paths, not the caches

        # Synchronous baseline: every request is its own submit/flush.
        sync_requests = _requests(block_texts, 20)
        start = time.perf_counter()
        for request in sync_requests:
            service.submit([request])
        sync_seconds = time.perf_counter() - start
        sync_rate = NUM_REQUESTS * REQUEST_SIZE / sync_seconds

        with AsyncPredictionService(async_config, service=service) as front_end:
            # Burst capacity: enqueue everything, drain through the queue.
            burst = _requests(block_texts, 20 + NUM_REQUESTS * REQUEST_SIZE)
            start = time.perf_counter()
            futures = [front_end.submit(request) for request in burst]
            for future in futures:
                future.result(timeout=300.0)
            burst_seconds = time.perf_counter() - start
            burst_rate = NUM_REQUESTS * REQUEST_SIZE / burst_seconds

            # Deadline under load: offer the sync service's own steady-state
            # rate through the queue and watch the flush waits.  Snapshot
            # the cumulative counters so the report below is paced-only.
            front_end.stats.flush_waits.clear()
            burst_flushes = front_end.stats.flushes
            burst_size = front_end.stats.size_flushes
            burst_deadline = front_end.stats.deadline_flushes
            burst_blocks = front_end.stats.flushed_blocks
            paced = _requests(block_texts, 20 + 2 * NUM_REQUESTS * REQUEST_SIZE)
            interarrival = REQUEST_SIZE / sync_rate
            futures = []
            next_send = time.perf_counter()
            for request in paced:
                delay = next_send - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                futures.append(front_end.submit(request))
                next_send += interarrival
            for future in futures:
                future.result(timeout=300.0)
            stats = front_end.stats

    p50 = stats.flush_wait_percentile(0.50) * 1e3
    p99 = stats.flush_wait_percentile(0.99) * 1e3
    print()
    print("--- sustained traffic (novel blocks, 2 hash-sharded workers) ---")
    print(f"sync submit loop:   {sync_rate:8.0f} blocks/s ({sync_seconds:6.3f}s)")
    print(
        f"async burst:        {burst_rate:8.0f} blocks/s ({burst_seconds:6.3f}s)"
        f"  {burst_rate / sync_rate:5.2f}x"
    )
    paced_flushes = stats.flushes - burst_flushes
    print(
        f"async paced @ sync rate: {paced_flushes} flushes "
        f"(size={stats.size_flushes - burst_size}, "
        f"deadline={stats.deadline_flushes - burst_deadline}), "
        f"mean {(stats.flushed_blocks - burst_blocks) / max(paced_flushes, 1):.1f} "
        f"blocks/flush"
    )
    print(f"flush wait: p50={p50:.2f} ms  p99={p99:.2f} ms (deadline {DEADLINE_MS} ms)")

    assert burst_rate >= sync_rate, (
        f"async front end sustains only {burst_rate:.0f} blocks/s vs "
        f"{sync_rate:.0f} blocks/s synchronous"
    )
    assert p99 <= 2.0 * DEADLINE_MS, (
        f"p99 flush wait {p99:.2f} ms exceeds 2x the {DEADLINE_MS} ms deadline "
        f"at the sync-equivalent offered load"
    )


def test_latency_bounded_coalescing_on_warm_traffic(block_texts):
    """Warm repeated traffic still coalesces densely and meets the deadline."""
    texts = block_texts[:64]
    config = AsyncServiceConfig(
        max_batch_size=64, max_latency_ms=DEADLINE_MS, max_queue_blocks=8192
    )
    with AsyncPredictionService(
        config, service_config=ServiceConfig(model_name="granite", max_batch_size=64)
    ) as front_end:
        front_end.predict_blocks(texts)  # fill every cache
        futures = [
            front_end.submit(PredictionRequest.of(texts[index : index + REQUEST_SIZE]))
            for index in range(0, len(texts) - REQUEST_SIZE, REQUEST_SIZE)
            for _ in range(10)
        ]
        for future in futures:
            future.result(timeout=60.0)
        stats = front_end.stats
    p99 = stats.flush_wait_percentile(0.99) * 1e3
    print()
    print(
        f"warm traffic: {stats.flushes} flushes, "
        f"mean {stats.mean_flush_blocks:.1f} blocks/flush, p99 wait {p99:.2f} ms"
    )
    assert stats.mean_flush_blocks >= 4 * REQUEST_SIZE  # real coalescing happened
    assert p99 <= 2.0 * DEADLINE_MS


@pytest.mark.parametrize("rounds", [4])
def test_hash_sharding_beats_round_robin_cache_affinity(block_texts, rounds):
    """Per-worker cache hit rates: stable hashing > round-robin dealing."""
    population = block_texts[:64]
    rates = {}
    for mode in ("hash", "round_robin"):
        config = ServiceConfig(
            model_name="granite",
            max_batch_size=16,
            num_workers=NUM_WORKERS,
            sharding=mode,
        )
        rng = random.Random(13)
        with PredictionService(config) as service:
            for _ in range(rounds):
                # Real traffic never repeats the exact same request
                # composition, so reshuffle the population every round:
                # round-robin dealing then scatters each block across
                # workers while hashing keeps it pinned.
                shuffled = population[:]
                rng.shuffle(shuffled)
                for start in range(0, len(shuffled), 8):
                    service.submit(
                        [PredictionRequest.of(shuffled[start : start + 8])]
                    )
            worker_stats = service._pool.worker_stats()
        rates[mode] = [s["prediction_hit_rate"] for s in worker_stats]

    print()
    print(f"--- per-worker prediction-cache hit rates, {rounds} shuffled rounds ---")
    for mode, mode_rates in rates.items():
        print(f"{mode:<12} {['%.3f' % rate for rate in mode_rates]}")

    hash_rate = sum(rates["hash"]) / len(rates["hash"])
    rr_rate = sum(rates["round_robin"]) / len(rates["round_robin"])
    assert hash_rate > rr_rate + 0.05, (
        f"hash sharding's mean per-worker prediction hit rate ({hash_rate:.3f}) "
        f"is not measurably above round-robin's ({rr_rate:.3f})"
    )


def test_multi_producer_no_loss_within_deadline():
    """Four concurrent threaded clients: no request loss, p99 wait bounded.

    The async front end's submit path is hit from ``NUM_PRODUCERS`` threads
    at once, each pacing its own novel-block traffic so the aggregate
    offered load matches the sync service's measured steady-state rate.
    Every future must resolve with its own request's blocks (no loss, no
    cross-wiring) and the p99 flush wait must stay within 2x the deadline —
    the same bar the single-producer test holds.
    """
    warmup = 20
    total_requests = NUM_PRODUCERS * REQUESTS_PER_PRODUCER
    calibration = 50
    blocks = BlockGenerator(seed=77).generate_blocks(
        warmup + (calibration + total_requests) * REQUEST_SIZE
    )
    texts = [block.canonical_text() for block in blocks]

    config = ServiceConfig(
        model_name="granite", max_batch_size=64, num_workers=NUM_WORKERS
    )
    async_config = AsyncServiceConfig(
        max_batch_size=64, max_latency_ms=DEADLINE_MS, max_queue_blocks=8192
    )
    with PredictionService(config).warm_start() as service:
        for start in range(0, warmup, REQUEST_SIZE):
            service.submit([PredictionRequest.of(texts[start : start + REQUEST_SIZE])])

        # Calibrate the offered load: the sync service's own sustained rate.
        start_time = time.perf_counter()
        for index in range(calibration):
            begin = warmup + index * REQUEST_SIZE
            service.submit([PredictionRequest.of(texts[begin : begin + REQUEST_SIZE])])
        sync_rate = calibration * REQUEST_SIZE / (time.perf_counter() - start_time)
        interarrival = NUM_PRODUCERS * REQUEST_SIZE / sync_rate

        with AsyncPredictionService(async_config, service=service) as front_end:
            results: dict = {}
            errors: list = []
            base = warmup + calibration * REQUEST_SIZE

            def produce(producer: int) -> None:
                futures = []
                next_send = time.perf_counter()
                try:
                    for index in range(REQUESTS_PER_PRODUCER):
                        offset = base + (
                            producer * REQUESTS_PER_PRODUCER + index
                        ) * REQUEST_SIZE
                        request = PredictionRequest.of(
                            texts[offset : offset + REQUEST_SIZE],
                            request_id=f"producer-{producer}-{index}",
                        )
                        delay = next_send - time.perf_counter()
                        if delay > 0:
                            time.sleep(delay)
                        futures.append((request.request_id, front_end.submit(request)))
                        next_send += interarrival
                    for request_id, future in futures:
                        results[request_id] = future.result(timeout=120.0)
                except Exception as error:  # noqa: BLE001 - reported below
                    errors.append((producer, error))

            producers = [
                threading.Thread(target=produce, args=(producer,), daemon=True)
                for producer in range(NUM_PRODUCERS)
            ]
            start_time = time.perf_counter()
            for thread in producers:
                thread.start()
            for thread in producers:
                thread.join(timeout=300.0)
            elapsed = time.perf_counter() - start_time
            stats = front_end.stats

    assert not errors, f"producer threads failed: {errors}"
    # No request loss: every submitted request resolved, with its own size.
    assert len(results) == total_requests
    for request_id, response in results.items():
        assert response.request_id == request_id
        assert response.num_blocks == REQUEST_SIZE
    assert stats.requests == total_requests

    p50 = stats.flush_wait_percentile(0.50) * 1e3
    p99 = stats.flush_wait_percentile(0.99) * 1e3
    print()
    print(
        f"--- {NUM_PRODUCERS} producers x {REQUESTS_PER_PRODUCER} requests "
        f"@ {sync_rate:.0f} blocks/s aggregate ---"
    )
    print(
        f"{total_requests * REQUEST_SIZE / elapsed:8.0f} blocks/s served, "
        f"{stats.flushes} flushes, mean {stats.mean_flush_blocks:.1f} blocks/flush"
    )
    print(f"flush wait: p50={p50:.2f} ms  p99={p99:.2f} ms (deadline {DEADLINE_MS} ms)")
    assert p99 <= 2.0 * DEADLINE_MS, (
        f"p99 flush wait {p99:.2f} ms exceeds 2x the {DEADLINE_MS} ms deadline "
        f"under {NUM_PRODUCERS} concurrent producers"
    )
