"""Sustained-traffic serving: async front end vs. sync submit, hash sharding.

The async/queued front end exists for the production traffic shape: many
clients submitting *small* requests of mostly *novel* blocks (a compiler
autotuner streams new candidate blocks; only some repeat).  A synchronous
``submit()`` loop pays a tiny forward pass and, in sharded mode, an IPC
round-trip per request; the async dispatcher coalesces many requests into
dense micro-batch flushes that the worker shards crunch in parallel.

Three measurements over the same hash-sharded two-worker service:

* **sync** — the steady-state blocks/sec of a request-at-a-time
  synchronous submit loop (the only safe way to drive the sync service);
* **async burst** — everything enqueued at once: capacity must be at least
  the sync rate (this is the throughput half of the acceptance bar);
* **async paced at the sync rate** — the offered load the sync service can
  just sustain, now through the queue: the p99 flush wait must stay within
  2x ``max_latency_ms`` (the deadline half of the acceptance bar).

A separate test checks shard affinity: under hash sharding every worker's
caches own a stable partition of the block key space, so per-worker hit
rates must measurably beat round-robin dealing on repeated traffic — both
single-producer and with 8 concurrent producers over a Zipf-skewed block
popularity mix.

The load-adaptive serving additions are benchmarked here too:

* **adaptive vs. static flushing** on the same bursty workload — the
  adaptive policy must cut p99 enqueue->response latency on the idle-heavy
  phase while sustaining the static policy's blocks/s when saturated;
* **elastic scaling** N -> N+1 -> N under live load — no request lost,
  consistent-ring key movement ~1/(N+1), and per-worker cache hit rates
  recovering once the pool returns to its original size;
* **cancellation goodput** — a producer abandoning half its in-flight
  requests must complete the wanted half measurably faster than a
  no-cancellation baseline, because dropped requests never reach a worker.

Wall-clock margins follow the repo convention: loose at the default quick
scale, tightening when ``REPRO_BENCH_STEPS`` asks for a paper-scale run.
"""

import os
import random
import threading
import time

import pytest

from repro.data.synthetic import BlockGenerator
from repro.serve import (
    AsyncPredictionService,
    AsyncServiceConfig,
    HashRing,
    PredictionRequest,
    PredictionService,
    ServiceConfig,
    shard_key,
)

REQUEST_SIZE = 2
NUM_REQUESTS = 200  # per measurement phase
DEADLINE_MS = 25.0
NUM_WORKERS = 2
NUM_PRODUCERS = 4
REQUESTS_PER_PRODUCER = 50
#: The higher-producer-count scenario (skewed-popularity test).
NUM_PRODUCERS_SKEW = 8


def _throughput_margin() -> float:
    """Wall-clock comparison margin, scaled with the benchmark budget.

    Two same-workload runs on a busy CI box differ by several percent of
    noise; at the default quick scale the saturated-phase comparison keeps
    a loose 0.85x margin, tightening to near-strict when REPRO_BENCH_STEPS
    asks for a paper-scale run (longer runs, less relative noise).
    """
    steps = int(os.environ.get("REPRO_BENCH_STEPS", "0") or 0)
    return 0.95 if steps >= 1000 else 0.85


def _requests(block_texts, start):
    """NUM_REQUESTS small requests of novel blocks, starting at ``start``."""
    return [
        PredictionRequest.of(block_texts[index : index + REQUEST_SIZE])
        for index in range(start, start + NUM_REQUESTS * REQUEST_SIZE, REQUEST_SIZE)
    ]


@pytest.fixture(scope="module")
def block_texts():
    count = 20 + 3 * NUM_REQUESTS * REQUEST_SIZE  # warmup + three phases
    blocks = BlockGenerator(seed=41).generate_blocks(count)
    return [block.canonical_text() for block in blocks]


def test_async_sustains_sync_throughput_within_deadline(block_texts):
    config = ServiceConfig(
        model_name="granite", max_batch_size=64, num_workers=NUM_WORKERS
    )
    async_config = AsyncServiceConfig(
        max_batch_size=64, max_latency_ms=DEADLINE_MS, max_queue_blocks=8192
    )
    with PredictionService(config).warm_start() as service:
        for request in _requests(block_texts[:20], 0)[: 20 // REQUEST_SIZE]:
            service.submit([request])  # warm code paths, not the caches

        # Synchronous baseline: every request is its own submit/flush.
        sync_requests = _requests(block_texts, 20)
        start = time.perf_counter()
        for request in sync_requests:
            service.submit([request])
        sync_seconds = time.perf_counter() - start
        sync_rate = NUM_REQUESTS * REQUEST_SIZE / sync_seconds

        with AsyncPredictionService(async_config, service=service) as front_end:
            # Burst capacity: enqueue everything, drain through the queue.
            burst = _requests(block_texts, 20 + NUM_REQUESTS * REQUEST_SIZE)
            start = time.perf_counter()
            futures = [front_end.submit(request) for request in burst]
            for future in futures:
                future.result(timeout=300.0)
            burst_seconds = time.perf_counter() - start
            burst_rate = NUM_REQUESTS * REQUEST_SIZE / burst_seconds

            # Deadline under load: offer the sync service's own steady-state
            # rate through the queue and watch the flush waits.  Snapshot
            # the cumulative counters so the report below is paced-only.
            front_end.stats.flush_waits.clear()
            burst_flushes = front_end.stats.flushes
            burst_size = front_end.stats.size_flushes
            burst_deadline = front_end.stats.deadline_flushes
            burst_blocks = front_end.stats.flushed_blocks
            paced = _requests(block_texts, 20 + 2 * NUM_REQUESTS * REQUEST_SIZE)
            interarrival = REQUEST_SIZE / sync_rate
            futures = []
            next_send = time.perf_counter()
            for request in paced:
                delay = next_send - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                futures.append(front_end.submit(request))
                next_send += interarrival
            for future in futures:
                future.result(timeout=300.0)
            stats = front_end.stats

    p50 = stats.flush_wait_percentile(0.50) * 1e3
    p99 = stats.flush_wait_percentile(0.99) * 1e3
    print()
    print("--- sustained traffic (novel blocks, 2 hash-sharded workers) ---")
    print(f"sync submit loop:   {sync_rate:8.0f} blocks/s ({sync_seconds:6.3f}s)")
    print(
        f"async burst:        {burst_rate:8.0f} blocks/s ({burst_seconds:6.3f}s)"
        f"  {burst_rate / sync_rate:5.2f}x"
    )
    paced_flushes = stats.flushes - burst_flushes
    print(
        f"async paced @ sync rate: {paced_flushes} flushes "
        f"(size={stats.size_flushes - burst_size}, "
        f"deadline={stats.deadline_flushes - burst_deadline}), "
        f"mean {(stats.flushed_blocks - burst_blocks) / max(paced_flushes, 1):.1f} "
        f"blocks/flush"
    )
    print(f"flush wait: p50={p50:.2f} ms  p99={p99:.2f} ms (deadline {DEADLINE_MS} ms)")

    assert burst_rate >= sync_rate, (
        f"async front end sustains only {burst_rate:.0f} blocks/s vs "
        f"{sync_rate:.0f} blocks/s synchronous"
    )
    assert p99 <= 2.0 * DEADLINE_MS, (
        f"p99 flush wait {p99:.2f} ms exceeds 2x the {DEADLINE_MS} ms deadline "
        f"at the sync-equivalent offered load"
    )


def test_latency_bounded_coalescing_on_warm_traffic(block_texts):
    """Warm repeated traffic still coalesces densely and meets the deadline."""
    texts = block_texts[:64]
    config = AsyncServiceConfig(
        max_batch_size=64, max_latency_ms=DEADLINE_MS, max_queue_blocks=8192
    )
    with AsyncPredictionService(
        config, service_config=ServiceConfig(model_name="granite", max_batch_size=64)
    ) as front_end:
        front_end.predict_blocks(texts)  # fill every cache
        futures = [
            front_end.submit(PredictionRequest.of(texts[index : index + REQUEST_SIZE]))
            for index in range(0, len(texts) - REQUEST_SIZE, REQUEST_SIZE)
            for _ in range(10)
        ]
        for future in futures:
            future.result(timeout=60.0)
        stats = front_end.stats
    p99 = stats.flush_wait_percentile(0.99) * 1e3
    print()
    print(
        f"warm traffic: {stats.flushes} flushes, "
        f"mean {stats.mean_flush_blocks:.1f} blocks/flush, p99 wait {p99:.2f} ms"
    )
    assert stats.mean_flush_blocks >= 4 * REQUEST_SIZE  # real coalescing happened
    assert p99 <= 2.0 * DEADLINE_MS


@pytest.mark.parametrize("rounds", [4])
def test_hash_sharding_beats_round_robin_cache_affinity(block_texts, rounds):
    """Per-worker cache hit rates: stable hashing > round-robin dealing."""
    population = block_texts[:64]
    rates = {}
    for mode in ("hash", "round_robin"):
        config = ServiceConfig(
            model_name="granite",
            max_batch_size=16,
            num_workers=NUM_WORKERS,
            sharding=mode,
        )
        rng = random.Random(13)
        with PredictionService(config) as service:
            for _ in range(rounds):
                # Real traffic never repeats the exact same request
                # composition, so reshuffle the population every round:
                # round-robin dealing then scatters each block across
                # workers while hashing keeps it pinned.
                shuffled = population[:]
                rng.shuffle(shuffled)
                for start in range(0, len(shuffled), 8):
                    service.submit(
                        [PredictionRequest.of(shuffled[start : start + 8])]
                    )
            worker_stats = service._pool.worker_stats()
        rates[mode] = [s["prediction_hit_rate"] for s in worker_stats]

    print()
    print(f"--- per-worker prediction-cache hit rates, {rounds} shuffled rounds ---")
    for mode, mode_rates in rates.items():
        print(f"{mode:<12} {['%.3f' % rate for rate in mode_rates]}")

    hash_rate = sum(rates["hash"]) / len(rates["hash"])
    rr_rate = sum(rates["round_robin"]) / len(rates["round_robin"])
    assert hash_rate > rr_rate + 0.05, (
        f"hash sharding's mean per-worker prediction hit rate ({hash_rate:.3f}) "
        f"is not measurably above round-robin's ({rr_rate:.3f})"
    )


def test_multi_producer_no_loss_within_deadline():
    """Four concurrent threaded clients: no request loss, p99 wait bounded.

    The async front end's submit path is hit from ``NUM_PRODUCERS`` threads
    at once, each pacing its own novel-block traffic so the aggregate
    offered load matches the sync service's measured steady-state rate.
    Every future must resolve with its own request's blocks (no loss, no
    cross-wiring) and the p99 flush wait must stay within 2x the deadline —
    the same bar the single-producer test holds.
    """
    warmup = 20
    total_requests = NUM_PRODUCERS * REQUESTS_PER_PRODUCER
    calibration = 50
    blocks = BlockGenerator(seed=77).generate_blocks(
        warmup + (calibration + total_requests) * REQUEST_SIZE
    )
    texts = [block.canonical_text() for block in blocks]

    config = ServiceConfig(
        model_name="granite", max_batch_size=64, num_workers=NUM_WORKERS
    )
    async_config = AsyncServiceConfig(
        max_batch_size=64, max_latency_ms=DEADLINE_MS, max_queue_blocks=8192
    )
    with PredictionService(config).warm_start() as service:
        for start in range(0, warmup, REQUEST_SIZE):
            service.submit([PredictionRequest.of(texts[start : start + REQUEST_SIZE])])

        # Calibrate the offered load: the sync service's own sustained rate.
        start_time = time.perf_counter()
        for index in range(calibration):
            begin = warmup + index * REQUEST_SIZE
            service.submit([PredictionRequest.of(texts[begin : begin + REQUEST_SIZE])])
        sync_rate = calibration * REQUEST_SIZE / (time.perf_counter() - start_time)
        interarrival = NUM_PRODUCERS * REQUEST_SIZE / sync_rate

        with AsyncPredictionService(async_config, service=service) as front_end:
            results: dict = {}
            errors: list = []
            base = warmup + calibration * REQUEST_SIZE

            def produce(producer: int) -> None:
                futures = []
                next_send = time.perf_counter()
                try:
                    for index in range(REQUESTS_PER_PRODUCER):
                        offset = base + (
                            producer * REQUESTS_PER_PRODUCER + index
                        ) * REQUEST_SIZE
                        request = PredictionRequest.of(
                            texts[offset : offset + REQUEST_SIZE],
                            request_id=f"producer-{producer}-{index}",
                        )
                        delay = next_send - time.perf_counter()
                        if delay > 0:
                            time.sleep(delay)
                        futures.append((request.request_id, front_end.submit(request)))
                        next_send += interarrival
                    for request_id, future in futures:
                        results[request_id] = future.result(timeout=120.0)
                except Exception as error:  # noqa: BLE001 - reported below
                    errors.append((producer, error))

            producers = [
                threading.Thread(target=produce, args=(producer,), daemon=True)
                for producer in range(NUM_PRODUCERS)
            ]
            start_time = time.perf_counter()
            for thread in producers:
                thread.start()
            for thread in producers:
                thread.join(timeout=300.0)
            elapsed = time.perf_counter() - start_time
            stats = front_end.stats

    assert not errors, f"producer threads failed: {errors}"
    # No request loss: every submitted request resolved, with its own size.
    assert len(results) == total_requests
    for request_id, response in results.items():
        assert response.request_id == request_id
        assert response.num_blocks == REQUEST_SIZE
    assert stats.requests == total_requests

    p50 = stats.flush_wait_percentile(0.50) * 1e3
    p99 = stats.flush_wait_percentile(0.99) * 1e3
    print()
    print(
        f"--- {NUM_PRODUCERS} producers x {REQUESTS_PER_PRODUCER} requests "
        f"@ {sync_rate:.0f} blocks/s aggregate ---"
    )
    print(
        f"{total_requests * REQUEST_SIZE / elapsed:8.0f} blocks/s served, "
        f"{stats.flushes} flushes, mean {stats.mean_flush_blocks:.1f} blocks/flush"
    )
    print(f"flush wait: p50={p50:.2f} ms  p99={p99:.2f} ms (deadline {DEADLINE_MS} ms)")
    assert p99 <= 2.0 * DEADLINE_MS, (
        f"p99 flush wait {p99:.2f} ms exceeds 2x the {DEADLINE_MS} ms deadline "
        f"under {NUM_PRODUCERS} concurrent producers"
    )


# --------------------------------------------------------------------- #
# Adaptive vs. static flushing on bursty traffic.
# --------------------------------------------------------------------- #

IDLE_REQUESTS = 60
IDLE_INTERARRIVAL_S = 0.030  # slower than the 25 ms deadline: idle-heavy
SATURATED_REQUESTS = 200  # per repeat, submitted all at once


def _percentile(samples, quantile):
    ordered = sorted(samples)
    index = min(int(quantile * len(ordered)), len(ordered) - 1)
    return ordered[index]


def _run_flush_policy(policy, idle_runs, saturated_runs, warm_texts):
    """One policy's measurement over the shared bursty workload.

    Returns ``(idle_p99s_s, idle_p50s_s, best_saturated_rate, snapshot)``
    with one idle percentile pair per repeat.  A fresh in-process service
    per policy keeps the comparison cache-fair; the same block texts make
    the workloads identical.  Both phases repeat (best-of-N) because
    single-shot wall-clock tails on a busy CI box are scheduler noise, not
    policy behaviour.
    """
    async_config = AsyncServiceConfig(
        max_batch_size=64,
        max_latency_ms=DEADLINE_MS,
        flush_policy=policy,
        min_latency_ms=1.0,
        max_queue_blocks=8192,
    )
    idle_p99s, idle_p50s = [], []
    with AsyncPredictionService(
        async_config,
        service_config=ServiceConfig(model_name="granite", max_batch_size=64),
    ) as front_end:
        front_end.predict_blocks(warm_texts)  # warm model + code paths
        time.sleep(0.3)  # let the warm-up burst leave the controller window

        # Idle-heavy phase: sparse lone requests.  Under the static policy
        # each one sits out the full deadline; adaptive should flush fast.
        for idle_texts in idle_runs:
            latencies = []
            futures = []
            next_send = time.perf_counter()
            for index in range(0, len(idle_texts), REQUEST_SIZE):
                delay = next_send - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                sent_at = time.perf_counter()
                future = front_end.submit(
                    PredictionRequest.of(idle_texts[index : index + REQUEST_SIZE])
                )
                future.add_done_callback(
                    lambda _, sent_at=sent_at: latencies.append(
                        time.perf_counter() - sent_at
                    )
                )
                futures.append(future)
                next_send += IDLE_INTERARRIVAL_S
            for future in futures:
                future.result(timeout=300.0)
            # result() can return before the last done callback has
            # appended its sample (set_result notifies waiters first);
            # join on the sample count so no latency goes missing.
            join_deadline = time.monotonic() + 5.0
            while len(latencies) < len(futures) and time.monotonic() < join_deadline:
                time.sleep(0.001)
            assert len(latencies) == len(futures)
            idle_p99s.append(_percentile(latencies, 0.99))
            idle_p50s.append(_percentile(latencies, 0.50))

        # Saturated phase: everything enqueued at once; size flushes must
        # dominate under either policy.
        best_rate = 0.0
        for run_texts in saturated_runs:
            start = time.perf_counter()
            futures = [
                front_end.submit(
                    PredictionRequest.of(run_texts[index : index + REQUEST_SIZE])
                )
                for index in range(0, len(run_texts), REQUEST_SIZE)
            ]
            for future in futures:
                future.result(timeout=300.0)
            rate = len(run_texts) / (time.perf_counter() - start)
            best_rate = max(best_rate, rate)
        snapshot = front_end.snapshot()
    return idle_p99s, idle_p50s, best_rate, snapshot


def test_adaptive_flush_beats_static_on_bursty_traffic():
    """The tentpole acceptance bar: on the same bursty workload the
    adaptive policy must cut idle-phase p99 enqueue->response latency
    versus static while sustaining the static policy's saturated
    throughput."""
    repeats = 2
    idle_run_size = IDLE_REQUESTS * REQUEST_SIZE
    run_size = SATURATED_REQUESTS * REQUEST_SIZE
    blocks = BlockGenerator(seed=97).generate_blocks(
        16 + repeats * (idle_run_size + run_size)
    )
    texts = [block.canonical_text() for block in blocks]
    warm_texts = texts[:16]
    idle_texts = texts[16 : 16 + repeats * idle_run_size]
    saturated_texts = texts[16 + repeats * idle_run_size :]
    idle_runs = [
        idle_texts[run * idle_run_size : (run + 1) * idle_run_size]
        for run in range(repeats)
    ]
    saturated_runs = [
        saturated_texts[run * run_size : (run + 1) * run_size]
        for run in range(repeats)
    ]

    results = {}
    for policy in ("static", "adaptive"):
        results[policy] = _run_flush_policy(
            policy, idle_runs, saturated_runs, warm_texts
        )

    print()
    print("--- bursty traffic: static vs adaptive flush policy ---")
    for policy, (p99s, p50s, rate, snapshot) in results.items():
        print(
            f"{policy:<9} idle p50={min(p50s) * 1e3:7.2f} ms  "
            f"p99={min(p99s) * 1e3:7.2f} ms (runs: "
            f"{['%.1f' % (p * 1e3) for p in p99s]})   "
            f"saturated {rate:8.0f} blocks/s   "
            f"flush deadline p50={snapshot['flush_deadline_p50_ms']:.2f} ms"
        )

    # Best-of-N on both sides: a single scheduler stall in one run must not
    # decide the comparison in either direction.
    static_p99 = min(results["static"][0])
    adaptive_p99 = min(results["adaptive"][0])
    static_rate = results["static"][2]
    adaptive_rate = results["adaptive"][2]
    margin = _throughput_margin()

    # Idle-heavy phase: the static policy charges every lone request the
    # full deadline; adaptive must be decisively below it, not merely tied.
    assert adaptive_p99 < 0.8 * static_p99, (
        f"adaptive idle-phase p99 ({adaptive_p99 * 1e3:.2f} ms) is not below "
        f"the static policy's ({static_p99 * 1e3:.2f} ms)"
    )
    # Saturated phase: size flushes dominate either way; adaptive must
    # sustain the static policy's throughput (loose margin at quick scale).
    assert adaptive_rate >= margin * static_rate, (
        f"adaptive saturated throughput ({adaptive_rate:.0f} blocks/s) fell "
        f"below {margin:.2f}x the static policy's ({static_rate:.0f} blocks/s)"
    )


# --------------------------------------------------------------------- #
# Elastic scaling under live load.
# --------------------------------------------------------------------- #


def _hit_rates_from(stats_before, stats_after):
    """Per-worker prediction hit rates over the window between snapshots."""
    rates = []
    for before, after in zip(stats_before, stats_after):
        hits = after["prediction_hits"] - before["prediction_hits"]
        misses = after["prediction_misses"] - before["prediction_misses"]
        total = hits + misses
        rates.append(hits / total if total else 0.0)
    return rates


def test_elastic_scaling_no_loss_and_affinity_recovery():
    """The elasticity acceptance bar: scaling N -> N+1 -> N under load
    loses no requests, moves only ~1/(N+1) of the key space (all of it to
    the new worker), and the surviving workers' cache hit rates recover
    once the pool is back at N."""
    population = [
        block.canonical_text()
        for block in BlockGenerator(seed=103).generate_blocks(64)
    ]
    config = ServiceConfig(
        model_name="granite", max_batch_size=16, num_workers=NUM_WORKERS
    )
    rng = random.Random(19)

    def drive_round(service):
        shuffled = population[:]
        rng.shuffle(shuffled)
        for start in range(0, len(shuffled), 4):
            service.submit([PredictionRequest.of(shuffled[start : start + 4])])

    with PredictionService(config).warm_start() as service:
        for _ in range(3):
            drive_round(service)  # warm every worker's caches
        warm_stats = service.worker_stats()

        # Scale up and back down while a producer thread keeps submitting.
        results = []
        errors = []

        def produce():
            try:
                for _ in range(6):
                    shuffled = population[:]
                    random.Random(23).shuffle(shuffled)
                    for start in range(0, len(shuffled), 4):
                        request = PredictionRequest.of(shuffled[start : start + 4])
                        results.append(service.submit([request])[0])
            except Exception as error:  # noqa: BLE001 - reported below
                errors.append(error)

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        time.sleep(0.05)
        service.scale_workers(NUM_WORKERS + 1)
        time.sleep(0.2)
        service.scale_workers(NUM_WORKERS)
        producer.join(timeout=300.0)
        assert not producer.is_alive()

        resized_stats = service.worker_stats()
        for _ in range(2):
            drive_round(service)  # post-reshard traffic: caches still warm?
        recovered_stats = service.worker_stats()
        events = list(service._pool.resize_events)

    # No request lost or mangled while the pool resized under load.
    assert not errors, f"submissions failed during resize: {errors}"
    assert len(results) == 6 * len(population) // 4
    assert all(response.num_blocks == 4 for response in results)
    assert [event["action"] for event in events] == ["add", "remove"]

    # Consistent-ring movement: growing to N+1 moves ~1/(N+1) of the
    # population, every moved key landing on the new worker only.
    before_ring = HashRing(nodes=range(NUM_WORKERS))
    after_ring = HashRing(nodes=range(NUM_WORKERS + 1))
    moved = 0
    for text in population:
        old = before_ring.owner(shard_key(text))
        new = after_ring.owner(shard_key(text))
        if old != new:
            moved += 1
            assert new == NUM_WORKERS, "a key moved to a pre-existing worker"
    moved_fraction = moved / len(population)
    assert 0.0 < moved_fraction <= 2.0 / (NUM_WORKERS + 1)

    # Cache-affinity recovery: back at N workers the ring topology is the
    # original, so the surviving workers answer the same partition from
    # their still-warm caches.
    warm_rates = [entry["prediction_hit_rate"] for entry in warm_stats]
    recovered_rates = _hit_rates_from(resized_stats, recovered_stats)
    print()
    print(f"--- elastic {NUM_WORKERS} -> {NUM_WORKERS + 1} -> {NUM_WORKERS} ---")
    print(f"moved keys: {moved}/{len(population)} ({moved_fraction:.2f})")
    print(f"pre-resize cumulative hit rates: {['%.3f' % r for r in warm_rates]}")
    print(f"post-reshard window hit rates:   {['%.3f' % r for r in recovered_rates]}")
    mean_warm = sum(warm_rates) / len(warm_rates)
    mean_recovered = sum(recovered_rates) / len(recovered_rates)
    assert mean_recovered >= 0.75 * mean_warm, (
        f"post-reshard hit rate {mean_recovered:.3f} did not recover to "
        f"within 0.75x of the pre-reshard {mean_warm:.3f}"
    )


# --------------------------------------------------------------------- #
# Cancellation goodput.
# --------------------------------------------------------------------- #


def _goodput_run(texts, abandon):
    """Submits ``len(texts)/2``-request backlog, optionally abandoning half.

    Every odd request is the "abandoned" half.  Returns the goodput in
    blocks/s over the *wanted* (even, never-cancelled) requests, measured
    from dispatcher start to the last wanted completion.
    """
    service = AsyncPredictionService(
        AsyncServiceConfig(
            max_batch_size=32, max_latency_ms=DEADLINE_MS, max_queue_blocks=65536
        ),
        service_config=ServiceConfig(model_name="granite", max_batch_size=32),
    )
    wanted, abandoned = [], []
    for index in range(0, len(texts), REQUEST_SIZE):
        future = service.submit(
            PredictionRequest.of(texts[index : index + REQUEST_SIZE])
        )
        if (index // REQUEST_SIZE) % 2:
            abandoned.append(future)
        else:
            wanted.append(future)
    if abandon:
        for future in abandoned:
            assert future.cancel()
    start = time.perf_counter()
    service.start()
    for future in wanted:
        future.result(timeout=600.0)
    elapsed = time.perf_counter() - start
    if not abandon:
        for future in abandoned:
            future.result(timeout=600.0)
    snapshot = service.snapshot()
    service.close()
    goodput = len(wanted) * REQUEST_SIZE / elapsed
    return goodput, snapshot


def test_cancellation_increases_goodput():
    """The cancellation acceptance bar: abandoning 50% of the in-flight
    requests must measurably raise the goodput (completed non-cancelled
    blocks/s) over the no-cancellation baseline, because dropped requests
    never consume prediction time."""
    num_requests = 150  # per half; the backlog is 2x this
    # One corpus for both legs: each leg gets a fresh service (no cache
    # carryover), so identical blocks make the workloads identical and the
    # measured difference purely the cancellation effect.
    texts = [
        block.canonical_text()
        for block in BlockGenerator(seed=113).generate_blocks(
            2 * num_requests * REQUEST_SIZE
        )
    ]
    legs = {}
    for leg, abandon in (("baseline", False), ("cancelling", True)):
        legs[leg] = _goodput_run(texts, abandon)

    baseline, baseline_snapshot = legs["baseline"]
    cancelling, cancelling_snapshot = legs["cancelling"]
    print()
    print("--- goodput with 50% of requests abandoned in-queue ---")
    print(f"baseline (no cancels): {baseline:8.0f} wanted blocks/s")
    print(
        f"cancelling:            {cancelling:8.0f} wanted blocks/s "
        f"({cancelling / baseline:.2f}x), "
        f"{cancelling_snapshot['cancelled_drops']} drops"
    )
    assert baseline_snapshot["cancelled_drops"] == 0
    assert cancelling_snapshot["cancelled_drops"] == num_requests
    # The cancelled half never reaches a worker, so the wanted half should
    # finish in roughly half the time; demand a conservative 1.3x.
    assert cancelling >= 1.3 * baseline, (
        f"goodput with cancellation ({cancelling:.0f} blocks/s) is only "
        f"{cancelling / baseline:.2f}x the baseline ({baseline:.0f} blocks/s)"
    )


# --------------------------------------------------------------------- #
# Many producers over a skewed (Zipf-like) popularity mix.
# --------------------------------------------------------------------- #


def test_hash_sharding_keeps_hit_rate_edge_under_skewed_producers():
    """8 concurrent producers sampling blocks from a Zipf-like popularity
    distribution: hash sharding's per-worker cache-affinity edge over
    round-robin dealing must survive both the concurrency and the skew."""
    population = [
        block.canonical_text()
        for block in BlockGenerator(seed=131).generate_blocks(64)
    ]
    # Zipf-like: popularity ~ 1/rank.  The head blocks recur constantly,
    # the tail rarely — the traffic shape of a real autotuner corpus.
    weights = [1.0 / rank for rank in range(1, len(population) + 1)]
    # Few enough repeats that round-robin's duplicated first-miss cost (a
    # block must miss once per worker it is dealt to) stays visible next to
    # hash sharding's single miss per block.
    requests_per_producer = 24
    rates = {}
    flushes = {}
    for mode in ("hash", "round_robin"):
        config = ServiceConfig(
            model_name="granite",
            max_batch_size=16,
            num_workers=NUM_WORKERS,
            sharding=mode,
        )
        async_config = AsyncServiceConfig(
            max_batch_size=16, max_latency_ms=DEADLINE_MS, max_queue_blocks=8192
        )
        with AsyncPredictionService(async_config, service_config=config) as front_end:
            errors = []

            def produce(producer_index, front_end=front_end, errors=errors):
                rng = random.Random(500 + producer_index)
                try:
                    futures = [
                        front_end.submit(
                            PredictionRequest.of(
                                rng.choices(population, weights=weights, k=4)
                            )
                        )
                        for _ in range(requests_per_producer)
                    ]
                    for future in futures:
                        future.result(timeout=300.0)
                except Exception as error:  # noqa: BLE001 - reported below
                    errors.append((producer_index, error))

            producers = [
                threading.Thread(target=produce, args=(index,), daemon=True)
                for index in range(NUM_PRODUCERS_SKEW)
            ]
            for thread in producers:
                thread.start()
            for thread in producers:
                thread.join(timeout=300.0)
            assert not errors, f"producers failed under {mode}: {errors}"
            worker_stats = front_end.service.worker_stats()
            flushes[mode] = front_end.stats.flushes
        rates[mode] = [entry["prediction_hit_rate"] for entry in worker_stats]

    print()
    print(
        f"--- {NUM_PRODUCERS_SKEW} producers, Zipf-skewed popularity, "
        f"{NUM_WORKERS} workers ---"
    )
    for mode, mode_rates in rates.items():
        print(
            f"{mode:<12} per-worker hit rates "
            f"{['%.3f' % rate for rate in mode_rates]} "
            f"({flushes[mode]} flushes)"
        )
    hash_rate = sum(rates["hash"]) / len(rates["hash"])
    rr_rate = sum(rates["round_robin"]) / len(rates["round_robin"])
    assert hash_rate > rr_rate + 0.05, (
        f"hash sharding's mean per-worker hit rate ({hash_rate:.3f}) lost its "
        f"edge over round-robin ({rr_rate:.3f}) under skewed concurrent load"
    )
