"""Table 10: computational efficiency (run time per batch of 100 blocks).

Paper claims:
* On the GPU, GRANITE's training and inference are ~3x faster per batch than
  Ithemal's; on a CPU, GRANITE inference is ~27 % *slower* (the graph ops do
  not benefit from the GPU's parallelism there).  This reproduction runs on
  CPU only, so the absolute ordering of the families is reported but not
  asserted.
* The overhead of multi-task heads is negligible: the training cost per
  microarchitecture of a three-headed model is roughly one third of training
  three single-task models.  This claim is asserted.
"""


from repro.eval import paper_reference as paper
from repro.eval.timing import run_table10

from conftest import format_paper_comparison


def test_table10_per_batch_runtime(benchmark, quick_scale):
    result = benchmark.pedantic(
        lambda: run_table10(quick_scale, batch_size=100, num_blocks=300),
        rounds=1,
        iterations=1,
    )

    print()
    print(result.format_table())
    rows = [
        (
            "granite multi-task train s/batch",
            result.timings["granite_multi"].training_seconds_per_batch,
            paper.TABLE10_RUNTIME_SECONDS[("granite_multi", "gpu_training")],
        ),
        (
            "ithemal+ multi-task train s/batch",
            result.timings["ithemal+_multi"].training_seconds_per_batch,
            paper.TABLE10_RUNTIME_SECONDS[("ithemal+_multi", "gpu_training")],
        ),
        (
            "granite multi-task infer s/batch",
            result.timings["granite_multi"].inference_seconds_per_batch,
            paper.TABLE10_RUNTIME_SECONDS[("granite_multi", "gpu_inference")],
        ),
        (
            "ithemal+ multi-task infer s/batch",
            result.timings["ithemal+_multi"].inference_seconds_per_batch,
            paper.TABLE10_RUNTIME_SECONDS[("ithemal+_multi", "gpu_inference")],
        ),
    ]
    print(format_paper_comparison("Table 10 — seconds per batch of 100 blocks", rows))

    timings = result.timings

    # Sanity: inference is cheaper than training for every configuration.
    for name, timing in timings.items():
        assert timing.inference_seconds_per_batch < timing.training_seconds_per_batch, name

    # Paper shape: adding multi-task heads costs little — the three-headed
    # model's per-batch time is far below 3x the single-task time, so the
    # *per-microarchitecture* cost drops to roughly a third.
    for family in ("granite", "ithemal+"):
        single = timings[f"{family}_single"].training_seconds_per_batch
        multi = timings[f"{family}_multi"].training_seconds_per_batch
        per_task_ratio = (multi / 3.0) / single
        print(f"{family}: multi-task per-microarchitecture cost = {per_task_ratio:.2f}x single-task")
        assert multi < 2.0 * single
        assert per_task_ratio < 0.67
