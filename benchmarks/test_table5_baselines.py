"""Table 5: GRANITE vs Ithemal vs Ithemal+ on the Ithemal dataset.

Paper claim (Table 5, Section 5.1): GRANITE achieves the lowest MAPE on all
three microarchitectures (6.67 / 7.61 / 6.47 %), Ithemal+ is second and
vanilla Ithemal last; Ithemal+'s and GRANITE's Pearson correlations are far
higher than vanilla Ithemal's.  The reproduction checks the *ordering* of
the models (absolute errors are higher because the models and training
budget are much smaller) and prints the side-by-side comparison.
"""

import numpy as np
import pytest

from repro.eval import paper_reference as paper
from repro.eval.tables import BaselineComparisonResult
from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.training.trainer import evaluate_model

from conftest import format_paper_comparison


@pytest.fixture(scope="module")
def table5_result(baseline_models):
    return BaselineComparisonResult(
        dataset_name="ithemal",
        models=dict(baseline_models),
        paper_mape=paper.TABLE5_MAPE,
    )


def test_table5_baseline_comparison(benchmark, table5_result, shared_harness):
    """Regenerates Table 5 and checks the model ordering."""

    def analyse():
        return {
            name: trained.average_mape() for name, trained in table5_result.models.items()
        }

    averages = benchmark.pedantic(analyse, rounds=1, iterations=1)

    print()
    print(table5_result.format_table())
    rows = []
    for model_name in ("granite", "ithemal+", "ithemal"):
        for microarchitecture in TARGET_MICROARCHITECTURES:
            rows.append(
                (
                    f"{model_name} / {microarchitecture} MAPE",
                    table5_result.mape(model_name, microarchitecture),
                    paper.TABLE5_MAPE[model_name][microarchitecture],
                )
            )
    print(format_paper_comparison("Table 5 — MAPE (fraction)", rows))

    # Paper shape: GRANITE < Ithemal+ < Ithemal on average across the
    # microarchitectures.
    assert averages["granite"] < averages["ithemal+"]
    assert averages["ithemal+"] < averages["ithemal"] * 1.05

    # GRANITE improves over vanilla Ithemal on every single microarchitecture.
    for microarchitecture in TARGET_MICROARCHITECTURES:
        assert table5_result.mape("granite", microarchitecture) < table5_result.mape(
            "ithemal", microarchitecture
        )


def test_table5_pearson_correlations(benchmark, table5_result):
    """Paper shape: GRANITE and Ithemal+ have far better Pearson correlation
    than vanilla Ithemal (whose dot-product decoder distorts the scale)."""
    def analyse():
        return (
            np.mean([table5_result.models["granite"].test_metrics[m].pearson
                     for m in TARGET_MICROARCHITECTURES]),
            np.mean([table5_result.models["ithemal"].test_metrics[m].pearson
                     for m in TARGET_MICROARCHITECTURES]),
        )

    granite_pearson, ithemal_pearson = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print(f"\nmean Pearson: granite={granite_pearson:.4f} ithemal={ithemal_pearson:.4f} "
          f"(paper: 0.836 vs 0.308)")
    assert granite_pearson > ithemal_pearson


def test_table5_cross_dataset_degradation(benchmark, table5_result, shared_harness):
    """Section 5.1: models trained on the Ithemal dataset degrade when tested
    on BHive because the measurement methodology differs."""
    granite = table5_result.models["granite"]
    in_domain = granite.average_mape()
    cross = benchmark.pedantic(
        lambda: evaluate_model(granite.model, shared_harness.bhive_splits.test),
        rounds=1, iterations=1,
    )
    cross_average = float(np.mean([metric.mape for metric in cross.values()]))
    print(f"\nGRANITE MAPE in-domain={in_domain:.3f} cross-dataset={cross_average:.3f} "
          f"(paper: 0.069 vs 0.105)")
    assert cross_average > in_domain
