"""Table 6: GRANITE vs Ithemal+ trained and tested on the BHive dataset.

Paper claim: GRANITE outperforms Ithemal+ on all three microarchitectures
(8.44/8.41/9.12 % vs 9.25/9.19/9.45 %) and yields considerably better
Pearson correlation; vanilla Ithemal is excluded because its training is
numerically unstable on BHive.
"""

import numpy as np

from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.eval import paper_reference as paper
from repro.eval.tables import run_table6

from conftest import format_paper_comparison


def _ordering_margins(num_training_steps: int):
    """Assertion margins matched to the training budget.

    At the default quick scale (200 steps) the GRANITE-vs-Ithemal+ ordering
    is the paper's but seed-noisy, so the margins are loose enough that the
    default run does not fail intermittently.  Scaling the run up with
    ``REPRO_BENCH_STEPS`` (see ``conftest.py``) reduces that noise, so the
    margins tighten towards the paper's strict ordering.

    Returns:
        ``(mape_margin, pearson_margin)``: GRANITE must satisfy
        ``granite_mape < ithemal_mape * mape_margin`` and
        ``granite_pearson > ithemal_pearson * pearson_margin``.
    """
    if num_training_steps >= 2000:
        return 1.00, 1.00  # paper-scale training: strict ordering
    if num_training_steps >= 1000:
        return 1.10, 0.80
    return 1.30, 0.55


def test_table6_bhive_comparison(benchmark, quick_scale):
    """Regenerates Table 6 and checks GRANITE's advantage on BHive."""
    result = benchmark.pedantic(lambda: run_table6(quick_scale), rounds=1, iterations=1)

    print()
    print(result.format_table())
    rows = []
    for model_name in ("granite", "ithemal+"):
        for microarchitecture in TARGET_MICROARCHITECTURES:
            rows.append(
                (
                    f"{model_name} / {microarchitecture} MAPE",
                    result.mape(model_name, microarchitecture),
                    paper.TABLE6_MAPE[model_name][microarchitecture],
                )
            )
    print(format_paper_comparison("Table 6 — MAPE on BHive (fraction)", rows))

    mape_margin, pearson_margin = _ordering_margins(quick_scale.num_training_steps)
    print(
        f"margins at {quick_scale.num_training_steps} steps: "
        f"mape x{mape_margin:.2f}, pearson x{pearson_margin:.2f}"
    )

    # Paper shape: GRANITE beats Ithemal+ on average on the BHive dataset.
    assert (
        result.average_mape("granite")
        < result.average_mape("ithemal+") * mape_margin
    )

    # Paper shape: GRANITE's Pearson correlation is better on average.
    granite_pearson = np.mean(
        [result.models["granite"].test_metrics[m].pearson for m in TARGET_MICROARCHITECTURES]
    )
    ithemal_pearson = np.mean(
        [result.models["ithemal+"].test_metrics[m].pearson for m in TARGET_MICROARCHITECTURES]
    )
    print(f"mean Pearson: granite={granite_pearson:.4f} ithemal+={ithemal_pearson:.4f} "
          f"(paper: 0.964 vs 0.639)")
    assert granite_pearson > ithemal_pearson * pearson_margin
