"""Table 6: GRANITE vs Ithemal+ trained and tested on the BHive dataset.

Paper claim: GRANITE outperforms Ithemal+ on all three microarchitectures
(8.44/8.41/9.12 % vs 9.25/9.19/9.45 %) and yields considerably better
Pearson correlation; vanilla Ithemal is excluded because its training is
numerically unstable on BHive.
"""

import numpy as np
import pytest

from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.eval import paper_reference as paper
from repro.eval.tables import run_table6

from conftest import format_paper_comparison


def test_table6_bhive_comparison(benchmark, quick_scale):
    """Regenerates Table 6 and checks GRANITE's advantage on BHive."""
    result = benchmark.pedantic(lambda: run_table6(quick_scale), rounds=1, iterations=1)

    print()
    print(result.format_table())
    rows = []
    for model_name in ("granite", "ithemal+"):
        for microarchitecture in TARGET_MICROARCHITECTURES:
            rows.append(
                (
                    f"{model_name} / {microarchitecture} MAPE",
                    result.mape(model_name, microarchitecture),
                    paper.TABLE6_MAPE[model_name][microarchitecture],
                )
            )
    print(format_paper_comparison("Table 6 — MAPE on BHive (fraction)", rows))

    # Paper shape: GRANITE beats Ithemal+ on average on the BHive dataset.
    assert result.average_mape("granite") < result.average_mape("ithemal+") * 1.10

    # Paper shape: GRANITE's Pearson correlation is better on average.
    granite_pearson = np.mean(
        [result.models["granite"].test_metrics[m].pearson for m in TARGET_MICROARCHITECTURES]
    )
    ithemal_pearson = np.mean(
        [result.models["ithemal+"].test_metrics[m].pearson for m in TARGET_MICROARCHITECTURES]
    )
    print(f"mean Pearson: granite={granite_pearson:.4f} ithemal+={ithemal_pearson:.4f} "
          f"(paper: 0.964 vs 0.639)")
    assert granite_pearson > ithemal_pearson * 0.8
