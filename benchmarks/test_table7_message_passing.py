"""Table 7: sensitivity to the number of message passing iterations.

Paper claim: the test error decreases as the number of message passing
iterations grows from 1 to 8 (8.48→6.67 % on Ivy Bridge) and increases again
at 12; a single iteration is always the worst configuration.  The
reproduction sweeps 1, 2, 4 and 8 iterations and checks that more than one
iteration of message passing is needed for the best accuracy.
"""

import numpy as np

from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.eval import paper_reference as paper
from repro.eval.tables import run_table7

from conftest import format_paper_comparison

ITERATION_COUNTS = (1, 2, 4, 8)


def test_table7_message_passing_sweep(benchmark, quick_scale):
    result = benchmark.pedantic(
        lambda: run_table7(quick_scale, iteration_counts=ITERATION_COUNTS),
        rounds=1,
        iterations=1,
    )

    print()
    print(result.format_table())
    rows = []
    for iterations in ITERATION_COUNTS:
        rows.append(
            (
                f"GRANITE mp={iterations} mean MAPE",
                result.average_mape(iterations),
                float(np.mean([paper.TABLE7_MESSAGE_PASSING_MAPE[m][iterations]
                               for m in TARGET_MICROARCHITECTURES])),
            )
        )
    print(format_paper_comparison("Table 7 — message passing sweep", rows))

    averages = {iterations: result.average_mape(iterations) for iterations in ITERATION_COUNTS}

    # Paper shape: a single message passing iteration is not the best
    # configuration — propagating information along the dependency graph for
    # several hops pays off.
    best_iterations = min(averages, key=averages.get)
    print(f"best iteration count: {best_iterations} (paper: 8)")
    assert best_iterations > 1

    # The best multi-iteration configuration improves on one iteration.
    assert min(averages[2], averages[4], averages[8]) < averages[1]
