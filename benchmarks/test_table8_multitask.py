"""Table 8: the effect of multi-task training.

Paper claim: training one model with per-microarchitecture decoder heads is
at least as accurate as training separate single-task models for GRANITE and
Ithemal+ (e.g. GRANITE Ivy Bridge 7.02 % single-task vs 6.67 % multi-task),
while costing roughly one third per microarchitecture.  (Vanilla Ithemal is
the exception — its dot-product decoder is too weak to benefit.)
"""

import numpy as np

from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.eval import paper_reference as paper
from repro.eval.tables import run_table8

from conftest import format_paper_comparison

MODEL_NAMES = ("granite", "ithemal+")


def test_table8_multitask_vs_singletask(benchmark, quick_scale):
    result = benchmark.pedantic(
        lambda: run_table8(quick_scale, model_names=MODEL_NAMES), rounds=1, iterations=1
    )

    print()
    print(result.format_table())
    rows = []
    for model_name in MODEL_NAMES:
        for microarchitecture in TARGET_MICROARCHITECTURES:
            paper_single, paper_multi = paper.TABLE8_MULTI_TASK_MAPE[model_name][microarchitecture]
            rows.append(
                (
                    f"{model_name}/{microarchitecture} multi-task MAPE",
                    result.multi_task_mape[model_name][microarchitecture],
                    paper_multi,
                )
            )
    print(format_paper_comparison("Table 8 — multi-task MAPE", rows))

    for model_name in MODEL_NAMES:
        single_average = float(np.mean(list(result.single_task_mape[model_name].values())))
        multi_average = float(np.mean(list(result.multi_task_mape[model_name].values())))
        improvement = result.multitask_improvement(model_name)
        print(
            f"{model_name}: single-task mean MAPE {single_average:.3f}, "
            f"multi-task mean MAPE {multi_average:.3f}, improvement {improvement:+.3f}"
        )
        # Paper shape: multi-task training does not hurt — the shared GNN /
        # LSTM learns a representation strong enough to serve all three
        # microarchitectures at once.  (Allow a small tolerance since the
        # quick runs are noisy.)
        assert multi_average <= single_average + 0.06

    # Multi-task GRANITE also keeps its advantage over multi-task Ithemal+.
    granite_multi = float(np.mean(list(result.multi_task_mape["granite"].values())))
    ithemal_multi = float(np.mean(list(result.multi_task_mape["ithemal+"].values())))
    assert granite_multi < ithemal_multi * 1.10
