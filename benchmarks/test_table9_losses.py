"""Table 9: the impact of the training loss function.

Paper claim: training with MAPE gives the best (or near-best) test MAPE;
relative MSE is a viable alternative; losses without normalisation by the
ground-truth value (plain MSE, plain Huber) are significantly worse because
of the high dynamic range of the throughput values (MSE-trained MAPE is
24.9-27.1 % vs 7.3-8.3 % for MAPE-trained).
"""

import numpy as np

from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.eval import paper_reference as paper
from repro.eval.tables import run_table9

from conftest import format_paper_comparison

LOSS_NAMES = ("mape", "mse", "relative_mse", "huber", "relative_huber")


def test_table9_loss_functions(benchmark, quick_scale):
    result = benchmark.pedantic(
        lambda: run_table9(quick_scale, loss_names=LOSS_NAMES), rounds=1, iterations=1
    )

    print()
    print(result.format_table())
    rows = []
    for loss_name in LOSS_NAMES:
        measured = float(
            np.mean([result.mape(loss_name, m) for m in TARGET_MICROARCHITECTURES])
        )
        reference = float(
            np.mean([paper.TABLE9_LOSS_MAPE[m][loss_name] for m in TARGET_MICROARCHITECTURES])
        )
        rows.append((f"train loss = {loss_name}: test MAPE", measured, reference))
    print(format_paper_comparison("Table 9 — test MAPE by training loss", rows))

    mean_mape = {
        loss_name: float(np.mean([result.mape(loss_name, m) for m in TARGET_MICROARCHITECTURES]))
        for loss_name in LOSS_NAMES
    }

    # Paper shape: normalised losses (MAPE, relative MSE, relative Huber)
    # clearly beat the un-normalised ones (MSE, Huber) on test MAPE.
    best_normalised = min(mean_mape["mape"], mean_mape["relative_mse"], mean_mape["relative_huber"])
    assert best_normalised < mean_mape["mse"]
    assert best_normalised < mean_mape["huber"]

    # Paper shape: MAPE training is the best or near-best choice.
    best_loss = min(mean_mape, key=mean_mape.get)
    print(f"best training loss by test MAPE: {best_loss} (paper: mape / relative_mse)")
    assert mean_mape["mape"] <= best_normalised * 1.25
