"""Tail-latency SLO benchmark: trace replay with and without hedging.

The serving stack's tail story is measured the only honest way — by
replaying a seeded, Zipf-skewed, bursty trace against a live
:class:`AsyncPredictionService` and recording what every request
experienced.  A straggler fault is injected below the service: the first
time a block text reaches the backing service there is a seeded chance
the submission stalls for ``STRAGGLE_MS`` (a transient slow replica — the
classic tail source).  A *retry of the same blocks does not stall*, which
is precisely the case hedged requests exist for:

* **unhedged leg** — every straggler's full stall lands in some client's
  latency; p99.9 is the stall, and the SLO verdict fails.
* **hedged leg** — once a request outlives the observed latency quantile
  a duplicate is submitted; the duplicate misses the (already-seen)
  stall, wins the race, and the stall never reaches the client.  p99.9
  collapses back towards the service's normal latency and the same SLO
  passes.

Both legs replay the *same* trace against a fresh service with the same
fault seed, so the straggle pattern is identical and the measured gap is
purely the hedging effect.  The realized numbers (p50/p99/p99.9, jitter,
hedge counters, SLO verdicts) are written to ``BENCH_tail_latency.json``
next to this file — checked in, so the tail numbers are diffable across
changes.

``REPRO_BENCH_STEPS`` scales the trace (and tightens the improvement
margin) exactly like the other serving benchmarks.
"""

import json
import os
import threading
import time
import zlib

from repro.serve import (
    AsyncPredictionService,
    AsyncServiceConfig,
    PredictionRequest,
    PredictionService,
    SloPolicy,
    TraceReplayer,
    synthesize_trace,
)

TRACE_SEED = 29
FAULT_SEED = 61
STRAGGLE_MS = 250.0
STRAGGLE_PROBABILITY = 0.30  # per block text, via a seeded content hash
NUM_KEYS = 16
MEAN_RATE_RPS = 120.0
WARMUP_REQUESTS = 12

REPORT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_tail_latency.json")


def _bench_steps() -> int:
    return int(os.environ.get("REPRO_BENCH_STEPS", "0") or 0)


def _num_requests() -> int:
    steps = _bench_steps()
    return 400 if steps >= 1000 else 80


def _improvement_margin() -> float:
    """Hedged p99.9 must be below this fraction of the unhedged p99.9.

    The expected gap is ~STRAGGLE_MS vs a few milliseconds, so even the
    quick-scale margin is far from the noise floor; paper-scale runs
    tighten it further.
    """
    return 0.5 if _bench_steps() >= 1000 else 0.6


class StragglerService(PredictionService):
    """Injects seeded first-submission stalls below the async front end.

    Whether a block text is straggle-prone is a pure function of the text
    and the fault seed (a content hash against ``STRAGGLE_PROBABILITY``),
    so both legs stall on exactly the same keys regardless of how their
    traffic happens to coalesce.  Only the *first* submission of a prone
    text stalls — a transient slow replica — so a hedge resubmitting the
    same blocks sails through.  Faults fire only once :meth:`arm` is
    called, keeping the warmup phase stall-free.
    """

    def __init__(self, fault_seed: int, straggle_s: float) -> None:
        super().__init__()
        self._fault_seed = fault_seed
        self._straggle_s = straggle_s
        self._seen = set()
        self._fault_lock = threading.Lock()
        self._armed = False
        self.straggles = 0

    def arm(self) -> None:
        self._armed = True

    def _is_prone(self, text: str) -> bool:
        digest = zlib.crc32(f"{self._fault_seed}:{text}".encode("utf-8"))
        return digest % 1000 < STRAGGLE_PROBABILITY * 1000

    def submit(self, requests):
        stall = False
        with self._fault_lock:
            if self._armed:
                for request in requests:
                    for text in request.block_texts:
                        if text not in self._seen:
                            self._seen.add(text)
                            if self._is_prone(text):
                                stall = True
                                self.straggles += 1
        if stall:
            time.sleep(self._straggle_s)
        return super().submit(requests)


def _leg_config(hedge_enabled: bool) -> AsyncServiceConfig:
    return AsyncServiceConfig(
        max_batch_size=4,
        max_latency_ms=2.0,
        max_queue_blocks=8192,
        hedge_enabled=hedge_enabled,
        hedge_quantile=0.5,
        hedge_min_samples=8,
        hedge_min_ms=1.0,
        hedge_max_ms=25.0,
        hedge_poll_ms=1.0,
        max_concurrent_flushes=4,
    )


def _run_leg(trace, hedge_enabled: bool, slo: SloPolicy):
    """One replay of ``trace`` on a fresh service with a fresh fault seed."""
    inner = StragglerService(FAULT_SEED, STRAGGLE_MS / 1e3)
    with AsyncPredictionService(
        _leg_config(hedge_enabled), service=inner
    ) as front_end:
        # Warm the code paths and the hedge controller's latency reservoir
        # (>= hedge_min_samples) with out-of-universe blocks; faults are
        # not armed yet, so the trace's straggle pattern is untouched.
        for index in range(WARMUP_REQUESTS):
            front_end.predict_blocks([f"add rax, {4096 + index}"])
        inner.arm()
        replayer = TraceReplayer(front_end, slo=slo, result_timeout_s=120.0)
        report = replayer.run(trace)
    return report, inner.straggles


def test_hedging_cuts_replayed_tail_latency():
    num_requests = _num_requests()
    trace = synthesize_trace(
        num_requests=num_requests,
        seed=TRACE_SEED,
        num_keys=NUM_KEYS,
        zipf_alpha=1.1,
        mean_rate_rps=MEAN_RATE_RPS,
        burstiness=4.0,
        burst_fraction=0.2,
    )
    # The SLO the paper-style serving story declares: the tail must stay
    # well below the injected stall.  Unhedged, a single straggler busts
    # it; hedged, it must hold.
    slo = SloPolicy(p999_ms=STRAGGLE_MS / 2, max_error_rate=0.0)

    unhedged, unhedged_straggles = _run_leg(trace, hedge_enabled=False, slo=slo)
    hedged, hedged_straggles = _run_leg(trace, hedge_enabled=True, slo=slo)

    print()
    print(
        f"--- trace replay: {num_requests} requests, {NUM_KEYS} Zipf keys, "
        f"{STRAGGLE_MS:.0f} ms first-submission straggles ---"
    )
    for label, report, straggles in (
        ("unhedged", unhedged, unhedged_straggles),
        ("hedged", hedged, hedged_straggles),
    ):
        print(
            f"{label:<9} p50={report.p50_ms:7.2f} ms  p99={report.p99_ms:7.2f} ms  "
            f"p99.9={report.p999_ms:7.2f} ms  jitter={report.jitter_ms:6.2f} ms  "
            f"straggles={straggles}  hedges={report.hedges_issued}"
            f"/{report.hedges_won} won  slo_met={report.slo.met}"
        )

    # Same seed, same first-seen order: the fault pattern is identical, so
    # the comparison below isolates the hedging effect.
    assert unhedged_straggles == hedged_straggles
    assert unhedged_straggles >= 2, "the fault injector never fired"
    for report in (unhedged, hedged):
        assert report.completed == num_requests
        assert report.errors == 0 and report.rejected == 0

    # Unhedged, the straggler's stall IS the tail — and busts the SLO.
    assert unhedged.p999_ms >= STRAGGLE_MS * 0.8
    assert not unhedged.slo.met
    assert unhedged.hedges_issued == 0

    # Hedged, the duplicate rescues every straggler: the same SLO holds
    # and the p99.9 improvement is decisive, not noise.
    margin = _improvement_margin()
    assert hedged.hedges_issued >= hedged_straggles
    assert hedged.hedges_won >= 1
    assert hedged.slo.met, f"hedged SLO violations: {hedged.slo.violations}"
    assert hedged.p999_ms < margin * unhedged.p999_ms, (
        f"hedged p99.9 ({hedged.p999_ms:.2f} ms) is not below {margin:.2f}x "
        f"the unhedged p99.9 ({unhedged.p999_ms:.2f} ms)"
    )

    payload = {
        "benchmark": "tail_latency_trace_replay",
        "scale": {
            "num_requests": num_requests,
            "bench_steps": _bench_steps(),
            "straggle_ms": STRAGGLE_MS,
            "straggle_probability": STRAGGLE_PROBABILITY,
            "straggles": unhedged_straggles,
        },
        "trace": trace.metadata,
        "slo": slo.to_dict(),
        "unhedged": unhedged.to_dict(),
        "hedged": hedged.to_dict(),
        "improvement": {
            "p99_ratio": hedged.p99_ms / unhedged.p99_ms,
            "p999_ratio": hedged.p999_ms / unhedged.p999_ms,
        },
    }
    with open(REPORT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {REPORT_PATH}")
