"""Training throughput: fused fast path vs. the composed (seed) tape.

The PR this benchmark guards vectorized the training loop end to end:
fused tape ops with hand-written backwards (Dense+activation, LayerNorm,
one node per LSTM time step), an O(N) ``scatter_rows`` primitive replacing
Ithemal's quadratic permutation-matrix scatter, ``np.bincount`` scatter-add
backwards instead of ``np.add.at``, preallocated gradient buffers, a
flat-slab Adam and array-based batch sampling in the Trainer.

Scenarios, per model (GRANITE and Ithemal+), at the paper's batch size 100:

* **seed** — ``use_fused_ops(False)``: the pre-PR composed tape
  (per-gate LSTM closures, permutation-matrix scatter, ``np.add.at``
  backwards, per-parameter Adam).
* **fast** — the default fused path.

Gates (ISSUE 5): >= 2x Ithemal+ and >= 1.5x GRANITE training steps/sec over
the seed path, with the loss trajectory reproduced.

Equivalence tolerance: the fused *forwards* replicate the composed float
arithmetic operation-for-operation, so same-seed per-step losses are
expected to agree essentially exactly; the *backwards* may legitimately
reorder float summations (bincount vs. add.at accumulation order, fused
matmul gradients), which can drift the weights by a few ulps per step.  The
trajectory gate is therefore a relative tolerance of 1e-8 per step (measured
drift at quick scale: < 1e-12), and the first step — taken before any
update, where only forward arithmetic matters — must match to 1e-12.

Wall-clock noise: both paths run in the same process and the gate is their
ratio, so machine speed cancels; the first step of each run (cold encode
caches for both) is excluded from the throughput statistic.
"""

import os

import numpy as np
import pytest

from repro.data.datasets import build_ithemal_like_dataset
from repro.models import create_model
from repro.models.config import TrainingConfig
from repro.nn.tensor import use_fused_ops
from repro.training.trainer import Trainer

#: The paper's Table 4 training batch size.
BATCH_SIZE = 100

#: Minimum fused-over-seed speedup in training steps/sec (ISSUE 5 gates).
SPEEDUP_TARGETS = {"granite": 1.5, "ithemal+": 2.0}

#: Per-step relative loss tolerance of the fused-vs-seed trajectory (see
#: the module docstring for why this is not exact zero).
LOSS_TRAJECTORY_RTOL = 1e-8

#: First-step losses are computed before any weight update, so only the
#: (operation-identical) forward arithmetic matters.
FIRST_STEP_RTOL = 1e-12


def _num_steps() -> int:
    """Steps per timed run; REPRO_BENCH_STEPS scales it up (capped sanely)."""
    steps = int(os.environ.get("REPRO_BENCH_STEPS", "0") or 0)
    return max(8, min(steps, 200)) if steps else 8


@pytest.fixture(scope="module")
def dataset():
    # Large enough to sample batch-size-100 batches without replacement.
    return build_ithemal_like_dataset(160, seed=5)


def _train(name: str, fused: bool, steps: int, dataset):
    model = create_model(name, small=True, seed=31)
    trainer = Trainer(model, TrainingConfig(batch_size=BATCH_SIZE, num_steps=steps, seed=11))
    with use_fused_ops(fused):
        return trainer.train(dataset)


def _steady_steps_per_second(history) -> float:
    """Steps/sec excluding the first (cold-encode-cache) step."""
    steady = history.steps[1:] or history.steps
    return len(steady) / sum(record.seconds for record in steady)


@pytest.mark.parametrize("name", ["granite", "ithemal+"])
def test_training_throughput_and_equivalence(name, dataset):
    steps = _num_steps()
    seed_history = _train(name, fused=False, steps=steps, dataset=dataset)
    fast_history = _train(name, fused=True, steps=steps, dataset=dataset)

    seed_losses = seed_history.loss_curve()
    fast_losses = fast_history.loss_curve()
    np.testing.assert_allclose(fast_losses[0], seed_losses[0], rtol=FIRST_STEP_RTOL)
    np.testing.assert_allclose(fast_losses, seed_losses, rtol=LOSS_TRAJECTORY_RTOL)

    seed_rate = _steady_steps_per_second(seed_history)
    fast_rate = _steady_steps_per_second(fast_history)
    speedup = fast_rate / seed_rate
    drift = float(
        np.max(np.abs(fast_losses - seed_losses) / np.maximum(np.abs(seed_losses), 1e-12))
    )
    print(
        f"\n[training throughput] {name}: seed {seed_rate:.2f} steps/s, "
        f"fast {fast_rate:.2f} steps/s, speedup {speedup:.2f}x "
        f"(gate {SPEEDUP_TARGETS[name]:.1f}x), max rel loss drift {drift:.2e}"
    )
    assert speedup >= SPEEDUP_TARGETS[name], (
        f"{name} training fast path speedup {speedup:.2f}x below the "
        f"{SPEEDUP_TARGETS[name]:.1f}x gate (seed {seed_rate:.2f} vs fast "
        f"{fast_rate:.2f} steps/s)"
    )


def test_trainer_records_steps_per_second(dataset):
    history = _train("ithemal+", fused=True, steps=3, dataset=dataset)
    assert history.steps_per_second > 0.0
    assert len(history.steps) == 3
