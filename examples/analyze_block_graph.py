#!/usr/bin/env python3
"""Inspect the GRANITE graph encoding and the analytical oracle for a block.

A diagnostic / educational example: it takes a basic block (the Figure 1
example by default, or any Intel-syntax snippet passed on stdin), builds the
GRANITE dependency graph, prints every node and edge with its type (the
encoding of Tables 2 and 3), and then shows the analytical oracle's
throughput breakdown (port pressure vs front-end vs latency bound) for all
three microarchitectures.

Run with::

    python examples/analyze_block_graph.py
    echo "ADD RAX, RBX\nIMUL RAX, RCX" | python examples/analyze_block_graph.py --stdin
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import argparse

from repro.graph import build_block_graph
from repro.isa import BasicBlock
from repro.uarch import MICROARCHITECTURES, ThroughputOracle

FIGURE1_BLOCK = """
MOV RAX, 12345
ADD DWORD PTR [RAX + 16], EBX
"""


def describe_graph(block: BasicBlock) -> None:
    graph = build_block_graph(block)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{graph.num_instructions} instructions\n")

    print("nodes:")
    for index, node in enumerate(graph.nodes):
        marker = "*" if index in graph.instruction_node_indices else " "
        print(f"  {marker} [{index:3d}] {node.node_type.value:<20} {node.token}")

    print("\nedges:")
    for edge in graph.edges:
        sender = graph.nodes[edge.sender].token
        receiver = graph.nodes[edge.receiver].token
        print(f"    {sender:>10} --{edge.edge_type.value:^24}--> {receiver}")

    dependencies = block.data_dependencies()
    print(f"\ndata dependencies ({len(dependencies)}):")
    for dependency in dependencies:
        producer = block[dependency.producer].render()
        consumer = block[dependency.consumer].render()
        print(f"    {producer!r} -> {consumer!r}  via {dependency.resource}")


def describe_oracle(block: BasicBlock) -> None:
    print("\nanalytical oracle breakdown (cycles per loop iteration):")
    print(f"{'microarchitecture':<14} {'estimate':>9} {'ports':>7} {'frontend':>9} "
          f"{'latency':>8} {'serial':>7} {'µops':>5}")
    for key, microarchitecture in MICROARCHITECTURES.items():
        breakdown = ThroughputOracle(microarchitecture).breakdown(block)
        print(f"{microarchitecture.name:<14} {breakdown.cycles_per_iteration:9.2f} "
              f"{breakdown.port_pressure_bound:7.2f} {breakdown.frontend_bound:9.2f} "
              f"{breakdown.latency_bound:8.2f} {breakdown.serialization_penalty:7.2f} "
              f"{breakdown.num_micro_ops:5d}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stdin", action="store_true",
                        help="read the basic block from standard input")
    args = parser.parse_args()

    text = sys.stdin.read() if args.stdin else FIGURE1_BLOCK
    block = BasicBlock.from_text(text)
    print("basic block:")
    for instruction in block:
        print(f"    {instruction.render()}")
    print()
    describe_graph(block)
    describe_oracle(block)


if __name__ == "__main__":
    main()
