#!/usr/bin/env python3
"""Using a throughput model inside a compiler-style optimisation pass.

The paper motivates fast throughput estimation with code optimisation use
cases (instruction scheduling, peephole selection, superoptimisation): a
compiler has several candidate instruction sequences for the same
computation and needs to pick the fastest one without running it.

This example mimics that workflow:

1. it trains a small multi-task GRANITE model,
2. it presents several classic peephole alternatives (multiply vs shift+add,
   division vs reciprocal multiplication, branchy vs branchless selection,
   memory-heavy vs register-resident spills),
3. it uses the learned model to rank the candidates per microarchitecture and
   compares the ranking against the analytical oracle (the "ground truth"
   in this offline reproduction).

Run with::

    python examples/compiler_optimization.py [--steps 250]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import argparse
from typing import Dict, List, Tuple

from repro.data import build_ithemal_like_dataset
from repro.isa import BasicBlock
from repro.models import GraniteConfig, GraniteModel, TrainingConfig
from repro.training import Trainer
from repro.uarch import MICROARCHITECTURES, ThroughputOracle

#: Candidate implementations, grouped by the computation they perform.
CANDIDATE_GROUPS: Dict[str, Dict[str, str]] = {
    "multiply by 9": {
        "imul": "IMUL RAX, RAX, 9",
        "shift+add": "LEA RAX, [RAX + RAX*8]",
    },
    "divide by constant": {
        "idiv": """
            MOV RAX, RDI
            CQO
            IDIV RCX
        """,
        "reciprocal multiply": """
            MOV RAX, RDI
            IMUL RDX, RAX
            SHR RDX, 3
            MOV RAX, RDX
        """,
    },
    "select maximum": {
        "branchless cmov": """
            CMP RDI, RSI
            MOV RAX, RSI
            CMOVG RAX, RDI
        """,
        "arithmetic trick": """
            MOV RAX, RDI
            SUB RAX, RSI
            SAR RAX, 63
            AND RAX, RSI
            MOV RCX, RDI
            SUB RCX, RAX
            MOV RAX, RCX
        """,
    },
    "accumulate 4 values": {
        "register accumulator": """
            ADD RAX, RDI
            ADD RAX, RSI
            ADD RAX, RDX
            ADD RAX, RCX
        """,
        "memory accumulator": """
            ADD QWORD PTR [RSP + 8], RDI
            ADD QWORD PTR [RSP + 8], RSI
            ADD QWORD PTR [RSP + 8], RDX
            ADD QWORD PTR [RSP + 8], RCX
        """,
    },
}


def train_model(steps: int, blocks: int) -> GraniteModel:
    dataset = build_ithemal_like_dataset(blocks, seed=3)
    splits = dataset.paper_splits(seed=0)
    model = GraniteModel(GraniteConfig.small())
    trainer = Trainer(
        model,
        TrainingConfig(num_steps=steps, batch_size=32, validation_interval=max(steps // 4, 10)),
    )
    trainer.train(splits.train, splits.validation)
    return model


def rank_candidates(
    model: GraniteModel, candidates: Dict[str, str], task: str
) -> Tuple[List[Tuple[str, float]], List[Tuple[str, float]]]:
    """Returns (model ranking, oracle ranking), cheapest first."""
    oracle = ThroughputOracle(MICROARCHITECTURES[task])
    blocks = {name: BasicBlock.from_text(text) for name, text in candidates.items()}
    model_costs = {
        name: model.predict_single(block)[task] / 100.0 for name, block in blocks.items()
    }
    oracle_costs = {name: oracle.throughput(block) for name, block in blocks.items()}
    model_ranking = sorted(model_costs.items(), key=lambda item: item[1])
    oracle_ranking = sorted(oracle_costs.items(), key=lambda item: item[1])
    return model_ranking, oracle_ranking


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=250)
    parser.add_argument("--blocks", type=int, default=600)
    parser.add_argument("--microarchitecture", default="haswell",
                        choices=sorted(MICROARCHITECTURES))
    args = parser.parse_args()

    print(f"Training GRANITE ({args.steps} steps) ...")
    model = train_model(args.steps, args.blocks)

    task = args.microarchitecture
    agreements = 0
    print(f"\nRanking peephole candidates for {MICROARCHITECTURES[task].name}\n")
    for group_name, candidates in CANDIDATE_GROUPS.items():
        model_ranking, oracle_ranking = rank_candidates(model, candidates, task)
        model_best = model_ranking[0][0]
        oracle_best = oracle_ranking[0][0]
        agreements += int(model_best == oracle_best)
        print(f"-- {group_name}")
        for name, cost in model_ranking:
            marker = "*" if name == model_best else " "
            oracle_cost = dict(oracle_ranking)[name]
            print(f"   {marker} {name:<22} model {cost:6.2f} cyc/iter   oracle {oracle_cost:6.2f}")
        agreement_text = "agrees" if model_best == oracle_best else "DISAGREES"
        print(f"   -> model picks {model_best!r}; oracle picks {oracle_best!r} ({agreement_text})\n")

    total = len(CANDIDATE_GROUPS)
    print(f"Model/oracle agreement on the cheapest candidate: {agreements}/{total} groups")


if __name__ == "__main__":
    main()
