#!/usr/bin/env python3
"""Raw-socket JSON client for the repro prediction HTTP server.

The server side is ``examples/serve_blocks.py --http PORT`` (or any
:class:`repro.serve.PredictionHttpServer`).  This client speaks plain
HTTP/1.1 over a TCP socket — no ``requests``, not even ``http.client`` —
to show that the wire protocol is reachable from anything with a socket.

The same endpoints with ``curl`` (server on port 8000, API key
``demo-key``)::

    $ curl -s localhost:8000/healthz
    {"status": "ok", "uptime_s": 4.2, "requests_handled": 3, ...}

    $ curl -s localhost:8000/v1/models -H 'X-API-Key: demo-key'
    {"models": [{"name": "granite-haswell", "model_name": "granite",
                 "tasks": ["haswell"], "inference_dtype": "float64",
                 "loaded": true, ...}, ...]}

    $ curl -s -X POST localhost:8000/v1/models/granite-haswell/predict \\
        -H 'X-API-Key: demo-key' -H 'Content-Type: application/json' \\
        -d '{"blocks": ["add rax, rbx\\nsub rcx, 4"], "priority": "interactive"}'
    {"request_id": "req-42", "model": "granite-haswell", "num_blocks": 1,
     "seconds": 0.003, "predictions": {"haswell": [171.3]}}

    $ curl -sN -X POST localhost:8000/v1/models/granite-haswell/predict \\
        -H 'X-API-Key: demo-key' -d '{"blocks": [...], "stream": true}'
    {"chunk": 0, "offset": 0, "num_blocks": 32, "predictions": {...}}
    {"chunk": 1, "offset": 32, "num_blocks": 32, "predictions": {...}}
    {"done": true, "chunks": 2}

    $ curl -s localhost:8000/v1/models/granite-haswell/stats \\
        -H 'X-API-Key: demo-key'
    {"info": {...,"requests_by_tenant": {"demo": 3}},
     "snapshot": {"queue": {...}, "flush": {...}, "model": {...}}, ...}

Back-pressure maps to status codes, not prose: a full queue answers 429
(``{"error": {"code": "queue_full", ...}}``), an expired per-request
deadline 408 (``deadline_expired``), a closed service 503, an unknown
model 404, a missing/bad API key 401 and a model outside the tenant's
allow-list 403.

Usage::

    python examples/http_client.py --port 8000 models
    python examples/http_client.py --port 8000 --api-key demo-key \\
        predict granite-haswell "add rax, rbx" "mov rdx, 8" --stream
    python examples/http_client.py --port 8000 stats granite-haswell
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
from typing import Any, Dict, Iterator, Optional, Tuple


def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    api_key: Optional[str] = None,
    timeout: float = 120.0,
) -> Tuple[int, bytes]:
    """One HTTP/1.1 exchange over a fresh socket; returns (status, body).

    Chunked (streaming) responses are de-chunked into one body — use
    :func:`stream_lines` to consume NDJSON lines as they arrive instead.
    """
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
    )
    if api_key:
        head += f"X-API-Key: {api_key}\r\n"
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(head.encode("latin-1") + b"\r\n" + body)
        raw = b""
        while True:
            part = sock.recv(65536)
            if not part:
                break
            raw += part
    header_blob, _, rest = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    if b"transfer-encoding: chunked" in header_blob.lower():
        rest = b"".join(_iter_chunks(rest))
    return status, rest


def _iter_chunks(buffer: bytes) -> Iterator[bytes]:
    """Decodes an already-buffered chunked transfer body."""
    while buffer:
        size_line, _, buffer = buffer.partition(b"\r\n")
        size = int(size_line, 16)
        if size == 0:
            return
        yield buffer[:size]
        buffer = buffer[size + 2 :]


def stream_lines(
    host: str,
    port: int,
    path: str,
    payload: Dict[str, Any],
    api_key: Optional[str] = None,
    timeout: float = 120.0,
) -> Iterator[Dict[str, Any]]:
    """POSTs ``{"stream": true}`` and yields NDJSON lines as they arrive.

    Unlike :func:`http_request` this reads incrementally, so early
    micro-batches are consumed while later chunks are still queued
    server-side.
    """
    body = json.dumps(dict(payload, stream=True)).encode("utf-8")
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
    )
    if api_key:
        head += f"X-API-Key: {api_key}\r\n"
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(head.encode("latin-1") + b"\r\n" + body)
        reader = sock.makefile("rb")
        status_line = reader.readline()
        status = int(status_line.split(b" ", 2)[1])
        chunked = False
        while True:
            line = reader.readline().strip()
            if not line:
                break
            if line.lower() == b"transfer-encoding: chunked":
                chunked = True
        if not chunked:
            # An error response (4xx/5xx) arrives un-streamed.
            blob = reader.read()
            raise RuntimeError(f"HTTP {status}: {blob.decode('utf-8', 'replace')}")
        while True:
            size = int(reader.readline().strip() or b"0", 16)
            if size == 0:
                return
            chunk = reader.read(size)
            reader.read(2)  # trailing CRLF
            yield json.loads(chunk)


def _preview(predictions: Dict[str, Any], limit: int = 3) -> Dict[str, Any]:
    return {
        task: [round(float(v), 2) for v in values[:limit]]
        for task, values in predictions.items()
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--api-key", default=None)
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("health", help="GET /healthz")
    commands.add_parser("models", help="GET /v1/models")
    stats = commands.add_parser("stats", help="GET /v1/models/MODEL/stats")
    stats.add_argument("model")
    predict = commands.add_parser(
        "predict", help="POST /v1/models/MODEL/predict"
    )
    predict.add_argument("model")
    predict.add_argument("blocks", nargs="+", help="basic-block texts")
    predict.add_argument("--stream", action="store_true")
    predict.add_argument(
        "--priority", default="normal", help="interactive | normal | bulk"
    )
    predict.add_argument("--deadline-ms", type=float, default=None)
    arguments = parser.parse_args()

    if arguments.command == "health":
        status, body = http_request(arguments.host, arguments.port, "GET", "/healthz")
    elif arguments.command == "models":
        status, body = http_request(
            arguments.host, arguments.port, "GET", "/v1/models",
            api_key=arguments.api_key,
        )
    elif arguments.command == "stats":
        status, body = http_request(
            arguments.host, arguments.port, "GET",
            f"/v1/models/{arguments.model}/stats", api_key=arguments.api_key,
        )
    elif arguments.command == "predict" and arguments.stream:
        payload: Dict[str, Any] = {
            "blocks": arguments.blocks,
            "priority": arguments.priority,
        }
        if arguments.deadline_ms is not None:
            payload["deadline_ms"] = arguments.deadline_ms
        for line in stream_lines(
            arguments.host, arguments.port,
            f"/v1/models/{arguments.model}/predict", payload,
            api_key=arguments.api_key,
        ):
            if "predictions" in line:
                line = dict(line, predictions=_preview(line["predictions"]))
            print(json.dumps(line))
        return 0
    else:
        payload = {"blocks": arguments.blocks, "priority": arguments.priority}
        if arguments.deadline_ms is not None:
            payload["deadline_ms"] = arguments.deadline_ms
        status, body = http_request(
            arguments.host, arguments.port, "POST",
            f"/v1/models/{arguments.model}/predict", payload,
            api_key=arguments.api_key,
        )

    document = json.loads(body)
    print(json.dumps(document, indent=2))
    return 0 if status == 200 else 1


if __name__ == "__main__":
    sys.exit(main())
