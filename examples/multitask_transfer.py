#!/usr/bin/env python3
"""Multi-task learning across microarchitectures (Section 5.3 of the paper).

The paper's multi-task contribution: one shared graph network with a small
dedicated decoder head per microarchitecture learns from all targets at
once, costs roughly as much as a single single-task model to train, and is
usually *more* accurate than per-microarchitecture models.

This example demonstrates exactly that trade-off:

1. it trains three single-task GRANITE models (one per microarchitecture),
2. it trains one multi-task GRANITE model with three heads,
3. it compares test MAPE and wall-clock training cost per microarchitecture,
   reproducing the shape of Table 8 and the cost argument of Section 5.4.

Run with::

    python examples/multitask_transfer.py [--steps 150]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import argparse
import time
from typing import Dict

import numpy as np

from repro.data import TARGET_MICROARCHITECTURES, build_ithemal_like_dataset
from repro.models import GraniteConfig, GraniteModel, TrainingConfig
from repro.training import Trainer, evaluate_model


def train_granite(tasks, steps: int, splits, seed: int = 0):
    """Trains a GRANITE model for the given tasks; returns (model, seconds)."""
    model = GraniteModel(GraniteConfig.small(tasks=tasks, seed=seed))
    trainer = Trainer(
        model,
        TrainingConfig(num_steps=steps, batch_size=32,
                       validation_interval=max(steps // 4, 10), seed=seed),
    )
    start = time.perf_counter()
    trainer.train(splits.train, splits.validation)
    return model, time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=150)
    parser.add_argument("--blocks", type=int, default=600)
    args = parser.parse_args()

    dataset = build_ithemal_like_dataset(args.blocks, seed=1)
    splits = dataset.paper_splits(seed=0)
    print(f"dataset: {len(splits.train)} train / {len(splits.test)} test blocks\n")

    print("== Training one single-task model per microarchitecture ==")
    single_task_mape: Dict[str, float] = {}
    single_task_seconds = 0.0
    for microarchitecture in TARGET_MICROARCHITECTURES:
        model, seconds = train_granite((microarchitecture,), args.steps, splits)
        metrics = evaluate_model(model, splits.test)
        single_task_mape[microarchitecture] = metrics[microarchitecture].mape
        single_task_seconds += seconds
        print(f"   {microarchitecture:<11} MAPE {metrics[microarchitecture].mape * 100:6.2f}%  "
              f"({seconds:.1f}s)")

    print("\n== Training one multi-task model with three heads ==")
    multi_model, multi_seconds = train_granite(TARGET_MICROARCHITECTURES, args.steps, splits)
    multi_metrics = evaluate_model(multi_model, splits.test)
    for microarchitecture in TARGET_MICROARCHITECTURES:
        print(f"   {microarchitecture:<11} MAPE {multi_metrics[microarchitecture].mape * 100:6.2f}%")

    print("\n== Comparison (Table 8 layout) ==")
    print(f"{'Microarchitecture':<14} {'single-task':>12} {'multi-task':>11}")
    for microarchitecture in TARGET_MICROARCHITECTURES:
        print(f"{microarchitecture:<14} {single_task_mape[microarchitecture] * 100:11.2f}% "
              f"{multi_metrics[microarchitecture].mape * 100:10.2f}%")
    single_mean = float(np.mean(list(single_task_mape.values())))
    multi_mean = float(np.mean([multi_metrics[m].mape for m in TARGET_MICROARCHITECTURES]))
    print(f"{'mean':<14} {single_mean * 100:11.2f}% {multi_mean * 100:10.2f}%")

    print("\n== Training-cost argument (Section 5.4) ==")
    print(f"   three single-task models: {single_task_seconds:6.1f}s total")
    print(f"   one multi-task model:     {multi_seconds:6.1f}s total "
          f"({multi_seconds / 3:.1f}s per microarchitecture)")
    print(f"   -> multi-task cost per microarchitecture is "
          f"{multi_seconds / 3 / (single_task_seconds / 3):.2f}x of a single-task model")


if __name__ == "__main__":
    main()
