#!/usr/bin/env python3
"""Profile a training run: per-phase breakdown and cProfile hotspots.

Future training-performance PRs should start from data, not guesses.  This
harness runs a few training steps and reports where the time goes, split
into the four phases of a step:

* **encode**   — tokenization / graph construction + batch packing,
* **forward**  — the tape forward pass (including the loss),
* **backward** — reverse-mode gradient computation,
* **optimizer** — gradient clipping + the Adam update.

It can compare the fused training fast path against the composed (seed)
tape, and optionally print cProfile's hottest functions.

Run it with::

    python examples/profile_training.py [--model granite] [--steps 10]
    python examples/profile_training.py --model ithemal+ --compare
    python examples/profile_training.py --cprofile --no-fused
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import argparse
import cProfile
import pstats
import time
from typing import Dict, List

import numpy as np

from repro.data.datasets import build_ithemal_like_dataset
from repro.models import create_model
from repro.models.config import TrainingConfig
from repro.nn.optim import clip_gradients_by_global_norm
from repro.nn.tensor import Tensor, use_fused_ops
from repro.training.trainer import Trainer

PHASES = ("encode", "forward", "backward", "optimizer")


def profile_phases(trainer: Trainer, dataset, steps: int) -> Dict[str, List[float]]:
    """Runs ``steps`` training steps, timing each phase separately.

    Mirrors ``Trainer.train_step`` (same batch sampling, loss and update
    sequence) with a ``perf_counter`` between the phases.
    """
    model = trainer.model
    timings: Dict[str, List[float]] = {phase: [] for phase in PHASES}
    all_blocks, labels = trainer._batch_source(dataset)
    batch_size = min(trainer.config.batch_size, len(dataset))
    for _ in range(steps):
        indices = trainer.rng.choice(len(dataset), size=batch_size, replace=False)
        blocks = [all_blocks[index] for index in indices]

        start = time.perf_counter()
        encoded = model.encode_blocks(blocks)
        timings["encode"].append(time.perf_counter() - start)

        start = time.perf_counter()
        predictions = model.forward(encoded)
        total_loss = None
        for task in model.tasks:
            task_loss = trainer.loss_fn(predictions[task], Tensor(labels[task][indices]))
            total_loss = task_loss if total_loss is None else total_loss + task_loss
        timings["forward"].append(time.perf_counter() - start)

        start = time.perf_counter()
        model.zero_grad()
        total_loss.backward()
        timings["backward"].append(time.perf_counter() - start)

        start = time.perf_counter()
        if trainer.config.gradient_clip_norm > 0:
            clip_gradients_by_global_norm(model.parameters(), trainer.config.gradient_clip_norm)
        trainer.optimizer.step()
        timings["optimizer"].append(time.perf_counter() - start)
    return timings


def report(label: str, timings: Dict[str, List[float]]) -> float:
    """Prints the per-phase breakdown; returns total seconds per step."""
    totals = {phase: float(np.sum(values)) for phase, values in timings.items()}
    steps = len(next(iter(timings.values())))
    grand_total = sum(totals.values())
    print(f"\n== {label}: {steps} steps, {steps / grand_total:.2f} steps/s ==")
    print(f"{'phase':<12} {'total s':>10} {'ms/step':>10} {'share':>8}")
    for phase in PHASES:
        seconds = totals[phase]
        print(
            f"{phase:<12} {seconds:>10.3f} {seconds / steps * 1e3:>10.2f}"
            f" {seconds / grand_total:>7.1%}"
        )
    return grand_total / steps


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="granite",
                        choices=["granite", "ithemal", "ithemal+"])
    parser.add_argument("--steps", type=int, default=10, help="timed training steps")
    parser.add_argument("--blocks", type=int, default=160, help="dataset size")
    parser.add_argument("--batch-size", type=int, default=100,
                        help="blocks per training batch (paper: 100)")
    parser.add_argument("--no-fused", action="store_true",
                        help="profile the composed (seed) tape instead of the fast path")
    parser.add_argument("--compare", action="store_true",
                        help="profile both tape modes and print the speedup")
    parser.add_argument("--cprofile", action="store_true",
                        help="additionally print cProfile's 20 hottest functions")
    parser.add_argument("--full-size-model", action="store_true",
                        help="paper-scale (Table 4) model instead of the small preset")
    args = parser.parse_args()

    print(f"Building dataset ({args.blocks} blocks) ...")
    dataset = build_ithemal_like_dataset(args.blocks, seed=5)

    def run(fused: bool) -> float:
        model = create_model(args.model, small=not args.full_size_model, seed=31)
        trainer = Trainer(
            model, TrainingConfig(batch_size=args.batch_size, num_steps=args.steps, seed=11)
        )
        with use_fused_ops(fused):
            trainer.train_step(dataset, step=0)  # warm encode caches
            if args.cprofile:
                profiler = cProfile.Profile()
                profiler.enable()
            timings = profile_phases(trainer, dataset, args.steps)
            if args.cprofile:
                profiler.disable()
        label = f"{args.model} ({'fused fast path' if fused else 'composed seed tape'})"
        seconds_per_step = report(label, timings)
        if args.cprofile:
            print("\n-- cProfile, hottest 20 by internal time --")
            pstats.Stats(profiler).sort_stats("tottime").print_stats(20)
        return seconds_per_step

    if args.compare:
        seed_seconds = run(fused=False)
        fast_seconds = run(fused=True)
        print(f"\nSpeedup (composed -> fused): {seed_seconds / fast_seconds:.2f}x")
    else:
        run(fused=not args.no_fused)


if __name__ == "__main__":
    main()
