#!/usr/bin/env python3
"""Quickstart: train a small GRANITE model and predict block throughput.

This walks through the full pipeline in a couple of minutes on a laptop CPU:

1. build a synthetic dataset labelled by the analytical throughput oracle
   (the offline stand-in for the paper's hardware-measured datasets),
2. train a multi-task GRANITE model (one decoder head per microarchitecture),
3. evaluate it with the paper's metrics (MAPE, Spearman, Pearson),
4. predict the throughput of a hand-written basic block — the example block
   from Table 1 of the paper.

Run it with::

    python examples/quickstart.py [--steps 200] [--blocks 600]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import argparse

from repro.data import build_ithemal_like_dataset
from repro.isa import BasicBlock
from repro.models import GraniteConfig, GraniteModel, TrainingConfig
from repro.training import Trainer, evaluate_model
from repro.uarch import MICROARCHITECTURES, ThroughputOracle

TABLE1_BLOCK = """
CMP R15D, 1
SBB EAX, EAX
AND EAX, 0x8
TEST ECX, ECX
MOV DWORD PTR [RBP - 3], EAX
MOV EAX, 1
CMOVG EAX, ECX
CMP EDX, EAX
"""


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=600, help="dataset size")
    parser.add_argument("--steps", type=int, default=200, help="training steps")
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--full-size-model", action="store_true",
                        help="use the paper-scale (Table 4) model instead of the small preset")
    args = parser.parse_args()

    print("== 1. Building the synthetic Ithemal-like dataset ==")
    dataset = build_ithemal_like_dataset(args.blocks, seed=0)
    splits = dataset.paper_splits(seed=0)
    print(f"   {len(splits.train)} train / {len(splits.validation)} validation / "
          f"{len(splits.test)} test blocks")

    print("== 2. Training multi-task GRANITE ==")
    config = GraniteConfig.paper_defaults() if args.full_size_model else GraniteConfig.small()
    model = GraniteModel(config)
    print(f"   model has {model.num_parameters():,} parameters, "
          f"{config.num_message_passing_iterations} message passing iterations")
    trainer = Trainer(
        model,
        TrainingConfig(num_steps=args.steps, batch_size=args.batch_size,
                       validation_interval=max(args.steps // 5, 10)),
    )
    history = trainer.train(splits.train, splits.validation, verbose=True)
    print(f"   best validation MAPE {history.best_validation_mape:.3f} "
          f"at step {history.best_step} ({history.total_seconds:.1f}s)")

    print("== 3. Test-set metrics (Table 5 format) ==")
    for task, metrics in evaluate_model(model, splits.test).items():
        print(f"   {task:<11} {metrics.format_row()}")

    print("== 4. Predicting the paper's Table 1 example block ==")
    block = BasicBlock.from_text(TABLE1_BLOCK, identifier="table1")
    print(block.render())
    predictions = model.predict_single(block)
    for task, predicted in predictions.items():
        oracle = ThroughputOracle(MICROARCHITECTURES[task])
        oracle_cycles = oracle.throughput(block)
        print(f"   {task:<11} predicted {predicted / 100.0:6.2f} cycles/iteration   "
              f"(analytical oracle: {oracle_cycles:5.2f})")


if __name__ == "__main__":
    main()
