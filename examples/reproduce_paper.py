#!/usr/bin/env python3
"""Regenerate any table or figure of the paper from the command line.

This is the command-line front end to :mod:`repro.eval`.  Each experiment
trains the models it needs at the requested scale and prints the result next
to the values reported in the paper.

Run with::

    python examples/reproduce_paper.py --experiment table5
    python examples/reproduce_paper.py --experiment table7 --scale smoke
    python examples/reproduce_paper.py --experiment all --scale quick
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import argparse
import time

from repro.eval import (
    ExperimentScale,
    render_heatmap_ascii,
    run_decoder_ablation,
    run_edge_ablation,
    run_figure3,
    run_figure4,
    run_figure5,
    run_layernorm_ablation,
    run_readout_ablation,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
    run_table9,
    run_table10,
)


def _print_heatmap_result(result) -> None:
    for model_name, per_uarch in result.diagonal_mass.items():
        for microarchitecture, mass in per_uarch.items():
            print(f"  {model_name:<10} {microarchitecture:<11} diagonal mass (±25%): {mass:.3f}")
    first_model = next(iter(result.histograms))
    print(f"\n  {first_model} / haswell heatmap (measured →, predicted ↑):")
    print(render_heatmap_ascii(result.histograms[first_model]["haswell"]))


def _print_error_result(result) -> None:
    for model_name, per_uarch in result.underestimation.items():
        for microarchitecture, fraction in per_uarch.items():
            print(f"  {model_name:<10} {microarchitecture:<11} underestimated fraction: {fraction:.3f}")


EXPERIMENTS = {
    "table5": lambda scale: run_table5(scale, evaluate_cross_dataset=True).format_table(),
    "table6": lambda scale: run_table6(scale).format_table(),
    "table7": lambda scale: run_table7(scale).format_table(),
    "table8": lambda scale: run_table8(scale).format_table(),
    "table9": lambda scale: run_table9(scale).format_table(),
    "table10": lambda scale: run_table10(scale).format_table(),
    "figure3": lambda scale: run_figure3(scale),
    "figure4": lambda scale: run_figure4(scale),
    "figure5": lambda scale: run_figure5(scale),
    "ablation-decoder": lambda scale: run_decoder_ablation(scale).format_table(),
    "ablation-layernorm": lambda scale: run_layernorm_ablation(scale).format_table(),
    "ablation-edges": lambda scale: run_edge_ablation(scale).format_table(),
    "ablation-readout": lambda scale: run_readout_ablation(scale).format_table(),
}

SCALES = {
    "smoke": ExperimentScale.smoke,
    "quick": ExperimentScale.quick,
    "full": ExperimentScale.full,
}


def run_experiment(name: str, scale: ExperimentScale) -> None:
    print(f"\n=== {name} ===")
    start = time.perf_counter()
    result = EXPERIMENTS[name](scale)
    elapsed = time.perf_counter() - start
    if isinstance(result, str):
        print(result)
    elif hasattr(result, "diagonal_mass"):
        _print_heatmap_result(result)
    elif hasattr(result, "underestimation"):
        _print_error_result(result)
    print(f"({elapsed:.1f}s)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiment",
        default="table5",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument("--scale", default="quick", choices=sorted(SCALES))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    scale = SCALES[args.scale](seed=args.seed)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        run_experiment(name, scale)


if __name__ == "__main__":
    main()
