#!/usr/bin/env python3
"""Serve throughput predictions with the batched prediction service.

Demonstrates the serving stack added for the deployable-cost-model story:

1. train a small GRANITE model and save a checkpoint,
2. warm-start a :class:`repro.serve.PredictionService` from that checkpoint,
3. submit heterogeneous requests (different clients, different batch sizes)
   that the service coalesces into size-bounded micro-batches,
4. stand an :class:`repro.serve.AsyncPredictionService` front end in front
   of the same service and stream prioritised requests through its queue,
5. print per-request predictions and the service throughput counters.

Serving architecture
--------------------

The serving stack has two front ends over one execution core:

* **Synchronous** (:class:`repro.serve.PredictionService`): ``submit()``
  takes a list of requests, coalesces their blocks into micro-batches of at
  most ``max_batch_size``, predicts, and reassembles per-request responses
  before returning.  Simple and deterministic — but every call flushes on
  its own, so independent callers never share a batch.

* **Asynchronous** (:class:`repro.serve.AsyncPredictionService`):
  producers ``submit()`` single requests and immediately get futures; a
  dispatcher thread drains the shared bounded queue and flushes a
  micro-batch when ``max_batch_size`` blocks are pending OR the oldest
  request has waited ``max_latency_ms`` — whichever fires first.  Those two
  knobs *are* the latency/throughput trade-off.  Requests carry priorities
  (:class:`repro.serve.Priority`): interactive traffic jumps queued bulk
  work.  The queue is bounded in blocks; the ``backpressure`` policy either
  blocks producers or rejects with :class:`repro.serve.QueueFullError`.

Execution beneath either front end is controlled by ``ServiceConfig``:
``num_workers=0`` runs in-process; ``num_workers=N`` shards work across N
warm worker processes.  With ``sharding="hash"`` (the default) each block
is routed by a stable hash of its canonical text, so every worker's encode
and prediction caches own a fixed partition of the key space — repeated
traffic stays hot no matter how clients slice it.  Crashed workers are
respawned automatically and their in-flight work is resubmitted.

Mixed-precision serving: ``ServiceConfig(inference_dtype="float32")`` (the
``--dtype float32`` flag below) makes every replica — in-process or the
whole sharded pool — run its no-grad forward in single precision, roughly
2x faster through the Dense/LayerNorm/LSTM matmuls.  Checkpoints still
store float64 master weights, and ``tests/equivalence`` pins float32
predictions to the float64 path within an explicit tolerance/MAPE budget.

Load-adaptive serving
---------------------

``--flush-policy adaptive`` replaces the fixed flush deadline with the
load-adaptive controller: when the queue is idle a lone request flushes
after ~``min_latency_ms`` instead of sitting out the whole deadline, and
under saturation the deadline stretches back to ``--max-latency-ms`` so
flushes stay dense (the ``REPRO_FLUSH_POLICY`` environment variable sets
the default).  With ``--workers N --min-workers LO --max-workers HI`` the
sharded pool also becomes *elastic*: an autoscale monitor grows it when
the queue backs up and shrinks it after sustained idleness, with a
consistent hash ring keeping ~(N-1)/N of every worker's cache partition
in place across each resize.  Requests carry optional per-request
deadlines and their futures can be ``cancel()``-ed while queued — both
drop paths show up in ``AsyncPredictionService.snapshot()``.

Network serving
---------------

``--http PORT`` adds the third layer: a :class:`repro.serve.ModelRegistry`
hosting two named variants warm-started from the same checkpoint — the
``--dtype`` haswell head and a mixed-precision skylake head — behind a
:class:`repro.serve.PredictionHttpServer` (stdlib asyncio, HTTP/1.1 +
JSON).  The demo drives both variants through the socket with per-tenant
API keys, prints the per-model stats, and leaves ``curl`` transcripts to
reproduce each call by hand (``examples/http_client.py`` is a standalone
raw-socket client for the same endpoints; pass ``--http 0`` for an
ephemeral port).

Usage::

    # static flushing, fixed in-process serving (the PR 2/3 behaviour)
    python examples/serve_blocks.py --steps 100 --workers 0

    # adaptive flushing over an elastic 1..3-worker hash-sharded pool
    python examples/serve_blocks.py --workers 1 --min-workers 1 \
        --max-workers 3 --flush-policy adaptive --max-latency-ms 25

    # mixed precision on top: float32 replicas behind the same queue
    python examples/serve_blocks.py --workers 2 --dtype float32 \
        --flush-policy adaptive

    # multi-model HTTP serving on an ephemeral port
    python examples/serve_blocks.py --steps 50 --http 0
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.data.datasets import build_ithemal_like_dataset
from repro.models import create_model
from repro.models.config import TrainingConfig
from repro.nn.serialization import save_checkpoint
from repro.serve import (
    AsyncPredictionService,
    AsyncServiceConfig,
    HttpServerConfig,
    ModelRegistry,
    ModelVariant,
    PredictionHttpServer,
    PredictionRequest,
    PredictionService,
    Priority,
    ServiceConfig,
    Tenant,
    TenantDirectory,
    default_flush_policy,
)
from repro.training.trainer import Trainer


def demo_synchronous(service: PredictionService, test_blocks, tasks) -> None:
    """One synchronous submission of heterogeneous client requests."""
    bulk = max(len(test_blocks) - 4, 1)
    requests = [
        PredictionRequest.of(test_blocks[:bulk], request_id="sweep"),
        PredictionRequest.of(test_blocks[bulk : bulk + 1], request_id="interactive"),
        PredictionRequest.of(
            test_blocks[bulk + 1 :], request_id="tuner", tasks=tasks[:1]
        ),
    ]
    responses = service.submit(requests)
    for response in responses:
        preview = {
            task: [round(float(value), 2) for value in values[:3]]
            for task, values in response.predictions.items()
        }
        print(
            f"  {response.request_id}: {response.num_blocks} blocks, "
            f"first predictions {preview}"
        )
    stats = service.stats
    print(
        f"served {stats.blocks} blocks in {stats.batches} micro-batches "
        f"({stats.blocks_per_second:.0f} blocks/s)"
    )


def demo_asynchronous(
    service: PredictionService, test_blocks, max_latency_ms: float, flush_policy: str
) -> None:
    """Streams prioritised requests through the queued async front end."""
    config = AsyncServiceConfig(
        max_batch_size=32,
        max_latency_ms=max_latency_ms,
        flush_policy=flush_policy,
        max_queue_blocks=1024,
    )
    with AsyncPredictionService(config, service=service) as front_end:
        futures = {}
        # Bulk traffic first, then an interactive request that jumps it.
        for index in range(0, len(test_blocks) - 2, 4):
            request = PredictionRequest.of(
                test_blocks[index : index + 4], request_id=f"bulk-{index // 4}"
            )
            futures[request.request_id] = front_end.submit(
                request, priority=Priority.BULK
            )
        interactive = PredictionRequest.of(
            test_blocks[-2:], request_id="interactive"
        )
        futures[interactive.request_id] = front_end.submit(
            interactive, priority=Priority.INTERACTIVE
        )
        for request_id, future in futures.items():
            future.result(timeout=120.0)
        stats = front_end.stats
        print(
            f"  async: {stats.requests} requests -> {stats.flushes} flushes "
            f"(size={stats.size_flushes}, deadline={stats.deadline_flushes}), "
            f"mean {stats.mean_flush_blocks:.1f} blocks/flush"
        )
        snapshot = front_end.snapshot()
        print(
            f"  flush wait p50={snapshot['flush_wait_p50_ms']:.2f} ms "
            f"p99={snapshot['flush_wait_p99_ms']:.2f} ms "
            f"(policy {snapshot['flush_policy']}, "
            f"deadline ceiling {max_latency_ms} ms, "
            f"realized p50 {snapshot['flush_deadline_p50_ms']:.2f} ms)"
        )
        if snapshot["cancelled_drops"] or snapshot["expired_drops"]:
            print(
                f"  drops: {snapshot['cancelled_drops']} cancelled, "
                f"{snapshot['expired_drops']} expired"
            )


def demo_http(checkpoint: str, test_blocks, arguments) -> None:
    """Serves two registry variants over HTTP and drives both as a client."""
    import http.client
    import json

    api_key = "demo-key"
    registry = ModelRegistry(
        (
            ModelVariant(
                "granite-haswell",
                ServiceConfig(
                    model_name="granite",
                    tasks=("haswell",),
                    checkpoint_path=checkpoint,
                    max_batch_size=32,
                    inference_dtype=arguments.dtype,
                ),
                description="haswell head, demo checkpoint",
            ),
            ModelVariant(
                "granite-skylake-f32",
                ServiceConfig(
                    model_name="granite",
                    tasks=("skylake",),
                    checkpoint_path=checkpoint,
                    max_batch_size=32,
                    inference_dtype="float32",
                ),
                description="mixed-precision skylake head",
            ),
        )
    )
    auth = TenantDirectory((Tenant("demo", api_key=api_key),))
    server_config = HttpServerConfig(port=arguments.http)
    with PredictionHttpServer(
        registry, server_config, auth=auth, own_registry=True
    ) as server:
        print(f"  listening on {server.address} (API key: {api_key})")
        print(
            f"  curl -s {server.address}/v1/models -H 'X-API-Key: {api_key}'"
        )
        print(
            f"  curl -s -X POST {server.address}/v1/models/granite-haswell/"
            f"predict -H 'X-API-Key: {api_key}' "
            "-d '{\"blocks\": [\"add rax, rbx\"]}'"
        )
        blocks = [block.render() for block in test_blocks[:8]]
        for model in ("granite-haswell", "granite-skylake-f32"):
            connection = http.client.HTTPConnection(
                server.config.host, server.port, timeout=120
            )
            connection.request(
                "POST",
                f"/v1/models/{model}/predict",
                body=json.dumps({"blocks": blocks, "priority": "interactive"}),
                headers={"X-API-Key": api_key},
            )
            response = connection.getresponse()
            document = json.loads(response.read())
            connection.close()
            preview = {
                task: [round(float(value), 2) for value in values[:3]]
                for task, values in document["predictions"].items()
            }
            print(
                f"  {model}: HTTP {response.status}, "
                f"{document['num_blocks']} blocks, predictions {preview}"
            )
        connection = http.client.HTTPConnection(
            server.config.host, server.port, timeout=120
        )
        connection.request(
            "GET",
            "/v1/models/granite-haswell/stats",
            headers={"X-API-Key": api_key},
        )
        report = json.loads(connection.getresponse().read())
        connection.close()
        queue_stats = report["snapshot"]["queue"]
        print(
            f"  stats: {queue_stats['submitted_requests']} requests / "
            f"{queue_stats['submitted_blocks']} blocks from tenants "
            f"{report['info']['requests_by_tenant']}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=100, help="training steps")
    parser.add_argument("--blocks", type=int, default=300, help="dataset size")
    parser.add_argument(
        "--workers", type=int, default=0, help="worker processes (0 = in-process)"
    )
    parser.add_argument(
        "--max-latency-ms",
        type=float,
        default=10.0,
        help="flush deadline (ceiling, for the adaptive policy) of the "
        "async front end",
    )
    parser.add_argument(
        "--flush-policy",
        choices=("static", "adaptive"),
        default=None,
        help="flush-deadline policy of the async front end: 'static' always "
        "waits --max-latency-ms, 'adaptive' scales the deadline with load "
        "(default honours REPRO_FLUSH_POLICY, falling back to static)",
    )
    parser.add_argument(
        "--min-workers",
        type=int,
        default=None,
        help="lower elastic bound of the worker pool (requires --workers >= 1; "
        "enables the autoscale monitor when the bounds allow another size)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="upper elastic bound of the worker pool (see --min-workers)",
    )
    parser.add_argument(
        "--dtype",
        choices=("float64", "float32"),
        default="float64",
        help="inference compute dtype of every serving replica "
        "(float32 = mixed-precision serving, ~2x faster matmuls)",
    )
    parser.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="also run the multi-model HTTP demo: a two-variant ModelRegistry "
        "behind PredictionHttpServer on this port (0 = ephemeral)",
    )
    arguments = parser.parse_args()

    print(f"training granite for {arguments.steps} steps ...")
    dataset = build_ithemal_like_dataset(arguments.blocks, seed=0)
    splits = dataset.paper_splits(seed=0)
    model = create_model("granite", small=True, seed=0)
    trainer = Trainer(
        model, TrainingConfig(num_steps=arguments.steps, batch_size=32, seed=0)
    )
    trainer.train(splits.train, splits.validation)

    with tempfile.TemporaryDirectory() as directory:
        checkpoint = os.path.join(directory, "granite.npz")
        save_checkpoint(model, checkpoint)

        flush_policy = arguments.flush_policy or default_flush_policy()
        config = ServiceConfig(
            model_name="granite",
            checkpoint_path=checkpoint,
            max_batch_size=32,
            num_workers=arguments.workers,
            min_workers=arguments.min_workers,
            max_workers=arguments.max_workers,
            inference_dtype=arguments.dtype,
        )
        elastic = (
            f"elastic {config.min_workers}..{config.max_workers}, "
            if arguments.min_workers is not None or arguments.max_workers is not None
            else ""
        )
        print(
            f"warm-starting service (workers={config.num_workers}, {elastic}"
            f"sharding={config.sharding}, max_batch_size={config.max_batch_size}, "
            f"flush_policy={flush_policy}, "
            f"inference_dtype={config.inference_dtype}) ..."
        )
        with PredictionService(config) as service:
            test_blocks = splits.test.blocks()
            print("synchronous front end:")
            demo_synchronous(service, test_blocks, model.tasks)
            print("async front end:")
            demo_asynchronous(
                service, test_blocks, arguments.max_latency_ms, flush_policy
            )
        if arguments.http is not None:
            print("http front end:")
            demo_http(checkpoint, test_blocks, arguments)


if __name__ == "__main__":
    main()
