#!/usr/bin/env python3
"""Serve throughput predictions with the batched prediction service.

Demonstrates the serving stack added for the deployable-cost-model story:

1. train a small GRANITE model and save a checkpoint,
2. warm-start a :class:`repro.serve.PredictionService` from that checkpoint,
3. submit heterogeneous requests (different clients, different batch sizes)
   that the service coalesces into size-bounded micro-batches,
4. print per-request predictions and the service throughput counters.

Run it with::

    python examples/serve_blocks.py [--steps 100] [--workers 0]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.data.datasets import build_ithemal_like_dataset
from repro.models import create_model
from repro.models.config import TrainingConfig
from repro.nn.serialization import save_checkpoint
from repro.serve import PredictionRequest, PredictionService, ServiceConfig
from repro.training.trainer import Trainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=100, help="training steps")
    parser.add_argument("--blocks", type=int, default=300, help="dataset size")
    parser.add_argument(
        "--workers", type=int, default=0, help="worker processes (0 = in-process)"
    )
    arguments = parser.parse_args()

    print(f"training granite for {arguments.steps} steps ...")
    dataset = build_ithemal_like_dataset(arguments.blocks, seed=0)
    splits = dataset.paper_splits(seed=0)
    model = create_model("granite", small=True, seed=0)
    trainer = Trainer(
        model, TrainingConfig(num_steps=arguments.steps, batch_size=32, seed=0)
    )
    trainer.train(splits.train, splits.validation)

    with tempfile.TemporaryDirectory() as directory:
        checkpoint = os.path.join(directory, "granite.npz")
        save_checkpoint(model, checkpoint)

        config = ServiceConfig(
            model_name="granite",
            checkpoint_path=checkpoint,
            max_batch_size=32,
            num_workers=arguments.workers,
        )
        print(
            f"warm-starting service (workers={config.num_workers}, "
            f"max_batch_size={config.max_batch_size}) ..."
        )
        with PredictionService(config) as service:
            test_blocks = splits.test.blocks()
            bulk = max(len(test_blocks) - 4, 1)
            requests = [
                PredictionRequest.of(test_blocks[:bulk], request_id="sweep"),
                PredictionRequest.of(test_blocks[bulk : bulk + 1], request_id="interactive"),
                PredictionRequest.of(
                    test_blocks[bulk + 1 :], request_id="tuner", tasks=model.tasks[:1]
                ),
            ]
            responses = service.submit(requests)
            for response in responses:
                preview = {
                    task: [round(float(value), 2) for value in values[:3]]
                    for task, values in response.predictions.items()
                }
                print(
                    f"  {response.request_id}: {response.num_blocks} blocks, "
                    f"first predictions {preview}"
                )
            stats = service.stats
            print(
                f"served {stats.blocks} blocks in {stats.batches} micro-batches "
                f"({stats.blocks_per_second:.0f} blocks/s)"
            )


if __name__ == "__main__":
    main()
