"""GRANITE reproduction: GNN-based basic-block throughput estimation.

This package reproduces "GRANITE: A Graph Neural Network Model for Basic
Block Throughput Estimation" (IISWC 2022).  The most commonly used entry
points are re-exported here:

* :class:`repro.isa.BasicBlock` — parse and analyse x86-64 basic blocks.
* :class:`repro.models.GraniteModel` / :class:`repro.models.IthemalModel` —
  the paper's learned models.
* :func:`repro.data.build_ithemal_like_dataset` /
  :func:`repro.data.build_bhive_like_dataset` — synthetic datasets labelled
  by the analytical throughput oracle.
* :class:`repro.training.Trainer` — the training loop.
* :class:`repro.uarch.ThroughputOracle` — the analytical port-based model
  used as ground truth and baseline.
"""

from repro.data import (
    build_bhive_like_dataset,
    build_ithemal_like_dataset,
    TARGET_MICROARCHITECTURES,
    ThroughputDataset,
)
from repro.graph import build_block_graph
from repro.isa import BasicBlock, Instruction, parse_block_text
from repro.models import (
    GraniteConfig,
    GraniteModel,
    IthemalConfig,
    IthemalModel,
    TrainingConfig,
    create_model,
)
from repro.training import Trainer, compute_metrics, evaluate_model
from repro.uarch import MICROARCHITECTURES, ThroughputOracle

__version__ = "1.0.0"

__all__ = [
    "build_bhive_like_dataset",
    "build_ithemal_like_dataset",
    "TARGET_MICROARCHITECTURES",
    "ThroughputDataset",
    "build_block_graph",
    "BasicBlock",
    "Instruction",
    "parse_block_text",
    "GraniteConfig",
    "GraniteModel",
    "IthemalConfig",
    "IthemalModel",
    "TrainingConfig",
    "create_model",
    "Trainer",
    "compute_metrics",
    "evaluate_model",
    "MICROARCHITECTURES",
    "ThroughputOracle",
    "__version__",
]
