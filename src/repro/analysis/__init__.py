"""Repo-specific static analysis: AST invariant checkers with a CI gate.

Three layers of this codebase rest on conventions that no runtime test can
enforce exhaustively: the threaded serving stack relies on lock discipline
around shared counters and lifecycle state, the float32 inference fast path
relies on every numpy allocation being dtype-explicit, and the fused-autodiff
tape relies on every op with a hand-written backward having numeric gradient
coverage.  This package machine-checks those invariants on every push.

Run it as a CLI::

    python -m repro.analysis src/ --format=text      # humans
    python -m repro.analysis src/ --format=json      # tooling
    python -m repro.analysis src/ --format=github    # PR annotations in CI

The exit status is 0 when every finding is either fixed, suppressed inline
or recorded in the checked-in baseline, and 1 otherwise — which is what the
CI ``analysis`` job gates on.

Rules
-----

``RC001`` **lock-discipline** (``repro.serve`` modules)
    A static race detector.  Any ``self._x`` attribute that is ever written
    inside a ``with self._<lock>:`` block (or annotated with a
    ``# guarded-by: _<lock>`` comment in ``__init__``) is considered
    *guarded*: every read or write of it in methods reachable from a thread
    entry point (``threading.Thread(target=...)`` targets and the public
    API, which arbitrary client threads call) must hold that lock.  Methods
    whose names end in ``_locked`` are assumed to be called with the lock
    already held — the repo's existing naming convention — and are exempt.

``DT001`` **dtype-discipline** (inference/training fast-path modules)
    In ``repro.nn`` (tensor/fused/layers/lstm/optim/init), ``repro.gnn`` and
    the model forward paths, every ``np.zeros`` / ``np.empty`` / ``np.ones``
    / ``np.array`` / ``np.arange`` / ``np.full`` call must pass an explicit
    ``dtype=`` — numpy's float64/platform-int defaults are exactly how a
    float32 forward silently upcasts.  ``dtype=float`` (the python builtin,
    i.e. a spelled-out float64 default) and ``.astype(float)`` are flagged
    for the same reason.

``TP001`` **tape coverage** (``repro.nn.fused`` / ``repro.nn.tensor``)
    Every fused op and every ``Tensor`` op that registers a hand-written
    backward (a ``Tensor._make`` call) must be referenced from
    ``tests/test_nn_gradcheck.py``.  Operator dunders count as referenced
    when the test file uses the operator itself (``+``, ``*``, ``**``,
    ``@``, subscripts, ...).

``DET001`` **determinism** (all analyzed files)
    Flags module-level RNG calls (``np.random.*`` other than constructing a
    seeded ``Generator``, stdlib ``random.*`` other than ``random.Random(
    seed)``), unseeded generator construction (``np.random.default_rng()`` /
    ``random.Random()`` with no seed), and wall-clock ``time.time()`` in
    control logic (use ``time.monotonic`` / ``time.perf_counter``, or
    inject the clock).  Randomness must flow from a seeded ``Generator`` so
    training runs and benchmarks are reproducible.

``EX001`` **exception hygiene** (``repro.serve`` modules)
    Flags bare ``except:`` and ``except Exception:`` handlers that swallow
    silently — no re-raise, no call (logging/reporting), no counter
    increment or assignment.  A serving stack that drops errors on the
    floor is undebuggable.

Suppressions
------------

Append ``# repro: ignore[RULE]`` (or ``# repro: ignore[RULE1,RULE2]``, or a
bare ``# repro: ignore`` for all rules) to the flagged line, or put the
comment on its own line directly above the flagged line.  Suppressions are
deliberate, reviewable exemptions — e.g. a monitoring read that tolerates a
torn value by design.

Baseline
--------

``analysis-baseline.json`` (repo root) records grandfathered findings as
``(rule, path, line-content)`` entries, so the gate can be adopted without
fixing the world at once while still failing on anything new.  Regenerate it
with::

    python -m repro.analysis src/ --write-baseline

after deliberately accepting the current findings.  The baseline is matched
on line *content*, not line numbers, so unrelated edits don't invalidate it.
"""

from repro.analysis.engine import (
    Baseline,
    Checker,
    FileContext,
    Finding,
    all_checkers,
    analyze_files,
    analyze_paths,
    collect_python_files,
    register_checker,
)

__all__ = [
    "Baseline",
    "Checker",
    "FileContext",
    "Finding",
    "all_checkers",
    "analyze_files",
    "analyze_paths",
    "collect_python_files",
    "register_checker",
]
