"""CLI entry point: ``python -m repro.analysis [paths] --format=...``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Sequence

from repro.analysis.engine import Baseline, Finding, analyze_paths

DEFAULT_BASELINE = "analysis-baseline.json"


def _format_text(findings: Sequence[Finding]) -> List[str]:
    return [
        f"{finding.path}:{finding.line}: {finding.rule} {finding.message}"
        for finding in findings
    ]


def _format_json(findings: Sequence[Finding]) -> List[str]:
    payload = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
            "content": finding.content,
        }
        for finding in findings
    ]
    return [json.dumps(payload, indent=2)]


def _format_github(findings: Sequence[Finding]) -> List[str]:
    # GitHub Actions workflow-command annotations; rendered inline on PRs.
    return [
        f"::error file={finding.path},line={finding.line},"
        f"title={finding.rule}::{finding.message}"
        for finding in findings
    ]


_FORMATTERS = {"text": _format_text, "json": _format_json, "github": _format_github}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the repo's AST invariant checkers.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(_FORMATTERS),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record all current findings into the baseline file and exit 0",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    options = build_parser().parse_args(argv)
    findings = analyze_paths([Path(path) for path in options.paths])

    baseline_path = Path(options.baseline)
    if options.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    if options.no_baseline:
        new, baselined = list(findings), []
    else:
        new, baselined = Baseline.load(baseline_path).partition(findings)

    for line in _FORMATTERS[options.format](new):
        print(line)
    summary = f"{len(new)} finding(s)"
    if baselined:
        summary += f", {len(baselined)} baselined"
    print(summary, file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
