"""Built-in checkers. Importing this package registers every rule."""

from repro.analysis.checkers import (  # noqa: F401
    determinism,
    dtype_discipline,
    exception_hygiene,
    lock_discipline,
    retry_discipline,
    tape_coverage,
)

__all__ = [
    "determinism",
    "dtype_discipline",
    "exception_hygiene",
    "lock_discipline",
    "retry_discipline",
    "tape_coverage",
]
