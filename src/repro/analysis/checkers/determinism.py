"""DET001: randomness must be seeded, clocks must be steerable.

Reproducible training/benchmark runs require every random draw to flow from
an explicitly seeded ``Generator`` and every latency-policy decision to read
an injectable or monotonic clock.  This rule flags:

* global-state numpy RNG calls — ``np.random.<fn>(...)`` for any sampling
  function (``default_rng(seed)`` / ``Generator`` / ``SeedSequence`` with a
  seed argument are the sanctioned entry points; with no argument they are
  flagged as unseeded),
* stdlib ``random.<fn>(...)`` module-level calls (``random.Random(seed)``
  is sanctioned; ``random.Random()`` with no seed is flagged),
* ``time.time()`` — wall clock in control logic; use ``time.monotonic`` /
  ``time.perf_counter`` or inject the clock so policies are testable.

Files whose path matches ``_ALLOWLIST`` are exempt (none currently).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import FileContext, Finding, register_checker

# Path suffixes exempt from DET001 (e.g. a demo deliberately using wall
# clock). Keep empty unless a file has a documented reason.
_ALLOWLIST: tuple = ()

_SANCTIONED_SEEDED = {"default_rng", "Generator", "SeedSequence", "Random", "SystemRandom"}


def _attr_chain(node: ast.AST) -> str:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@register_checker
class DeterminismChecker:
    rule = "DET001"
    title = "seeded randomness and injectable clocks"

    def applies_to(self, path: str) -> bool:
        return not path.endswith(_ALLOWLIST)

    def check(self, context: FileContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain in ("time.time",):
                yield context.finding(
                    "DET001",
                    node.lineno,
                    "time.time() wall clock in control logic; use "
                    "time.monotonic()/perf_counter() or inject the clock",
                )
            elif chain.startswith(("np.random.", "numpy.random.")):
                function = chain.rsplit(".", 1)[1]
                if function in _SANCTIONED_SEEDED:
                    if not node.args and not node.keywords:
                        yield context.finding(
                            "DET001",
                            node.lineno,
                            f"{chain}() without a seed is nondeterministic; "
                            "pass an explicit seed",
                        )
                else:
                    yield context.finding(
                        "DET001",
                        node.lineno,
                        f"{chain}(...) uses numpy's hidden global RNG; draw "
                        "from a seeded np.random.default_rng(seed) Generator",
                    )
            elif chain.startswith("random.") and chain.count(".") == 1:
                function = chain.split(".", 1)[1]
                if function in _SANCTIONED_SEEDED:
                    if function == "Random" and not node.args and not node.keywords:
                        yield context.finding(
                            "DET001",
                            node.lineno,
                            "random.Random() without a seed is nondeterministic; "
                            "pass an explicit seed",
                        )
                else:
                    yield context.finding(
                        "DET001",
                        node.lineno,
                        f"{chain}(...) uses the hidden global RNG; draw from a "
                        "seeded random.Random(seed) instance",
                    )
