"""DT001: explicit dtypes in the numeric fast path.

Numpy's defaults (float64 for float constructors, platform int for
``arange``) are exactly how the float32 inference path silently upcasts and
how index buffers change width across platforms.  In the modules on the
forward/backward hot path every bare array constructor must say what it
means.  ``*_like`` constructors inherit their prototype's dtype and are
fine; ``dtype=float`` spells out the float64 default and is flagged, as is
``.astype(float)``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import FileContext, Finding, register_checker

_FAST_PATH_SUFFIXES = (
    "repro/nn/fused.py",
    "repro/nn/tensor.py",
    "repro/nn/lstm.py",
    "repro/nn/layers.py",
    "repro/nn/optim.py",
    "repro/nn/init.py",
    "repro/gnn/blocks.py",
    "repro/models/base.py",
    "repro/models/ithemal.py",
    "repro/models/granite.py",
)
_CONSTRUCTORS = {"zeros", "empty", "ones", "array", "arange", "full"}
_NUMPY_MODULES = {"np", "numpy"}


def _numpy_constructor_name(call: ast.Call) -> str:
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in _NUMPY_MODULES
        and func.attr in _CONSTRUCTORS
    ):
        return func.attr
    return ""


def _is_builtin_float(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id == "float"


@register_checker
class DtypeDisciplineChecker:
    rule = "DT001"
    title = "explicit dtypes in fast-path modules"

    def applies_to(self, path: str) -> bool:
        return path.endswith(_FAST_PATH_SUFFIXES)

    def check(self, context: FileContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            constructor = _numpy_constructor_name(node)
            if constructor:
                dtype_keywords = [kw for kw in node.keywords if kw.arg == "dtype"]
                if not dtype_keywords:
                    yield context.finding(
                        "DT001",
                        node.lineno,
                        f"np.{constructor}(...) without an explicit dtype= "
                        "(numpy defaults silently upcast the float32 fast path)",
                    )
                elif any(_is_builtin_float(kw.value) for kw in dtype_keywords):
                    yield context.finding(
                        "DT001",
                        node.lineno,
                        f"np.{constructor}(..., dtype=float) forces float64; "
                        "name the width (np.float64 / active_dtype())",
                    )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
                and _is_builtin_float(node.args[0])
            ):
                yield context.finding(
                    "DT001",
                    node.lineno,
                    ".astype(float) forces float64; name the width "
                    "(np.float64 / active_dtype())",
                )
