"""EX001: broad exception handlers in ``repro.serve`` must leave evidence.

A serving stack that catches ``Exception`` (or everything) and does nothing
turns crashes into silent data loss.  A broad handler is acceptable only if
its body leaves a trace: re-raises, calls something (logging, reporting,
sending the error somewhere), or records state (a counter increment or an
assignment a monitor can observe).  Handlers that merely ``pass``,
``continue``, ``break`` or ``return`` a constant are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import FileContext, Finding, register_checker


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names = []
    if isinstance(handler.type, ast.Name):
        names = [handler.type.id]
    elif isinstance(handler.type, ast.Tuple):
        names = [elt.id for elt in handler.type.elts if isinstance(elt, ast.Name)]
    return any(name in ("Exception", "BaseException") for name in names)


def _leaves_evidence(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Call, ast.AugAssign, ast.Assign, ast.AnnAssign)):
            return True
    return False


@register_checker
class ExceptionHygieneChecker:
    rule = "EX001"
    title = "no silent broad exception handlers in repro.serve"

    def applies_to(self, path: str) -> bool:
        return "repro/serve/" in path

    def check(self, context: FileContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and not _leaves_evidence(node):
                label = "bare except:" if node.type is None else "except Exception:"
                yield context.finding(
                    "EX001",
                    node.lineno,
                    f"{label} swallows errors silently; re-raise, log, or "
                    "record a counter so failures are observable",
                )
