"""RC001: static lock-discipline (race) checker for ``repro.serve``.

The model is intentionally syntactic, mirroring how the serving stack is
written rather than attempting whole-program alias analysis:

* A *lock attribute* is any ``self._x`` assigned ``threading.Lock()`` /
  ``RLock()`` / ``Condition()`` in a method body.  ``threading.Condition(
  self._y)`` makes ``_x`` an alias of ``_y`` — acquiring either protects
  state guarded by the underlying lock.
* An attribute unit is the first-level ``self.<attr>`` of a dotted chain, so
  ``self.stats.requests += 1`` touches unit ``stats``.
* A unit becomes *guarded* by a lock when any method writes it inside a
  syntactic ``with self.<lock>:`` block, or when its ``__init__`` assignment
  carries a ``# guarded-by: _<lock>`` comment.
* Entry points are thread targets (``threading.Thread(target=self.m)``),
  public methods (callers on arbitrary threads), and context-manager /
  container dunders.  Methods reachable from an entry point through
  ``self.m()`` calls are checked; any access to a guarded unit outside
  every one of its guarding locks is flagged.
* Methods named ``*_locked`` follow the repo convention "caller holds the
  lock" and are exempt (and cannot establish guards); ``__init__`` /
  ``__post_init__`` / ``__del__`` / ``__repr__`` run before publication or
  are best-effort debugging and are exempt too.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import FileContext, Finding, register_checker

_GUARDED_BY_RE = re.compile(r"self\.(\w+)\s*(?::[^=#]+)?=.*#\s*guarded-by:\s*(\w+)")
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
_EXEMPT_METHODS = {"__init__", "__post_init__", "__del__", "__repr__"}
_ENTRY_DUNDERS = {
    "__enter__",
    "__exit__",
    "__call__",
    "__iter__",
    "__next__",
    "__len__",
    "__contains__",
}


def _root_self_attr(node: ast.AST) -> Optional[str]:
    """First-level attribute of a self-rooted chain, else None.

    ``self.stats.requests`` -> ``stats``; ``self._workers[i].pipe`` ->
    ``_workers``; ``other.stats`` -> None.
    """
    last_attr: Optional[str] = None
    while True:
        if isinstance(node, ast.Attribute):
            last_attr = node.attr
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            return last_attr if node.id == "self" else None
        else:
            return None


def _is_lock_factory(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


def _condition_wrapped_lock(call: ast.Call) -> Optional[str]:
    """For ``threading.Condition(self._lock)`` returns ``_lock``."""
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
    if name != "Condition" or not call.args:
        return None
    return _root_self_attr(call.args[0])


@dataclass
class _Access:
    attr: str
    line: int
    is_write: bool
    held: FrozenSet[str]


@dataclass
class _MethodFacts:
    name: str
    accesses: List[_Access] = field(default_factory=list)
    calls: Set[str] = field(default_factory=set)


class _ClassModel:
    """Everything RC001 needs to know about one class."""

    def __init__(self, class_node: ast.ClassDef, context: FileContext):
        self.node = class_node
        self.context = context
        self.methods: Dict[str, ast.FunctionDef] = {}
        self.locks: Set[str] = set()
        self.aliases: Dict[str, Set[str]] = {}
        self.thread_roots: Set[str] = set()
        self.facts: Dict[str, _MethodFacts] = {}
        self.guards: Dict[str, Set[str]] = {}

        for statement in class_node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[statement.name] = statement

        self._find_locks()
        self._find_thread_roots()
        for name, method in self.methods.items():
            self.facts[name] = self._walk_method(name, method)
        self._infer_guards()
        self._apply_guard_comments()

    # -- model construction ----------------------------------------------

    def _find_locks(self) -> None:
        pending_aliases: List[Tuple[str, str]] = []
        for method in self.methods.values():
            for node in ast.walk(method):
                if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                    continue
                if not _is_lock_factory(node.value):
                    continue
                for target in node.targets:
                    attr = _root_self_attr(target)
                    if attr is None or not isinstance(target, ast.Attribute):
                        continue
                    self.locks.add(attr)
                    wrapped = _condition_wrapped_lock(node.value)
                    if wrapped is not None:
                        pending_aliases.append((attr, wrapped))
        for condition_attr, lock_attr in pending_aliases:
            if lock_attr in self.locks:
                # Acquiring the condition acquires its underlying lock and
                # vice versa — they protect the same state.
                self.aliases.setdefault(condition_attr, set()).add(lock_attr)
                self.aliases.setdefault(lock_attr, set()).add(condition_attr)

    def _held_closure(self, lock_attrs: Iterable[str]) -> FrozenSet[str]:
        held = set(lock_attrs)
        for attr in list(held):
            held.update(self.aliases.get(attr, ()))
        return frozenset(held)

    def _find_thread_roots(self) -> None:
        for node in ast.walk(self.node):
            if not isinstance(node, ast.Call):
                continue
            func_name = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else getattr(node.func, "id", "")
            )
            if func_name != "Thread":
                continue
            for keyword in node.keywords:
                if keyword.arg == "target":
                    target_attr = _root_self_attr(keyword.value)
                    if target_attr is not None:
                        self.thread_roots.add(target_attr)

    def _walk_method(self, name: str, method: ast.AST) -> _MethodFacts:
        facts = _MethodFacts(name=name)
        skip_attrs = self.locks | set(self.aliases)

        def record(attr: Optional[str], line: int, is_write: bool, held: FrozenSet[str]):
            if attr is None or attr in skip_attrs or attr in self.methods:
                return
            facts.accesses.append(_Access(attr, line, is_write, held))

        def visit(node: ast.AST, held: FrozenSet[str]) -> None:
            if isinstance(node, ast.With):
                acquired: Set[str] = set()
                for item in node.items:
                    lock_attr = _root_self_attr(item.context_expr)
                    if lock_attr in self.locks or lock_attr in self.aliases:
                        acquired.add(lock_attr)
                inner = self._held_closure(set(held) | acquired) if acquired else held
                for item in node.items:
                    visit(item.context_expr, held)
                for child in node.body:
                    visit(child, inner)
                return
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    # An AugAssign target's paired read is covered by the
                    # (stricter) write record.
                    record(_root_self_attr(target), target.lineno, True, held)
                if node.value is not None:
                    visit(node.value, held)
                for target in targets:
                    # Subscript indices etc. inside the target are reads.
                    for child in ast.iter_child_nodes(target):
                        visit(child, held)
                return
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                if node.value.id == "self":
                    record(node.attr, node.lineno, False, held)
                return
            if isinstance(node, ast.Call):
                callee = node.func
                if (
                    isinstance(callee, ast.Attribute)
                    and isinstance(callee.value, ast.Name)
                    and callee.value.id == "self"
                    and callee.attr in self.methods
                ):
                    facts.calls.add(callee.attr)
                else:
                    visit(callee, held)
                for argument in node.args:
                    visit(argument, held)
                for keyword in node.keywords:
                    visit(keyword.value, held)
                return
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for statement in getattr(method, "body", []):
            visit(statement, frozenset())
        return facts

    def _infer_guards(self) -> None:
        for name, facts in self.facts.items():
            if name in _EXEMPT_METHODS or name.endswith("_locked"):
                continue
            for access in facts.accesses:
                if access.is_write and access.held:
                    self.guards.setdefault(access.attr, set()).update(access.held)

    def _apply_guard_comments(self) -> None:
        init = self.methods.get("__init__")
        if init is None:
            return
        start = init.lineno
        end = getattr(init, "end_lineno", start) or start
        for line in self.context.lines[start - 1 : end]:
            match = _GUARDED_BY_RE.search(line)
            if match:
                attr, lock = match.group(1), match.group(2)
                self.guards.setdefault(attr, set()).add(lock)

    # -- reachability and reporting --------------------------------------

    def checked_methods(self) -> Set[str]:
        roots = set(self.thread_roots)
        for name in self.methods:
            if not name.startswith("_") or name in _ENTRY_DUNDERS:
                roots.add(name)
        reachable: Set[str] = set()
        frontier = [name for name in roots if name in self.methods]
        while frontier:
            current = frontier.pop()
            if current in reachable:
                continue
            reachable.add(current)
            frontier.extend(
                callee for callee in self.facts[current].calls if callee in self.methods
            )
        return {
            name
            for name in reachable
            if name not in _EXEMPT_METHODS and not name.endswith("_locked")
        }

    def findings(self) -> Iterable[Finding]:
        if not self.guards:
            return
        seen: Set[Tuple[str, int]] = set()
        for name in sorted(self.checked_methods()):
            for access in self.facts[name].accesses:
                required = self.guards.get(access.attr)
                if not required or access.held & required:
                    continue
                if (access.attr, access.line) in seen:
                    continue
                seen.add((access.attr, access.line))
                locks = " or ".join(f"self.{lock}" for lock in sorted(required))
                action = "written" if access.is_write else "read"
                yield self.context.finding(
                    "RC001",
                    access.line,
                    f"self.{access.attr} is guarded by {locks} but {action} in "
                    f"{self.node.name}.{name} without holding it",
                )


@register_checker
class LockDisciplineChecker:
    rule = "RC001"
    title = "lock discipline in repro.serve"

    def applies_to(self, path: str) -> bool:
        return "repro/serve/" in path

    def check(self, context: FileContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                yield from _ClassModel(node, context).findings()
