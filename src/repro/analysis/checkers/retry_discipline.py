"""RT001: ad-hoc retry loops in ``repro.serve`` must use ``RetryPolicy``.

A ``time.sleep`` inside a ``try`` inside a loop is the classic hand-rolled
retry: unbounded, unjittered, invisible to stats, and a fleet-wide
thundering herd when a backend blips.  All retry/backoff in the serving
stack goes through :class:`repro.serve.resilience.RetryPolicy` and
:func:`repro.serve.resilience.run_with_retries` — seeded jitter, capped
delays, a sliding-window budget, and counters in the service snapshot.
``resilience.py`` itself hosts the one sanctioned loop and is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import FileContext, Finding, register_checker


def _is_sleep_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return (
            func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        )
    return isinstance(func, ast.Name) and func.id == "sleep"


@register_checker
class RetryDisciplineChecker:
    rule = "RT001"
    title = "retries in repro.serve must go through RetryPolicy"

    def applies_to(self, path: str) -> bool:
        return "repro/serve/" in path and not path.endswith("resilience.py")

    def check(self, context: FileContext) -> Iterable[Finding]:
        flagged = set()
        for loop in ast.walk(context.tree):
            if not isinstance(loop, (ast.While, ast.For, ast.AsyncFor)):
                continue
            for guarded in ast.walk(loop):
                if not isinstance(guarded, ast.Try):
                    continue
                for node in ast.walk(guarded):
                    if not _is_sleep_call(node):
                        continue
                    key = (node.lineno, node.col_offset)
                    if key in flagged:
                        continue
                    flagged.add(key)
                    yield context.finding(
                        "RT001",
                        node.lineno,
                        "ad-hoc retry loop (sleep inside try inside a loop); "
                        "use repro.serve.resilience.run_with_retries with a "
                        "RetryPolicy for seeded, budget-bounded backoff",
                    )
