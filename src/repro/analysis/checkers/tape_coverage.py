"""TP001: every tape op must have gradcheck coverage.

An op "adds a backward" when its body calls ``Tensor._make`` (the only way
onto the tape) — in ``repro/nn/tensor.py`` that is the enclosing def; in
``repro/nn/fused.py`` every public module-level function is a fused op.
Each such op must be *referenced* from ``tests/test_nn_gradcheck.py``:
either its name appears (as a call, attribute, or bare name), or — for
operator dunders — the test file uses the operator itself (``a + b`` covers
``__add__``, ``t[key]`` covers ``__getitem__``, and so on).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Optional, Set

from repro.analysis.engine import FileContext, Finding, register_checker

_TEST_RELPATH = Path("tests") / "test_nn_gradcheck.py"

_OPERATOR_DUNDERS = {
    ast.Add: ("__add__", "__radd__"),
    ast.Sub: ("__sub__", "__rsub__"),
    ast.Mult: ("__mul__", "__rmul__"),
    ast.Div: ("__truediv__",),
    ast.Pow: ("__pow__",),
    ast.MatMult: ("__matmul__",),
    ast.USub: ("__neg__",),
}


def _referenced_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, (ast.BinOp, ast.AugAssign)):
            names.update(_OPERATOR_DUNDERS.get(type(node.op), ()))
        elif isinstance(node, ast.UnaryOp):
            names.update(_OPERATOR_DUNDERS.get(type(node.op), ()))
        elif isinstance(node, ast.Subscript):
            names.add("__getitem__")
    return names


def _calls_tensor_make(function: ast.AST) -> bool:
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "_make"
        ):
            return True
    return False


def _find_test_file(source_path: Path) -> Optional[Path]:
    for parent in [source_path.parent, *source_path.parents]:
        candidate = parent / _TEST_RELPATH
        if candidate.exists():
            return candidate
    return None


@register_checker
class TapeCoverageChecker:
    rule = "TP001"
    title = "gradcheck coverage for tape ops"

    def applies_to(self, path: str) -> bool:
        return path.endswith(("repro/nn/fused.py", "repro/nn/tensor.py"))

    def check(self, context: FileContext) -> Iterable[Finding]:
        test_file = _find_test_file(context.path.resolve())
        if test_file is None:
            yield context.finding(
                "TP001",
                1,
                f"cannot locate {_TEST_RELPATH.as_posix()} above "
                f"{context.path.name}; tape ops are unverifiable",
            )
            return
        referenced = _referenced_names(
            ast.parse(test_file.read_text(encoding="utf-8"), filename=str(test_file))
        )
        is_fused_module = context.path.as_posix().endswith("repro/nn/fused.py")
        for owner, function in self._ops(context.tree, is_fused_module):
            if function.name in referenced:
                continue
            where = f"{owner}.{function.name}" if owner else function.name
            yield context.finding(
                "TP001",
                function.lineno,
                f"tape op {where} has a hand-written backward but is never "
                f"referenced from {_TEST_RELPATH.as_posix()}",
            )

    @staticmethod
    def _ops(tree: ast.Module, is_fused_module: bool):
        if is_fused_module:
            for node in tree.body:
                if isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
                    yield "", node
            return
        for node in tree.body:
            if isinstance(node, ast.FunctionDef) and _calls_tensor_make(node):
                yield "", node
            elif isinstance(node, ast.ClassDef):
                for method in node.body:
                    if isinstance(method, ast.FunctionDef) and _calls_tensor_make(method):
                        yield node.name, method
