"""Core of the ``repro.analysis`` lint engine.

The engine is deliberately small: checkers are plain objects registered in a
module-level registry, each file is parsed once into an ``ast`` tree wrapped
in a :class:`FileContext`, and checkers emit :class:`Finding` objects.  The
engine owns the cross-cutting concerns — inline ``# repro: ignore[RULE]``
suppressions and the content-keyed baseline — so checkers stay pure
"AST in, findings out" functions.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([A-Za-z0-9_,\s]*)\])?")
_ALL_RULES = "*"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source line."""

    path: str
    line: int
    rule: str
    message: str
    content: str = field(default="", compare=False)

    def key(self) -> Tuple[str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.rule, self.path, self.content)


class Checker(Protocol):
    """Protocol every registered checker satisfies."""

    rule: str
    title: str

    def applies_to(self, path: str) -> bool: ...

    def check(self, context: "FileContext") -> Iterable[Finding]: ...


class FileContext:
    """A parsed source file plus the metadata checkers need."""

    def __init__(self, path: Path, source: str, display_path: Optional[str] = None):
        self.path = Path(path)
        self.source = source
        self.display_path = display_path or self.path.as_posix()
        self.lines = source.splitlines()
        self._tree: Optional[ast.Module] = None
        self._suppressions: Optional[Dict[int, set]] = None

    @classmethod
    def from_path(cls, path: Path, display_path: Optional[str] = None) -> "FileContext":
        return cls(path, Path(path).read_text(encoding="utf-8"), display_path)

    @property
    def tree(self) -> ast.Module:
        if self._tree is None:
            self._tree = ast.parse(self.source, filename=str(self.path))
        return self._tree

    def line_content(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, line: int, message: str) -> Finding:
        return Finding(
            path=self.display_path,
            line=line,
            rule=rule,
            message=message,
            content=self.line_content(line),
        )

    # -- suppressions -----------------------------------------------------

    @property
    def suppressions(self) -> Dict[int, set]:
        """Maps line number -> set of suppressed rule ids ('*' = all)."""
        if self._suppressions is None:
            self._suppressions = self._parse_suppressions()
        return self._suppressions

    def _parse_suppressions(self) -> Dict[int, set]:
        suppressed: Dict[int, set] = {}
        for index, raw in enumerate(self.lines, start=1):
            if "#" not in raw:
                continue
            match = _SUPPRESS_RE.search(raw)
            if not match:
                continue
            rules = (
                {_ALL_RULES}
                if match.group(1) is None
                else {part.strip() for part in match.group(1).split(",") if part.strip()}
            )
            # A comment-only line suppresses the next non-blank source line;
            # a trailing comment suppresses its own line.
            target = index
            if raw.lstrip().startswith("#"):
                target = index + 1
                while target <= len(self.lines) and not self.lines[target - 1].strip():
                    target += 1
            suppressed.setdefault(target, set()).update(rules)
        return suppressed

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        return bool(rules) and (_ALL_RULES in rules or finding.rule in rules)


# -- registry -------------------------------------------------------------

_REGISTRY: Dict[str, Checker] = {}


def register_checker(checker_class: Callable[[], Checker]):
    """Class decorator: instantiate and register a checker by its rule id."""
    instance = checker_class()
    if instance.rule in _REGISTRY:
        raise ValueError(f"duplicate checker rule {instance.rule}")
    _REGISTRY[instance.rule] = instance
    return checker_class


def all_checkers() -> List[Checker]:
    # Importing the package wires every built-in checker into the registry.
    from repro.analysis import checkers  # noqa: F401

    return [_REGISTRY[rule] for rule in sorted(_REGISTRY)]


# -- baseline -------------------------------------------------------------

class Baseline:
    """Grandfathered findings, keyed on (rule, path, line content).

    Content keys survive unrelated edits that shift line numbers; a Counter
    keeps multiplicity so two identical violations need two entries.
    """

    VERSION = 1

    def __init__(self, entries: Optional[Iterable[Tuple[str, str, str]]] = None):
        self._entries: Counter = Counter(entries or [])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not Path(path).exists():
            return cls()
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        entries = [
            (item["rule"], item["path"], item["content"])
            for item in payload.get("findings", [])
        ]
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(finding.key() for finding in findings)

    def save(self, path: Path) -> None:
        findings = [
            {"rule": rule, "path": file_path, "content": content}
            for (rule, file_path, content), count in sorted(self._entries.items())
            for _ in range(count)
        ]
        payload = {"version": self.VERSION, "findings": findings}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def partition(self, findings: Sequence[Finding]) -> Tuple[List[Finding], List[Finding]]:
        """Splits findings into (new, baselined), consuming multiplicity."""
        remaining = Counter(self._entries)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            if remaining[finding.key()] > 0:
                remaining[finding.key()] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined

    def __len__(self) -> int:
        return sum(self._entries.values())


# -- drivers --------------------------------------------------------------

def collect_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expands files/directories into a sorted, de-duplicated .py file list."""
    files: List[Path] = []
    seen = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if any(part.startswith(".") and part not in (".", "..") for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def analyze_files(
    contexts: Iterable[FileContext],
    checkers: Optional[Sequence[Checker]] = None,
) -> List[Finding]:
    """Runs every applicable checker over every context; suppressions applied."""
    active = list(checkers) if checkers is not None else all_checkers()
    findings: List[Finding] = []
    for context in contexts:
        applicable = [c for c in active if c.applies_to(context.path.as_posix())]
        if not applicable:
            continue
        try:
            context.tree
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=context.display_path,
                    line=error.lineno or 1,
                    rule="PARSE",
                    message=f"could not parse file: {error.msg}",
                    content=context.line_content(error.lineno or 1),
                )
            )
            continue
        for checker in applicable:
            for finding in checker.check(context):
                if not context.is_suppressed(finding):
                    findings.append(finding)
    return sorted(findings)


def analyze_paths(
    paths: Sequence[Path],
    checkers: Optional[Sequence[Checker]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Analyzes files/directories; display paths are relative to ``root``."""
    root = Path(root) if root is not None else Path.cwd()
    contexts = []
    for file_path in collect_python_files(paths):
        try:
            display = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            display = file_path.as_posix()
        contexts.append(FileContext.from_path(file_path, display_path=display))
    return analyze_files(contexts, checkers)


def relocate(finding: Finding, display_path: str) -> Finding:
    """Returns a copy of ``finding`` reported against a different path."""
    return replace(finding, path=display_path)
