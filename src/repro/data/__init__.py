"""Datasets: synthetic block generation, measurement models, CSV I/O."""

from repro.data.bhive_format import (
    dataset_from_csv_text,
    dataset_to_csv_text,
    read_dataset_csv,
    write_dataset_csv,
)
from repro.data.datasets import (
    DatasetSplits,
    LabeledBlock,
    TARGET_MICROARCHITECTURES,
    ThroughputDataset,
    build_bhive_like_dataset,
    build_ithemal_like_dataset,
)
from repro.data.measurement import (
    BHIVE_MEASUREMENT,
    ITERATIONS_PER_MEASUREMENT,
    ITHEMAL_MEASUREMENT,
    MeasurementModel,
)
from repro.data.synthetic import BlockGenerator, GeneratorConfig, WorkloadProfile

__all__ = [
    "dataset_from_csv_text",
    "dataset_to_csv_text",
    "read_dataset_csv",
    "write_dataset_csv",
    "DatasetSplits",
    "LabeledBlock",
    "TARGET_MICROARCHITECTURES",
    "ThroughputDataset",
    "build_bhive_like_dataset",
    "build_ithemal_like_dataset",
    "BHIVE_MEASUREMENT",
    "ITERATIONS_PER_MEASUREMENT",
    "ITHEMAL_MEASUREMENT",
    "MeasurementModel",
    "BlockGenerator",
    "GeneratorConfig",
    "WorkloadProfile",
]
