"""Reading and writing datasets in a BHive-style CSV format.

The real BHive suite distributes one CSV per microarchitecture with rows of
``<hex machine code>,<measured throughput>``.  Decoding raw machine code is
out of scope here, so this module defines a close, text-based cousin that
carries the assembly instead of machine code::

    identifier,assembly,ivy_bridge,haswell,skylake
    bhive-0,"MOV RAX, 12345; ADD DWORD PTR [RAX + 16], EBX",412.0,399.0,371.0

Instructions are joined with ``"; "`` on one line.  The format is loss-less
with respect to everything the models consume (mnemonics, operands,
prefixes) and allows users with access to the real datasets to convert and
load them.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Dict, List, Optional

from repro.data.datasets import LabeledBlock, ThroughputDataset
from repro.isa.basic_block import BasicBlock

__all__ = ["write_dataset_csv", "read_dataset_csv", "dataset_to_csv_text", "dataset_from_csv_text"]

_INSTRUCTION_SEPARATOR = "; "


def _block_to_field(block: BasicBlock) -> str:
    return _INSTRUCTION_SEPARATOR.join(
        instruction.render() for instruction in block.instructions
    )


def _block_from_field(field: str, identifier: str) -> BasicBlock:
    text = field.replace(_INSTRUCTION_SEPARATOR, "\n").replace(";", "\n")
    return BasicBlock.from_text(text, identifier=identifier)


def dataset_to_csv_text(dataset: ThroughputDataset) -> str:
    """Serialises a dataset to CSV text."""
    buffer = io.StringIO()
    microarchitectures = list(dataset.microarchitectures)
    writer = csv.writer(buffer)
    writer.writerow(["identifier", "assembly"] + microarchitectures)
    for index, sample in enumerate(dataset.samples):
        identifier = sample.block.identifier or f"{dataset.name}-{index}"
        row: List[str] = [identifier, _block_to_field(sample.block)]
        for key in microarchitectures:
            value = sample.throughputs.get(key)
            row.append("" if value is None else f"{value:.4f}")
        writer.writerow(row)
    return buffer.getvalue()


def dataset_from_csv_text(text: str, name: str = "dataset") -> ThroughputDataset:
    """Parses CSV text produced by :func:`dataset_to_csv_text`."""
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        raise ValueError("empty CSV input")
    header = rows[0]
    if len(header) < 3 or header[0] != "identifier" or header[1] != "assembly":
        raise ValueError(
            "CSV header must be 'identifier,assembly,<microarchitecture>...'"
        )
    microarchitectures = header[2:]
    samples: List[LabeledBlock] = []
    for row in rows[1:]:
        if not row:
            continue
        identifier, assembly = row[0], row[1]
        block = _block_from_field(assembly, identifier)
        throughputs: Dict[str, float] = {}
        for key, value in zip(microarchitectures, row[2:]):
            if value.strip():
                throughputs[key] = float(value)
        samples.append(LabeledBlock(block=block, throughputs=throughputs))
    return ThroughputDataset(samples, name=name, microarchitectures=tuple(microarchitectures))


def write_dataset_csv(dataset: ThroughputDataset, path: str) -> None:
    """Writes a dataset to a CSV file."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="") as handle:
        handle.write(dataset_to_csv_text(dataset))


def read_dataset_csv(path: str, name: Optional[str] = None) -> ThroughputDataset:
    """Reads a dataset from a CSV file written by :func:`write_dataset_csv`."""
    if not os.path.exists(path):
        raise FileNotFoundError(f"dataset file not found: {path}")
    with open(path, "r", newline="") as handle:
        text = handle.read()
    return dataset_from_csv_text(text, name=name or os.path.basename(path))
