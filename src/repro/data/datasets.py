"""Labelled datasets of basic blocks.

A :class:`ThroughputDataset` holds basic blocks together with their measured
throughput on each target microarchitecture (Ivy Bridge, Haswell, Skylake in
the paper).  Two builder functions produce the synthetic substitutes of the
paper's datasets:

* :func:`build_ithemal_like_dataset` — the larger dataset, labelled with the
  Ithemal measurement methodology.
* :func:`build_bhive_like_dataset` — roughly five times smaller (the paper
  notes the 5× ratio), labelled with the BHive measurement methodology.

The splitting helpers reproduce the paper's protocol: 83 % / 17 % train/test
split, and a further 98 % / 2 % train/validation split of the training part
(Section 4, "Dataset").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.measurement import (
    BHIVE_MEASUREMENT,
    ITHEMAL_MEASUREMENT,
    MeasurementModel,
)
from repro.data.synthetic import BlockGenerator, GeneratorConfig
from repro.isa.basic_block import BasicBlock
from repro.uarch.ports import MICROARCHITECTURES
from repro.uarch.scheduler import ThroughputOracle

__all__ = [
    "LabeledBlock",
    "ThroughputDataset",
    "DatasetSplits",
    "TARGET_MICROARCHITECTURES",
    "build_ithemal_like_dataset",
    "build_bhive_like_dataset",
]

#: The microarchitecture keys used in every experiment of the paper.
TARGET_MICROARCHITECTURES: Tuple[str, ...] = ("ivy_bridge", "haswell", "skylake")


@dataclass(frozen=True)
class LabeledBlock:
    """One basic block with its measured throughput per microarchitecture.

    Attributes:
        block: The basic block.
        throughputs: Mapping from microarchitecture key to the measured
            throughput value (cycles per 100 iterations).
    """

    block: BasicBlock
    throughputs: Dict[str, float]

    def throughput(self, microarchitecture: str) -> float:
        """Returns the measured value for one microarchitecture."""
        key = microarchitecture.lower().replace(" ", "_")
        if key not in self.throughputs:
            raise KeyError(
                f"block {self.block.identifier!r} has no label for {microarchitecture!r}"
            )
        return self.throughputs[key]


@dataclass
class DatasetSplits:
    """The train / validation / test partition of a dataset."""

    train: "ThroughputDataset"
    validation: "ThroughputDataset"
    test: "ThroughputDataset"


class ThroughputDataset:
    """An ordered collection of labelled basic blocks."""

    def __init__(
        self,
        samples: Sequence[LabeledBlock],
        name: str = "dataset",
        microarchitectures: Sequence[str] = TARGET_MICROARCHITECTURES,
    ) -> None:
        self.samples: List[LabeledBlock] = list(samples)
        self.name = name
        self.microarchitectures: Tuple[str, ...] = tuple(microarchitectures)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[LabeledBlock]:
        return iter(self.samples)

    def __getitem__(self, index: int) -> LabeledBlock:
        return self.samples[index]

    def blocks(self) -> List[BasicBlock]:
        """Returns the basic blocks without their labels."""
        return [sample.block for sample in self.samples]

    def throughputs(self, microarchitecture: str) -> np.ndarray:
        """Returns the label vector for one microarchitecture."""
        return np.array(
            [sample.throughput(microarchitecture) for sample in self.samples], dtype=np.float64
        )

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "ThroughputDataset":
        """Returns a new dataset containing the samples at ``indices``."""
        return ThroughputDataset(
            [self.samples[index] for index in indices],
            name=name or self.name,
            microarchitectures=self.microarchitectures,
        )

    # ------------------------------------------------------------------ #
    # Splits (Section 4: 83/17 test split, then 98/2 validation split).
    # ------------------------------------------------------------------ #
    def train_test_split(
        self, test_fraction: float = 0.17, seed: int = 0
    ) -> Tuple["ThroughputDataset", "ThroughputDataset"]:
        """Random train/test split with the paper's 83 %/17 % default."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        permutation = rng.permutation(len(self.samples))
        num_test = max(1, int(round(len(self.samples) * test_fraction)))
        test_indices = permutation[:num_test]
        train_indices = permutation[num_test:]
        return (
            self.subset(train_indices, name=f"{self.name}-train"),
            self.subset(test_indices, name=f"{self.name}-test"),
        )

    def paper_splits(
        self,
        test_fraction: float = 0.17,
        validation_fraction: float = 0.02,
        seed: int = 0,
    ) -> DatasetSplits:
        """Returns the paper's train / validation / test partition."""
        train_and_validation, test = self.train_test_split(test_fraction, seed)
        rng = np.random.default_rng(seed + 1)
        permutation = rng.permutation(len(train_and_validation))
        num_validation = max(1, int(round(len(train_and_validation) * validation_fraction)))
        validation_indices = permutation[:num_validation]
        train_indices = permutation[num_validation:]
        return DatasetSplits(
            train=train_and_validation.subset(train_indices, name=f"{self.name}-train"),
            validation=train_and_validation.subset(
                validation_indices, name=f"{self.name}-validation"
            ),
            test=test,
        )

    def multi_task_subset(self) -> "ThroughputDataset":
        """Returns the samples that are labelled for *all* microarchitectures.

        The paper's multi-task training "selected basic blocks where we had
        ground truth data for all target microarchitectures" (Section 5.3).
        """
        complete = [
            sample
            for sample in self.samples
            if all(key in sample.throughputs for key in self.microarchitectures)
        ]
        return ThroughputDataset(
            complete, name=f"{self.name}-multitask", microarchitectures=self.microarchitectures
        )


def _label_blocks(
    blocks: Sequence[BasicBlock],
    measurement: MeasurementModel,
    microarchitectures: Sequence[str],
    seed: int,
) -> List[LabeledBlock]:
    oracles = {
        key: ThroughputOracle(MICROARCHITECTURES[key]) for key in microarchitectures
    }
    rng = np.random.default_rng(seed)
    samples: List[LabeledBlock] = []
    for block in blocks:
        labels: Dict[str, float] = {}
        for key, oracle in oracles.items():
            cycles = oracle.throughput(block)
            labels[key] = measurement.measure(cycles, rng)
        samples.append(LabeledBlock(block=block, throughputs=labels))
    return samples


def build_ithemal_like_dataset(
    num_blocks: int,
    seed: int = 0,
    generator_config: Optional[GeneratorConfig] = None,
    microarchitectures: Sequence[str] = TARGET_MICROARCHITECTURES,
) -> ThroughputDataset:
    """Builds the synthetic substitute of the Ithemal dataset.

    Args:
        num_blocks: Number of basic blocks to generate.
        seed: Seed controlling both block generation and measurement noise.
        generator_config: Optional override of the block generator settings.
        microarchitectures: Which microarchitectures to label.
    """
    generator = BlockGenerator(generator_config, seed=seed)
    blocks = generator.generate_blocks(num_blocks, prefix="ithemal")
    samples = _label_blocks(blocks, ITHEMAL_MEASUREMENT, microarchitectures, seed + 17)
    return ThroughputDataset(samples, name="ithemal", microarchitectures=microarchitectures)


def build_bhive_like_dataset(
    num_blocks: int,
    seed: int = 1000,
    generator_config: Optional[GeneratorConfig] = None,
    microarchitectures: Sequence[str] = TARGET_MICROARCHITECTURES,
) -> ThroughputDataset:
    """Builds the synthetic substitute of the BHive dataset.

    BHive is roughly five times smaller than the Ithemal dataset and uses a
    different measurement methodology; callers typically pass
    ``num_blocks = ithemal_size // 5``.
    """
    generator = BlockGenerator(generator_config, seed=seed)
    blocks = generator.generate_blocks(num_blocks, prefix="bhive")
    samples = _label_blocks(blocks, BHIVE_MEASUREMENT, microarchitectures, seed + 17)
    return ThroughputDataset(samples, name="bhive", microarchitectures=microarchitectures)
