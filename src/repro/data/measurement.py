"""Measurement-methodology models.

The paper uses two datasets whose throughput values were collected with
*different measurement tools*: the Ithemal dataset and BHive.  Section 5.1
points out that models trained on one dataset degrade noticeably when tested
on the other precisely because of this methodological difference.

This module models each methodology as a transformation of the oracle's
"true" cycle count into a measured value: a fixed harness overhead, a
multiplicative calibration bias, quantisation of the counter readings, and
zero-mean measurement noise.  The two concrete models below use different
constants, which reproduces the cross-dataset degradation without changing
the underlying blocks.

Throughput values are reported *per 100 iterations* of the basic block,
matching the note under Table 9 of the paper ("throughput values are per 100
iterations of each basic block").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "MeasurementModel",
    "ITHEMAL_MEASUREMENT",
    "BHIVE_MEASUREMENT",
    "ITERATIONS_PER_MEASUREMENT",
]

#: Both datasets report the cost of 100 back-to-back executions of the block.
ITERATIONS_PER_MEASUREMENT = 100


@dataclass(frozen=True)
class MeasurementModel:
    """Transforms true cycles/iteration into a measured throughput value.

    Attributes:
        name: Identifier of the methodology ("ithemal" or "bhive").
        harness_overhead_cycles: Fixed overhead added to every measurement
            (timer reads, loop bookkeeping), in cycles per 100 iterations.
        calibration_bias: Multiplicative bias of the methodology (for
            example a slightly different handling of frequency scaling).
        noise_fraction: Standard deviation of the multiplicative measurement
            noise.
        quantization_cycles: Measurements are rounded to a multiple of this
            value (cycle counters have limited resolution).
    """

    name: str
    harness_overhead_cycles: float
    calibration_bias: float
    noise_fraction: float
    quantization_cycles: float

    def measure(
        self,
        cycles_per_iteration: float,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Returns the measured throughput for 100 iterations of the block.

        Args:
            cycles_per_iteration: The oracle's steady-state estimate.
            rng: Random generator for the measurement noise; when omitted
                the measurement is deterministic (no noise).
        """
        if cycles_per_iteration < 0:
            raise ValueError("cycles_per_iteration must be non-negative")
        value = cycles_per_iteration * ITERATIONS_PER_MEASUREMENT * self.calibration_bias
        value += self.harness_overhead_cycles
        if rng is not None and self.noise_fraction > 0:
            value *= 1.0 + rng.normal(0.0, self.noise_fraction)
        if self.quantization_cycles > 0:
            value = round(value / self.quantization_cycles) * self.quantization_cycles
        return float(max(value, 1.0))

    def normalize_to_single_iteration(self, measured_value: float) -> float:
        """Converts a measured value back to cycles per single iteration.

        This is the normalisation the paper applies before plotting the
        heatmaps in Figures 3 and 5 ("we normalize the throughput values to
        a single run of each basic block").
        """
        return measured_value / ITERATIONS_PER_MEASUREMENT


#: Measurement model of the (privately shared) Ithemal dataset.
ITHEMAL_MEASUREMENT = MeasurementModel(
    name="ithemal",
    harness_overhead_cycles=35.0,
    calibration_bias=1.00,
    noise_fraction=0.02,
    quantization_cycles=1.0,
)

#: Measurement model of the BHive benchmark suite, which uses a different
#: harness (performance counters sampled around an unrolled loop) and hence
#: different overhead/bias constants.
BHIVE_MEASUREMENT = MeasurementModel(
    name="bhive",
    harness_overhead_cycles=8.0,
    calibration_bias=1.12,
    noise_fraction=0.03,
    quantization_cycles=1.0,
)
