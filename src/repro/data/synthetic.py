"""Synthetic basic-block generator.

The paper trains on 1.4M basic blocks from the Ithemal dataset and 300K
blocks from BHive, both harvested from real applications (databases,
compilers, SPEC CPU, scientific computing, ML frameworks).  Those datasets
are not available offline, so this module generates synthetic blocks whose
structure mimics the populations those suites produce:

* short address-computation and spill/fill heavy blocks (compiler output),
* integer ALU blocks with comparison/branch idioms (control-heavy code),
* scalar and packed floating-point kernels with long dependency chains
  (scientific computing),
* memory-copy / string-manipulation blocks,
* reduction loops whose loop-carried dependency limits throughput.

Each *profile* below is a small probabilistic grammar over the instruction
set in :mod:`repro.isa.semantics`.  The mixture of profiles, the block length
distribution and the register-reuse behaviour are all configurable, and every
generator is fully deterministic given its seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.isa.instructions import Instruction
from repro.isa.operands import MemoryReference, Operand

__all__ = ["WorkloadProfile", "GeneratorConfig", "BlockGenerator"]


class WorkloadProfile(enum.Enum):
    """The families of synthetic basic blocks."""

    INTEGER_ALU = "integer_alu"
    ADDRESS_HEAVY = "address_heavy"
    FLOATING_POINT = "floating_point"
    VECTOR_KERNEL = "vector_kernel"
    MEMORY_COPY = "memory_copy"
    DEPENDENCY_CHAIN = "dependency_chain"
    CONTROL_IDIOM = "control_idiom"


_GPR64 = ("RAX", "RBX", "RCX", "RDX", "RSI", "RDI", "R8", "R9", "R10", "R11",
          "R12", "R13", "R14", "R15")
_GPR32 = ("EAX", "EBX", "ECX", "EDX", "ESI", "EDI", "R8D", "R9D", "R10D",
          "R11D", "R12D", "R13D", "R14D", "R15D")
_BASE_REGISTERS = ("RAX", "RBX", "RCX", "RDX", "RSI", "RDI", "RBP", "RSP",
                   "R8", "R9", "R10", "R11", "R12", "R13", "R14", "R15")
_XMM = tuple(f"XMM{i}" for i in range(16))

_INT_ALU_MNEMONICS = ("ADD", "SUB", "AND", "OR", "XOR", "ADC", "SBB")
_INT_UNARY_MNEMONICS = ("INC", "DEC", "NEG", "NOT")
_SHIFT_MNEMONICS = ("SHL", "SHR", "SAR", "ROL", "ROR")
_SCALAR_FP_MNEMONICS = ("ADDSS", "ADDSD", "SUBSS", "SUBSD", "MULSS", "MULSD")
_SCALAR_FP_DIV_MNEMONICS = ("DIVSS", "DIVSD", "SQRTSS", "SQRTSD")
_PACKED_FP_MNEMONICS = ("ADDPS", "ADDPD", "SUBPS", "MULPS", "MULPD")
_VECTOR_INT_MNEMONICS = ("PADDD", "PADDQ", "PSUBD", "PXOR", "PAND", "POR")
_CONDITION_SUFFIXES = ("E", "NE", "L", "LE", "G", "GE", "B", "BE", "A", "AE", "S", "NS")


@dataclass
class GeneratorConfig:
    """Configuration of the synthetic block generator.

    Attributes:
        min_instructions / max_instructions: Bounds of the block length
            distribution (geometric-ish, clipped to the bounds; the BHive
            population is dominated by blocks of 1-10 instructions).
        mean_instructions: Mean of the length distribution.
        profile_weights: Sampling weight of each workload profile.
        register_reuse_probability: Probability that an operand reuses a
            recently written register instead of a fresh one, which controls
            how deep the dependency chains are.
        memory_operand_probability: Probability that a source operand of an
            integer instruction is a memory operand.
        lock_prefix_probability: Probability of a LOCK prefix on
            read-modify-write memory instructions.
        seed: Seed of the generator's random stream, so a config fully
            describes (and can serialize) a reproducible block population.
            ``BlockGenerator(config, seed=...)`` still accepts a seed
            override for callers that share one config across seeds.
    """

    min_instructions: int = 1
    max_instructions: int = 40
    mean_instructions: float = 7.0
    profile_weights: Dict[WorkloadProfile, float] = field(
        default_factory=lambda: {
            WorkloadProfile.INTEGER_ALU: 0.26,
            WorkloadProfile.ADDRESS_HEAVY: 0.20,
            WorkloadProfile.FLOATING_POINT: 0.14,
            WorkloadProfile.VECTOR_KERNEL: 0.10,
            WorkloadProfile.MEMORY_COPY: 0.08,
            WorkloadProfile.DEPENDENCY_CHAIN: 0.12,
            WorkloadProfile.CONTROL_IDIOM: 0.10,
        }
    )
    register_reuse_probability: float = 0.55
    memory_operand_probability: float = 0.30
    lock_prefix_probability: float = 0.03
    seed: int = 0


class BlockGenerator:
    """Generates synthetic basic blocks from a mixture of workload profiles.

    Args:
        config: Generator configuration (including its ``seed``).
        seed: Optional override of ``config.seed``, kept for callers that
            reuse one config across several random streams.
    """

    def __init__(
        self, config: Optional[GeneratorConfig] = None, seed: Optional[int] = None
    ) -> None:
        self.config = config or GeneratorConfig()
        self.seed = self.config.seed if seed is None else int(seed)
        self.rng = np.random.default_rng(self.seed)
        weights = self.config.profile_weights
        self._profiles = list(weights.keys())
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("profile weights must sum to a positive value")
        self._profile_probabilities = np.array(
            [weights[profile] / total for profile in self._profiles]
        )

    # ------------------------------------------------------------------ #
    # Public API.
    # ------------------------------------------------------------------ #
    def generate_block(self, identifier: Optional[str] = None) -> BasicBlock:
        """Generates a single basic block."""
        profile = self._profiles[
            self.rng.choice(len(self._profiles), p=self._profile_probabilities)
        ]
        length = self._sample_length()
        instructions = self._generate_profile(profile, length)
        return BasicBlock(instructions, identifier=identifier)

    def generate_blocks(self, count: int, prefix: str = "synthetic") -> List[BasicBlock]:
        """Generates ``count`` basic blocks with stable identifiers."""
        return [self.generate_block(identifier=f"{prefix}-{index}") for index in range(count)]

    # ------------------------------------------------------------------ #
    # Length and operand sampling.
    # ------------------------------------------------------------------ #
    def _sample_length(self) -> int:
        mean = max(self.config.mean_instructions, 1.1)
        length = 1 + self.rng.geometric(1.0 / mean)
        return int(np.clip(length, self.config.min_instructions, self.config.max_instructions))

    def _pick_register(self, pool: Sequence[str], recent: List[str]) -> str:
        reusable = [register for register in recent if register in pool]
        if reusable and self.rng.random() < self.config.register_reuse_probability:
            return reusable[self.rng.integers(0, len(reusable))]
        return pool[self.rng.integers(0, len(pool))]

    def _memory_operand(self, recent: List[str], width_bits: int = 64) -> Operand:
        base = self._pick_register(_BASE_REGISTERS, recent)
        use_index = self.rng.random() < 0.35
        index = None
        scale = 1
        if use_index:
            index = self._pick_register(tuple(r for r in _BASE_REGISTERS if r != "RSP"), recent)
            scale = int(self.rng.choice([1, 2, 4, 8]))
        displacement = int(self.rng.choice([0, 4, 8, 16, 24, 32, 64, 128, -8, -16, -64]))
        return Operand.from_memory(
            MemoryReference(
                base=base, index=index, scale=scale,
                displacement=displacement, width_bits=width_bits,
            )
        )

    def _immediate(self) -> Operand:
        magnitude = int(self.rng.choice([1, 2, 4, 8, 10, 16, 32, 100, 255, 4096, 65535]))
        return Operand.from_immediate(magnitude)

    # ------------------------------------------------------------------ #
    # Profile grammars.
    # ------------------------------------------------------------------ #
    def _generate_profile(self, profile: WorkloadProfile, length: int) -> List[Instruction]:
        generators: Dict[WorkloadProfile, Callable[[int], List[Instruction]]] = {
            WorkloadProfile.INTEGER_ALU: self._integer_alu_block,
            WorkloadProfile.ADDRESS_HEAVY: self._address_heavy_block,
            WorkloadProfile.FLOATING_POINT: self._floating_point_block,
            WorkloadProfile.VECTOR_KERNEL: self._vector_kernel_block,
            WorkloadProfile.MEMORY_COPY: self._memory_copy_block,
            WorkloadProfile.DEPENDENCY_CHAIN: self._dependency_chain_block,
            WorkloadProfile.CONTROL_IDIOM: self._control_idiom_block,
        }
        instructions = generators[profile](length)
        return instructions[: self.config.max_instructions]

    def _integer_alu_block(self, length: int) -> List[Instruction]:
        instructions: List[Instruction] = []
        recent: List[str] = []
        use32 = self.rng.random() < 0.5
        pool = _GPR32 if use32 else _GPR64
        for _ in range(length):
            roll = self.rng.random()
            destination = self._pick_register(pool, recent)
            if roll < 0.55:
                mnemonic = str(self.rng.choice(_INT_ALU_MNEMONICS))
                if self.rng.random() < self.config.memory_operand_probability:
                    source = self._memory_operand(recent, 32 if use32 else 64)
                else:
                    source = (
                        Operand.from_register(self._pick_register(pool, recent))
                        if self.rng.random() < 0.7
                        else self._immediate()
                    )
                prefixes: Tuple[str, ...] = ()
                instructions.append(
                    Instruction.create(
                        mnemonic, (Operand.from_register(destination), source), prefixes
                    )
                )
            elif roll < 0.70:
                mnemonic = str(self.rng.choice(_SHIFT_MNEMONICS))
                instructions.append(
                    Instruction.create(
                        mnemonic,
                        (
                            Operand.from_register(destination),
                            Operand.from_immediate(int(self.rng.integers(1, 32))),
                        ),
                    )
                )
            elif roll < 0.82:
                mnemonic = str(self.rng.choice(_INT_UNARY_MNEMONICS))
                instructions.append(
                    Instruction.create(mnemonic, (Operand.from_register(destination),))
                )
            elif roll < 0.92:
                source = Operand.from_register(self._pick_register(pool, recent))
                instructions.append(
                    Instruction.create("MOV", (Operand.from_register(destination), source))
                )
            else:
                mnemonic = str(self.rng.choice(["IMUL", "POPCNT", "LZCNT", "TZCNT"]))
                source = Operand.from_register(self._pick_register(pool, recent))
                instructions.append(
                    Instruction.create(mnemonic, (Operand.from_register(destination), source))
                )
            recent.append(destination)
            recent = recent[-4:]
        return instructions

    def _address_heavy_block(self, length: int) -> List[Instruction]:
        instructions: List[Instruction] = []
        recent: List[str] = []
        for step in range(length):
            destination = self._pick_register(_GPR64, recent)
            roll = self.rng.random()
            if roll < 0.35:
                instructions.append(
                    Instruction.create(
                        "MOV", (Operand.from_register(destination), self._memory_operand(recent))
                    )
                )
            elif roll < 0.55:
                instructions.append(
                    Instruction.create(
                        "MOV",
                        (self._memory_operand(recent), Operand.from_register(
                            self._pick_register(_GPR64, recent))),
                    )
                )
            elif roll < 0.80:
                instructions.append(
                    Instruction.create(
                        "LEA", (Operand.from_register(destination), self._memory_operand(recent, 0))
                    )
                )
            else:
                prefixes = ()
                if self.rng.random() < self.config.lock_prefix_probability:
                    prefixes = ("LOCK",)
                instructions.append(
                    Instruction.create(
                        "ADD",
                        (self._memory_operand(recent, 64), Operand.from_register(
                            self._pick_register(_GPR64, recent))),
                        prefixes,
                    )
                )
            recent.append(destination)
            recent = recent[-4:]
        return instructions

    def _floating_point_block(self, length: int) -> List[Instruction]:
        instructions: List[Instruction] = []
        recent: List[str] = []
        for _ in range(length):
            destination = self._pick_register(_XMM, recent)
            roll = self.rng.random()
            if roll < 0.15:
                instructions.append(
                    Instruction.create(
                        "MOVSD",
                        (Operand.from_register(destination), self._memory_operand(recent, 64)),
                    )
                )
            elif roll < 0.75:
                mnemonic = str(self.rng.choice(_SCALAR_FP_MNEMONICS))
                source = Operand.from_register(self._pick_register(_XMM, recent))
                instructions.append(
                    Instruction.create(mnemonic, (Operand.from_register(destination), source))
                )
            elif roll < 0.88:
                mnemonic = str(self.rng.choice(_SCALAR_FP_DIV_MNEMONICS))
                source = Operand.from_register(self._pick_register(_XMM, recent))
                instructions.append(
                    Instruction.create(mnemonic, (Operand.from_register(destination), source))
                )
            else:
                mnemonic = str(self.rng.choice(["CVTSI2SD", "CVTTSD2SI", "UCOMISD"]))
                if mnemonic == "CVTTSD2SI":
                    operands = (
                        Operand.from_register(self._pick_register(_GPR64, [])),
                        Operand.from_register(destination),
                    )
                elif mnemonic == "UCOMISD":
                    operands = (
                        Operand.from_register(destination),
                        Operand.from_register(self._pick_register(_XMM, recent)),
                    )
                else:
                    operands = (
                        Operand.from_register(destination),
                        Operand.from_register(self._pick_register(_GPR64, [])),
                    )
                instructions.append(Instruction.create(mnemonic, operands))
            recent.append(destination)
            recent = recent[-3:]
        return instructions

    def _vector_kernel_block(self, length: int) -> List[Instruction]:
        instructions: List[Instruction] = []
        recent: List[str] = []
        for _ in range(length):
            destination = self._pick_register(_XMM, recent)
            roll = self.rng.random()
            if roll < 0.25:
                instructions.append(
                    Instruction.create(
                        "MOVDQU",
                        (Operand.from_register(destination), self._memory_operand(recent, 128)),
                    )
                )
            elif roll < 0.55:
                mnemonic = str(self.rng.choice(_PACKED_FP_MNEMONICS))
                source = Operand.from_register(self._pick_register(_XMM, recent))
                instructions.append(
                    Instruction.create(mnemonic, (Operand.from_register(destination), source))
                )
            elif roll < 0.85:
                mnemonic = str(self.rng.choice(_VECTOR_INT_MNEMONICS))
                source = Operand.from_register(self._pick_register(_XMM, recent))
                instructions.append(
                    Instruction.create(mnemonic, (Operand.from_register(destination), source))
                )
            else:
                instructions.append(
                    Instruction.create(
                        "MOVDQU",
                        (self._memory_operand(recent, 128), Operand.from_register(destination)),
                    )
                )
            recent.append(destination)
            recent = recent[-3:]
        return instructions

    def _memory_copy_block(self, length: int) -> List[Instruction]:
        instructions: List[Instruction] = []
        recent: List[str] = ["RSI", "RDI"]
        scratch = list(_GPR64[:6])
        for step in range(length):
            register = scratch[step % len(scratch)]
            if step % 2 == 0:
                instructions.append(
                    Instruction.create(
                        "MOV", (Operand.from_register(register), self._memory_operand(["RSI"], 64))
                    )
                )
            else:
                instructions.append(
                    Instruction.create(
                        "MOV", (self._memory_operand(["RDI"], 64), Operand.from_register(register))
                    )
                )
        if self.rng.random() < 0.3 and length >= 2:
            instructions[-1] = Instruction.create("STOSQ", (), ("REP",))
        return instructions

    def _dependency_chain_block(self, length: int) -> List[Instruction]:
        """A single long dependency chain, typically latency bound."""
        instructions: List[Instruction] = []
        use_fp = self.rng.random() < 0.5
        if use_fp:
            accumulator = str(self.rng.choice(_XMM[:8]))
            chain_ops = _SCALAR_FP_MNEMONICS + _SCALAR_FP_DIV_MNEMONICS[:2]
            for _ in range(length):
                mnemonic = str(self.rng.choice(chain_ops))
                source = Operand.from_register(str(self.rng.choice(_XMM[8:])))
                instructions.append(
                    Instruction.create(mnemonic, (Operand.from_register(accumulator), source))
                )
        else:
            accumulator = str(self.rng.choice(_GPR64[:8]))
            for _ in range(length):
                roll = self.rng.random()
                if roll < 0.6:
                    mnemonic = str(self.rng.choice(_INT_ALU_MNEMONICS[:5]))
                    source = Operand.from_register(str(self.rng.choice(_GPR64[8:])))
                elif roll < 0.85:
                    mnemonic = "IMUL"
                    source = Operand.from_register(str(self.rng.choice(_GPR64[8:])))
                else:
                    mnemonic = "MOV"
                    source = self._memory_operand([accumulator], 64)
                instructions.append(
                    Instruction.create(mnemonic, (Operand.from_register(accumulator), source))
                )
        return instructions

    def _control_idiom_block(self, length: int) -> List[Instruction]:
        """Comparison / flag / conditional-move idioms like Table 1."""
        instructions: List[Instruction] = []
        recent: List[str] = []
        for step in range(length):
            destination = self._pick_register(_GPR32, recent)
            roll = self.rng.random()
            if roll < 0.30:
                source = (
                    self._immediate()
                    if self.rng.random() < 0.5
                    else Operand.from_register(self._pick_register(_GPR32, recent))
                )
                mnemonic = "CMP" if self.rng.random() < 0.6 else "TEST"
                instructions.append(
                    Instruction.create(mnemonic, (Operand.from_register(destination), source))
                )
            elif roll < 0.50:
                suffix = str(self.rng.choice(_CONDITION_SUFFIXES))
                source = Operand.from_register(self._pick_register(_GPR32, recent))
                instructions.append(
                    Instruction.create(
                        f"CMOV{suffix}", (Operand.from_register(destination), source)
                    )
                )
            elif roll < 0.62:
                suffix = str(self.rng.choice(_CONDITION_SUFFIXES))
                byte_register = str(self.rng.choice(("AL", "BL", "CL", "DL")))
                instructions.append(
                    Instruction.create(f"SET{suffix}", (Operand.from_register(byte_register),))
                )
            elif roll < 0.80:
                mnemonic = str(self.rng.choice(("SBB", "ADC", "AND", "OR")))
                source = (
                    self._immediate()
                    if self.rng.random() < 0.4
                    else Operand.from_register(self._pick_register(_GPR32, recent))
                )
                instructions.append(
                    Instruction.create(mnemonic, (Operand.from_register(destination), source))
                )
            else:
                instructions.append(
                    Instruction.create(
                        "MOV",
                        (Operand.from_register(destination), self._immediate()),
                    )
                )
            recent.append(destination)
            recent = recent[-4:]
        return instructions
