"""Ablation studies.

The paper's Section 5.2 ablates the decoder network and layer normalisation;
DESIGN.md additionally calls out two ablations of the graph encoding that the
paper motivates but does not isolate: the per-instruction decoding (vs a
global readout) and the data-dependency edges (vs a purely sequential graph).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.eval import paper_reference as paper
from repro.eval.harness import ExperimentHarness, ExperimentScale, TrainedModel
from repro.graph.builder import GraphBuilderConfig
from repro.models.config import GraniteConfig
from repro.models.granite import GraniteModel

__all__ = [
    "DecoderAblationResult",
    "run_decoder_ablation",
    "LayerNormAblationResult",
    "run_layernorm_ablation",
    "EdgeAblationResult",
    "run_edge_ablation",
    "ReadoutAblationResult",
    "run_readout_ablation",
]


# ---------------------------------------------------------------------- #
# Decoder ablation (Section 5.2, "Impact of the decoder network").
# ---------------------------------------------------------------------- #
@dataclass
class DecoderAblationResult:
    """MAPE of Ithemal with and without the MLP decoder extension."""

    dot_product_mape: Dict[str, float]
    mlp_decoder_mape: Dict[str, float]
    paper_improvement: Dict[str, float]

    def improvement(self, microarchitecture: str) -> float:
        """MAPE reduction from adding the MLP decoder (positive = better)."""
        return self.dot_product_mape[microarchitecture] - self.mlp_decoder_mape[microarchitecture]

    def average_improvement(self) -> float:
        return float(
            np.mean([self.improvement(key) for key in self.dot_product_mape])
        )

    def format_table(self) -> str:
        lines = [f"{'Microarchitecture':<14} {'dot-product':>12} {'MLP decoder':>12} {'delta':>8}"]
        for key in self.dot_product_mape:
            lines.append(
                f"{paper.MICROARCHITECTURE_DISPLAY_NAMES.get(key, key):<14} "
                f"{self.dot_product_mape[key] * 100:11.2f}% "
                f"{self.mlp_decoder_mape[key] * 100:11.2f}% "
                f"{self.improvement(key) * 100:7.2f}%"
            )
        return "\n".join(lines)


def run_decoder_ablation(scale: Optional[ExperimentScale] = None) -> DecoderAblationResult:
    """Compares the dot-product decoder (Ithemal) with the MLP decoder (Ithemal+)."""
    harness = ExperimentHarness(scale)
    vanilla = harness.train_standard_model("ithemal")
    extended = harness.train_standard_model("ithemal+")
    return DecoderAblationResult(
        dot_product_mape={
            key: vanilla.mape(key) for key in TARGET_MICROARCHITECTURES
        },
        mlp_decoder_mape={
            key: extended.mape(key) for key in TARGET_MICROARCHITECTURES
        },
        paper_improvement=paper.DECODER_ABLATION_IMPROVEMENT,
    )


# ---------------------------------------------------------------------- #
# Layer normalisation ablation (Section 5.2).
# ---------------------------------------------------------------------- #
@dataclass
class LayerNormAblationResult:
    """MAPE of GRANITE with and without layer normalisation."""

    with_layernorm_mape: Dict[str, float]
    without_layernorm_mape: Dict[str, float]
    without_layernorm_diverged: bool
    paper_error_increase: Dict[str, float]

    def error_increase(self, microarchitecture: str) -> float:
        """Absolute MAPE increase when layer normalisation is removed."""
        return (
            self.without_layernorm_mape[microarchitecture]
            - self.with_layernorm_mape[microarchitecture]
        )

    def format_table(self) -> str:
        lines = [
            f"{'Microarchitecture':<14} {'with LN':>9} {'without LN':>11} "
            f"{'increase':>9} {'paper increase':>15}"
        ]
        for key in self.with_layernorm_mape:
            lines.append(
                f"{paper.MICROARCHITECTURE_DISPLAY_NAMES.get(key, key):<14} "
                f"{self.with_layernorm_mape[key] * 100:8.2f}% "
                f"{self.without_layernorm_mape[key] * 100:10.2f}% "
                f"{self.error_increase(key) * 100:8.2f}% "
                f"{self.paper_error_increase.get(key, float('nan')) * 100:14.2f}%"
            )
        return "\n".join(lines)


def run_layernorm_ablation(scale: Optional[ExperimentScale] = None) -> LayerNormAblationResult:
    """Trains GRANITE with and without layer normalisation.

    The variant without layer normalisation uses gradient clipping, exactly
    as the paper had to ("we had to counter by using gradient clipping").
    """
    harness = ExperimentHarness(scale)
    splits = harness.ithemal_splits

    base_config = (
        GraniteConfig.small(seed=harness.scale.seed)
        if harness.scale.small_models
        else GraniteConfig.paper_defaults()
    )
    with_layernorm = harness.train_and_evaluate(
        GraniteModel(base_config), splits, name="granite-layernorm"
    )
    without_config = replace(base_config, use_layer_norm=False)
    without_layernorm = harness.train_and_evaluate(
        GraniteModel(without_config),
        splits,
        name="granite-no-layernorm",
        gradient_clip_norm=1.0,
    )
    return LayerNormAblationResult(
        with_layernorm_mape={
            key: with_layernorm.mape(key) for key in TARGET_MICROARCHITECTURES
        },
        without_layernorm_mape={
            key: without_layernorm.mape(key) for key in TARGET_MICROARCHITECTURES
        },
        without_layernorm_diverged=without_layernorm.history.diverged(),
        paper_error_increase=paper.LAYER_NORM_ABLATION_ERROR_INCREASE,
    )


# ---------------------------------------------------------------------- #
# Graph-edge ablation (DESIGN.md extension).
# ---------------------------------------------------------------------- #
@dataclass
class EdgeAblationResult:
    """MAPE of GRANITE with the full graph vs structural-only edges."""

    full_graph_mape: Dict[str, float]
    structural_only_mape: Dict[str, float]

    def dependency_edge_benefit(self) -> float:
        """Average MAPE reduction from the data-dependency edges."""
        full = np.mean(list(self.full_graph_mape.values()))
        structural = np.mean(list(self.structural_only_mape.values()))
        return float(structural - full)

    def format_table(self) -> str:
        lines = [f"{'Microarchitecture':<14} {'full graph':>11} {'structural only':>16}"]
        for key in self.full_graph_mape:
            lines.append(
                f"{paper.MICROARCHITECTURE_DISPLAY_NAMES.get(key, key):<14} "
                f"{self.full_graph_mape[key] * 100:10.2f}% "
                f"{self.structural_only_mape[key] * 100:15.2f}%"
            )
        return "\n".join(lines)


def run_edge_ablation(scale: Optional[ExperimentScale] = None) -> EdgeAblationResult:
    """Quantifies the value of the data-dependency edges in the graph.

    The ablated model keeps the node set and the structural (sequence) edges
    but removes the operand / address edges, i.e. it sees roughly the same
    information as a sequence model.
    """
    harness = ExperimentHarness(scale)
    splits = harness.ithemal_splits
    config = (
        GraniteConfig.small(seed=harness.scale.seed)
        if harness.scale.small_models
        else GraniteConfig.paper_defaults()
    )
    full = harness.train_and_evaluate(GraniteModel(config), splits, name="granite-full")
    structural_config = GraphBuilderConfig(
        include_structural_edges=True,
        include_data_edges=False,
        include_address_edges=False,
        include_implicit_operands=False,
    )
    structural = harness.train_and_evaluate(
        GraniteModel(config, graph_config=structural_config),
        splits,
        name="granite-structural-only",
    )
    return EdgeAblationResult(
        full_graph_mape={key: full.mape(key) for key in TARGET_MICROARCHITECTURES},
        structural_only_mape={
            key: structural.mape(key) for key in TARGET_MICROARCHITECTURES
        },
    )


# ---------------------------------------------------------------------- #
# Readout ablation (DESIGN.md extension).
# ---------------------------------------------------------------------- #
@dataclass
class ReadoutAblationResult:
    """MAPE and error balance of the two readout strategies.

    ``per_instruction`` is the paper's design (decode each instruction
    mnemonic node, sum contributions); ``global`` decodes the graph-level
    feature directly.  The paper conjectures the per-instruction decoding is
    the reason GRANITE's errors are balanced rather than biased (Section
    5.1), so the underestimation fractions are recorded as well.
    """

    per_instruction_mape: Dict[str, float]
    global_readout_mape: Dict[str, float]
    per_instruction_underestimation: Dict[str, float]
    global_readout_underestimation: Dict[str, float]

    def per_instruction_benefit(self) -> float:
        """Average MAPE reduction of per-instruction decoding (positive = better)."""
        per_instruction = np.mean(list(self.per_instruction_mape.values()))
        global_readout = np.mean(list(self.global_readout_mape.values()))
        return float(global_readout - per_instruction)

    def format_table(self) -> str:
        lines = [
            f"{'Microarchitecture':<14} {'per-instruction':>16} {'global readout':>15}"
        ]
        for key in self.per_instruction_mape:
            lines.append(
                f"{paper.MICROARCHITECTURE_DISPLAY_NAMES.get(key, key):<14} "
                f"{self.per_instruction_mape[key] * 100:15.2f}% "
                f"{self.global_readout_mape[key] * 100:14.2f}%"
            )
        return "\n".join(lines)


def run_readout_ablation(scale: Optional[ExperimentScale] = None) -> ReadoutAblationResult:
    """Compares per-instruction decoding against a global-feature readout."""
    from repro.training.metrics import underestimation_fraction

    harness = ExperimentHarness(scale)
    splits = harness.ithemal_splits
    base_config = (
        GraniteConfig.small(seed=harness.scale.seed)
        if harness.scale.small_models
        else GraniteConfig.paper_defaults()
    )

    per_instruction = harness.train_and_evaluate(
        GraniteModel(base_config), splits, name="granite-per-instruction"
    )
    global_config = replace(base_config, readout="global")
    global_readout = harness.train_and_evaluate(
        GraniteModel(global_config), splits, name="granite-global-readout"
    )

    def underestimation(trained: TrainedModel) -> Dict[str, float]:
        predictions = trained.model.predict(splits.test.blocks())
        return {
            key: underestimation_fraction(predictions[key], splits.test.throughputs(key))
            for key in TARGET_MICROARCHITECTURES
        }

    return ReadoutAblationResult(
        per_instruction_mape={
            key: per_instruction.mape(key) for key in TARGET_MICROARCHITECTURES
        },
        global_readout_mape={
            key: global_readout.mape(key) for key in TARGET_MICROARCHITECTURES
        },
        per_instruction_underestimation=underestimation(per_instruction),
        global_readout_underestimation=underestimation(global_readout),
    )
