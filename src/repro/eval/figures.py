"""Reproduction of the paper's figures (Figures 3, 4 and 5).

The figures are analyses of trained models rather than separate experiments:

* Figure 3 — heatmaps of measured vs predicted throughput for Ithemal and
  GRANITE on the Ithemal dataset (values under 10 cycles, normalised to one
  iteration of the block).
* Figure 4 — histograms of the relative prediction error for the same
  models, highlighting that Ithemal tends to underestimate while GRANITE is
  balanced.
* Figure 5 — the heatmaps of GRANITE trained and tested on BHive.

Because this environment has no plotting stack, the "figures" are produced
as numpy histograms plus a text rendering (:func:`render_heatmap_ascii`),
which is sufficient to check the qualitative claims: density concentrated on
the diagonal, and the sign balance of the error distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import TARGET_MICROARCHITECTURES, ThroughputDataset
from repro.data.measurement import ITERATIONS_PER_MEASUREMENT
from repro.eval.harness import ExperimentHarness, ExperimentScale, TrainedModel
from repro.models.base import ThroughputModel
from repro.training.metrics import (
    prediction_heatmap,
    relative_error_histogram,
    underestimation_fraction,
)

__all__ = [
    "HeatmapResult",
    "ErrorDistributionResult",
    "compute_heatmaps",
    "compute_error_distributions",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "render_heatmap_ascii",
]


@dataclass
class HeatmapResult:
    """Heatmap data for one or more models (Figures 3 and 5).

    Attributes:
        histograms: ``histograms[model][microarchitecture]`` is the 2-D
            histogram array (measured on the x axis, predicted on the y
            axis).
        bin_edges: The shared bin edges of both axes.
        diagonal_mass: ``diagonal_mass[model][microarchitecture]`` is the
            fraction of blocks whose prediction falls within 25 % of the
            measurement — a scalar summary of "density along the y = x
            line".
    """

    histograms: Dict[str, Dict[str, np.ndarray]]
    bin_edges: np.ndarray
    diagonal_mass: Dict[str, Dict[str, float]]
    dataset_name: str


@dataclass
class ErrorDistributionResult:
    """Relative-error histograms (Figure 4).

    Attributes:
        histograms: ``histograms[model][microarchitecture]`` is the
            ``(counts, bin_edges)`` pair.
        underestimation: Fraction of blocks underestimated per model and
            microarchitecture (the paper's qualitative claim is that this is
            clearly above 0.5 for Ithemal and close to 0.5 for GRANITE).
    """

    histograms: Dict[str, Dict[str, Tuple[np.ndarray, np.ndarray]]]
    underestimation: Dict[str, Dict[str, float]]


def _diagonal_mass(predicted: np.ndarray, actual: np.ndarray, tolerance: float = 0.25) -> float:
    relative_error = np.abs(predicted - actual) / np.maximum(np.abs(actual), 1e-9)
    return float(np.mean(relative_error <= tolerance))


def compute_heatmaps(
    models: Dict[str, ThroughputModel],
    dataset: ThroughputDataset,
    max_cycles: float = 10.0,
    num_bins: int = 50,
    microarchitectures: Sequence[str] = TARGET_MICROARCHITECTURES,
) -> HeatmapResult:
    """Computes Figure 3/5 style heatmaps for trained models on a dataset."""
    histograms: Dict[str, Dict[str, np.ndarray]] = {}
    diagonal: Dict[str, Dict[str, float]] = {}
    bin_edges = np.linspace(0.0, max_cycles, num_bins + 1)
    for model_name, model in models.items():
        histograms[model_name] = {}
        diagonal[model_name] = {}
        predictions = model.predict(dataset.blocks())
        for microarchitecture in microarchitectures:
            actual = dataset.throughputs(microarchitecture)
            predicted = predictions[microarchitecture]
            histogram, _, _ = prediction_heatmap(
                predicted,
                actual,
                max_cycles=max_cycles,
                num_bins=num_bins,
                normalization=ITERATIONS_PER_MEASUREMENT,
            )
            histograms[model_name][microarchitecture] = histogram
            diagonal[model_name][microarchitecture] = _diagonal_mass(predicted, actual)
    return HeatmapResult(
        histograms=histograms,
        bin_edges=bin_edges,
        diagonal_mass=diagonal,
        dataset_name=dataset.name,
    )


def compute_error_distributions(
    models: Dict[str, ThroughputModel],
    dataset: ThroughputDataset,
    microarchitectures: Sequence[str] = TARGET_MICROARCHITECTURES,
) -> ErrorDistributionResult:
    """Computes Figure 4 style relative-error histograms."""
    histograms: Dict[str, Dict[str, Tuple[np.ndarray, np.ndarray]]] = {}
    underestimation: Dict[str, Dict[str, float]] = {}
    for model_name, model in models.items():
        histograms[model_name] = {}
        underestimation[model_name] = {}
        predictions = model.predict(dataset.blocks())
        for microarchitecture in microarchitectures:
            actual = dataset.throughputs(microarchitecture)
            predicted = predictions[microarchitecture]
            histograms[model_name][microarchitecture] = relative_error_histogram(
                predicted, actual
            )
            underestimation[model_name][microarchitecture] = underestimation_fraction(
                predicted, actual
            )
    return ErrorDistributionResult(histograms=histograms, underestimation=underestimation)


def _train_figure_models(
    harness: ExperimentHarness, model_names: Sequence[str], use_bhive: bool
) -> Dict[str, TrainedModel]:
    splits = harness.bhive_splits if use_bhive else harness.ithemal_splits
    return {name: harness.train_standard_model(name, splits=splits) for name in model_names}


def run_figure3(
    scale: Optional[ExperimentScale] = None,
    model_names: Sequence[str] = ("granite", "ithemal+"),
) -> HeatmapResult:
    """Figure 3: measured-vs-predicted heatmaps on the Ithemal dataset.

    The paper compares vanilla Ithemal against multi-task GRANITE; the quick
    default here uses Ithemal+ as the LSTM baseline because vanilla Ithemal
    needs far more steps to produce non-degenerate predictions (the paper
    itself reports its instability).  Pass ``model_names=("granite",
    "ithemal")`` to reproduce the original pairing.
    """
    harness = ExperimentHarness(scale)
    trained = _train_figure_models(harness, model_names, use_bhive=False)
    models = {name: item.model for name, item in trained.items()}
    return compute_heatmaps(models, harness.ithemal_splits.test)


def run_figure4(
    scale: Optional[ExperimentScale] = None,
    model_names: Sequence[str] = ("granite", "ithemal+"),
) -> ErrorDistributionResult:
    """Figure 4: relative-error distributions on the Ithemal dataset."""
    harness = ExperimentHarness(scale)
    trained = _train_figure_models(harness, model_names, use_bhive=False)
    models = {name: item.model for name, item in trained.items()}
    return compute_error_distributions(models, harness.ithemal_splits.test)


def run_figure5(
    scale: Optional[ExperimentScale] = None,
) -> HeatmapResult:
    """Figure 5: GRANITE heatmaps when trained and tested on BHive."""
    harness = ExperimentHarness(scale)
    trained = _train_figure_models(harness, ("granite",), use_bhive=True)
    models = {name: item.model for name, item in trained.items()}
    return compute_heatmaps(models, harness.bhive_splits.test)


def render_heatmap_ascii(histogram: np.ndarray, width: int = 25) -> str:
    """Renders a 2-D histogram as a coarse ASCII density plot.

    The x axis (measured throughput) runs left to right and the y axis
    (predicted throughput) runs bottom to top, like the paper's figures.
    """
    if histogram.ndim != 2:
        raise ValueError("histogram must be 2-D")
    bins = histogram.shape[0]
    factor = max(1, bins // width)
    coarse = histogram[: (bins // factor) * factor, : (bins // factor) * factor]
    coarse = coarse.reshape(
        coarse.shape[0] // factor, factor, coarse.shape[1] // factor, factor
    ).sum(axis=(1, 3))
    maximum = coarse.max() if coarse.size else 0.0
    characters = " .:-=+*#%@"
    lines = []
    for row in reversed(range(coarse.shape[1])):
        line = ""
        for column in range(coarse.shape[0]):
            value = coarse[column, row]
            level = 0 if maximum == 0 else int(round((len(characters) - 1) * value / maximum))
            line += characters[level]
        lines.append(line)
    return "\n".join(lines)
