"""Shared experiment harness.

Every table and figure reproduction goes through the same three phases:
build the datasets, train the relevant models, evaluate them.  This module
factors out those phases so the per-experiment code in
:mod:`repro.eval.tables`, :mod:`repro.eval.figures` and
:mod:`repro.eval.ablations` stays declarative.

The :class:`ExperimentScale` controls how big the reproduction run is.  The
default ("quick") scale finishes each experiment in tens of seconds on a CPU,
which is what the benchmark suite uses; the "full" scale approaches the
paper's hyper-parameters (Table 4) and is meant for long offline runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence

import numpy as np

from repro.data.datasets import (
    DatasetSplits,
    TARGET_MICROARCHITECTURES,
    ThroughputDataset,
    build_bhive_like_dataset,
    build_ithemal_like_dataset,
)
from repro.models import create_model
from repro.models.base import ThroughputModel
from repro.models.config import TrainingConfig
from repro.training.metrics import RegressionMetrics
from repro.training.trainer import Trainer, TrainingHistory, evaluate_model

__all__ = ["ExperimentScale", "TrainedModel", "ExperimentHarness"]


@dataclass(frozen=True)
class ExperimentScale:
    """Size of an experiment run.

    Attributes:
        ithemal_dataset_size: Number of blocks in the Ithemal-like dataset.
        bhive_dataset_size: Number of blocks in the BHive-like dataset
            (the paper notes BHive is ~5x smaller).
        num_training_steps: Optimisation steps per trained model.
        batch_size: Blocks per training batch (100 in the paper).
        eval_batch_size: Micro-batch size of the batched inference path used
            for every evaluation (validation and test).
        small_models: Use the reduced model configuration.
        seed: Master seed; model seeds are derived from it.
    """

    ithemal_dataset_size: int = 1000
    bhive_dataset_size: int = 250
    num_training_steps: int = 200
    batch_size: int = 32
    eval_batch_size: int = 256
    small_models: bool = True
    seed: int = 0

    @staticmethod
    def quick(seed: int = 0) -> "ExperimentScale":
        """The default CPU-friendly scale used by the benchmark suite."""
        return ExperimentScale(seed=seed)

    @staticmethod
    def smoke(seed: int = 0) -> "ExperimentScale":
        """A tiny scale for unit tests of the harness itself."""
        return ExperimentScale(
            ithemal_dataset_size=80,
            bhive_dataset_size=40,
            num_training_steps=12,
            batch_size=16,
            seed=seed,
        )

    @staticmethod
    def full(seed: int = 0) -> "ExperimentScale":
        """A scale approaching the paper's setup (hours of CPU time)."""
        return ExperimentScale(
            ithemal_dataset_size=50_000,
            bhive_dataset_size=10_000,
            num_training_steps=20_000,
            batch_size=100,
            small_models=False,
            seed=seed,
        )


@dataclass
class TrainedModel:
    """A model together with its training history and evaluation results."""

    name: str
    model: ThroughputModel
    history: TrainingHistory
    test_metrics: Dict[str, RegressionMetrics]

    def mape(self, microarchitecture: str) -> float:
        return self.test_metrics[microarchitecture].mape

    def average_mape(self) -> float:
        return float(np.mean([metric.mape for metric in self.test_metrics.values()]))


class ExperimentHarness:
    """Builds datasets and trains models at a given :class:`ExperimentScale`."""

    def __init__(self, scale: Optional[ExperimentScale] = None) -> None:
        self.scale = scale or ExperimentScale.quick()
        self._ithemal_splits: Optional[DatasetSplits] = None
        self._bhive_splits: Optional[DatasetSplits] = None

    # ------------------------------------------------------------------ #
    # Datasets (built lazily and cached).
    # ------------------------------------------------------------------ #
    @property
    def ithemal_splits(self) -> DatasetSplits:
        """Train/validation/test splits of the Ithemal-like dataset."""
        if self._ithemal_splits is None:
            dataset = build_ithemal_like_dataset(
                self.scale.ithemal_dataset_size, seed=self.scale.seed
            )
            self._ithemal_splits = dataset.paper_splits(seed=self.scale.seed)
        return self._ithemal_splits

    @property
    def bhive_splits(self) -> DatasetSplits:
        """Train/validation/test splits of the BHive-like dataset."""
        if self._bhive_splits is None:
            dataset = build_bhive_like_dataset(
                self.scale.bhive_dataset_size, seed=self.scale.seed + 1000
            )
            self._bhive_splits = dataset.paper_splits(seed=self.scale.seed)
        return self._bhive_splits

    # ------------------------------------------------------------------ #
    # Model construction and training.
    # ------------------------------------------------------------------ #
    def make_model(
        self,
        name: str,
        tasks: Sequence[str] = TARGET_MICROARCHITECTURES,
        num_message_passing_iterations: Optional[int] = None,
        seed_offset: int = 0,
    ) -> ThroughputModel:
        """Creates a model ("granite", "ithemal", "ithemal+") for this run."""
        return create_model(
            name,
            tasks=tasks,
            small=self.scale.small_models,
            seed=self.scale.seed + seed_offset,
            num_message_passing_iterations=num_message_passing_iterations,
        )

    def training_config(self, loss: str = "mape", **overrides) -> TrainingConfig:
        """Returns the training configuration for this scale."""
        config = TrainingConfig(
            learning_rate=1e-3,
            batch_size=self.scale.batch_size,
            num_steps=self.scale.num_training_steps,
            loss=loss,
            validation_interval=max(10, self.scale.num_training_steps // 4),
            seed=self.scale.seed,
        )
        return replace(config, **overrides) if overrides else config

    def train_and_evaluate(
        self,
        model: ThroughputModel,
        splits: DatasetSplits,
        name: str,
        loss: str = "mape",
        test_dataset: Optional[ThroughputDataset] = None,
        **training_overrides,
    ) -> TrainedModel:
        """Trains ``model`` on ``splits`` and evaluates it on the test split."""
        trainer = Trainer(model, self.training_config(loss=loss, **training_overrides))
        history = trainer.train(splits.train, splits.validation)
        evaluation_dataset = test_dataset if test_dataset is not None else splits.test
        metrics = evaluate_model(
            model, evaluation_dataset, batch_size=self.scale.eval_batch_size
        )
        return TrainedModel(name=name, model=model, history=history, test_metrics=metrics)

    def train_standard_model(
        self,
        name: str,
        splits: Optional[DatasetSplits] = None,
        tasks: Sequence[str] = TARGET_MICROARCHITECTURES,
        **kwargs,
    ) -> TrainedModel:
        """Creates, trains and evaluates one of the paper's models."""
        splits = splits if splits is not None else self.ithemal_splits
        model = self.make_model(name, tasks=tasks)
        return self.train_and_evaluate(model, splits, name=name, **kwargs)
