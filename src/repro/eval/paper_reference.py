"""Reference values reported in the paper.

Every experiment in :mod:`repro.eval` prints the paper's numbers next to the
reproduction's numbers, and ``EXPERIMENTS.md`` records both.  The constants
here transcribe the tables of the paper (arXiv:2210.03894v2) so the
comparison is explicit and testable.

Absolute values are not expected to match — the reproduction trains far
smaller models for far fewer steps on synthetic data — but the *orderings*
(which model wins, which hyper-parameter is best) are asserted by the
benchmark suite.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "MICROARCHITECTURE_DISPLAY_NAMES",
    "TABLE5_MAPE",
    "TABLE5_CORRELATIONS",
    "TABLE6_MAPE",
    "TABLE7_MESSAGE_PASSING_MAPE",
    "TABLE8_MULTI_TASK_MAPE",
    "TABLE9_LOSS_MAPE",
    "TABLE10_RUNTIME_SECONDS",
    "DECODER_ABLATION_IMPROVEMENT",
    "LAYER_NORM_ABLATION_ERROR_INCREASE",
    "GRANITE_AVERAGE_TEST_ERROR",
]

#: Display names used in the paper's tables, keyed by the dataset keys used
#: throughout this repository.
MICROARCHITECTURE_DISPLAY_NAMES: Dict[str, str] = {
    "ivy_bridge": "Ivy Bridge",
    "haswell": "Haswell",
    "skylake": "Skylake",
}

#: Headline claim from the abstract / conclusion: average test error of the
#: multi-task GRANITE model across microarchitectures.
GRANITE_AVERAGE_TEST_ERROR = 0.069

#: Table 5 — MAPE when trained and tested on the Ithemal dataset.
#: TABLE5_MAPE[model][microarchitecture] is a fraction (0.0834 = 8.34 %).
TABLE5_MAPE: Dict[str, Dict[str, float]] = {
    "ithemal": {"ivy_bridge": 0.0834, "haswell": 0.0990, "skylake": 0.0830},
    "ithemal+": {"ivy_bridge": 0.0789, "haswell": 0.0882, "skylake": 0.0751},
    "granite": {"ivy_bridge": 0.0667, "haswell": 0.0761, "skylake": 0.0647},
}

#: Table 5 — (Spearman, Pearson) correlations on the Ithemal dataset.
TABLE5_CORRELATIONS: Dict[str, Dict[str, Tuple[float, float]]] = {
    "ithemal": {
        "ivy_bridge": (0.9640, 0.2768),
        "haswell": (0.9720, 0.3615),
        "skylake": (0.9643, 0.2871),
    },
    "ithemal+": {
        "ivy_bridge": (0.9744, 0.9631),
        "haswell": (0.9777, 0.9231),
        "skylake": (0.9754, 0.9035),
    },
    "granite": {
        "ivy_bridge": (0.9721, 0.8936),
        "haswell": (0.9752, 0.8255),
        "skylake": (0.9717, 0.7888),
    },
}

#: Table 6 — MAPE when trained and tested on the BHive dataset.
TABLE6_MAPE: Dict[str, Dict[str, float]] = {
    "ithemal+": {"ivy_bridge": 0.0925, "haswell": 0.0919, "skylake": 0.0945},
    "granite": {"ivy_bridge": 0.0844, "haswell": 0.0841, "skylake": 0.0912},
}

#: Table 7 — GRANITE MAPE vs number of message passing iterations.
TABLE7_MESSAGE_PASSING_MAPE: Dict[str, Dict[int, float]] = {
    "ivy_bridge": {1: 0.0848, 2: 0.0785, 4: 0.0749, 8: 0.0667, 12: 0.0730},
    "haswell": {1: 0.0942, 2: 0.0909, 4: 0.0840, 8: 0.0761, 12: 0.0844},
    "skylake": {1: 0.0840, 2: 0.0747, 4: 0.0705, 8: 0.0647, 12: 0.0697},
}

#: Table 8 — single-task vs multi-task MAPE for each model.
#: TABLE8_MULTI_TASK_MAPE[model][microarchitecture] = (single, multi).
TABLE8_MULTI_TASK_MAPE: Dict[str, Dict[str, Tuple[float, float]]] = {
    "ithemal": {
        "ivy_bridge": (0.0834, 0.0882),
        "haswell": (0.0990, 0.0962),
        "skylake": (0.0830, 0.0877),
    },
    "ithemal+": {
        "ivy_bridge": (0.0837, 0.0789),
        "haswell": (0.0887, 0.0882),
        "skylake": (0.0765, 0.0751),
    },
    "granite": {
        "ivy_bridge": (0.0702, 0.0667),
        "haswell": (0.0776, 0.0782),
        "skylake": (0.0734, 0.0675),
    },
}

#: Table 9 — GRANITE MAPE by training loss function.
TABLE9_LOSS_MAPE: Dict[str, Dict[str, float]] = {
    "ivy_bridge": {
        "mape": 0.0749, "mse": 0.2494, "relative_mse": 0.0772,
        "huber": 0.1021, "relative_huber": 0.0834,
    },
    "haswell": {
        "mape": 0.0833, "mse": 0.2707, "relative_mse": 0.0888,
        "huber": 0.1151, "relative_huber": 0.0944,
    },
    "skylake": {
        "mape": 0.0732, "mse": 0.2678, "relative_mse": 0.0731,
        "huber": 0.0954, "relative_huber": 0.0793,
    },
}

#: Table 10 — run time per batch of 100 blocks, in seconds, on the paper's
#: RTX 2080 Ti workstation.  Keys: (model, mode) -> value; modes are
#: "gpu_training", "gpu_inference", "cpu_inference".  Values are averaged
#: over the three microarchitectures for the single-task rows.
TABLE10_RUNTIME_SECONDS: Dict[Tuple[str, str], float] = {
    ("ithemal_single", "gpu_training"): 0.1002,
    ("ithemal_single", "gpu_inference"): 0.0498,
    ("ithemal_single", "cpu_inference"): 0.0555,
    ("granite_single", "gpu_training"): 0.0357,
    ("granite_single", "gpu_inference"): 0.0147,
    ("granite_single", "cpu_inference"): 0.0750,
    ("ithemal+_multi", "gpu_training"): 0.1086,
    ("ithemal+_multi", "gpu_inference"): 0.0515,
    ("ithemal+_multi", "cpu_inference"): 0.0602,
    ("granite_multi", "gpu_training"): 0.0361,
    ("granite_multi", "gpu_inference"): 0.0157,
    ("granite_multi", "cpu_inference"): 0.0768,
}

#: Section 5.2 — adding the MLP decoder to Ithemal improves its MAPE by
#: these amounts (fractions of a percent converted to fractions).
DECODER_ABLATION_IMPROVEMENT: Dict[str, float] = {
    "ivy_bridge": 0.0025,
    "haswell": 0.0039,
    "skylake": 0.0110,
}

#: Section 5.2 — removing layer normalisation increases the test error by
#: these absolute amounts (15.19 percentage points on Ivy Bridge, etc.).
LAYER_NORM_ABLATION_ERROR_INCREASE: Dict[str, float] = {
    "ivy_bridge": 0.1519,
    "haswell": 0.1287,
    "skylake": 0.1227,
}
