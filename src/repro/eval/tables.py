"""Reproduction of the paper's result tables (Tables 5-9).

Each ``run_tableN`` function trains the models that the corresponding table
compares, evaluates them with the table's metrics, and returns a result
object that can render itself next to the paper's reported values.  The
benchmark suite under ``benchmarks/`` calls these functions and asserts the
qualitative claims (orderings) hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.eval import paper_reference as paper
from repro.eval.harness import ExperimentHarness, ExperimentScale, TrainedModel
from repro.nn.losses import LOSS_FUNCTIONS
from repro.nn.tensor import Tensor
from repro.training.metrics import RegressionMetrics
from repro.training.trainer import evaluate_model

__all__ = [
    "BaselineComparisonResult",
    "run_table5",
    "run_table6",
    "MessagePassingSweepResult",
    "run_table7",
    "MultiTaskComparisonResult",
    "run_table8",
    "LossComparisonResult",
    "run_table9",
]


def _display(microarchitecture: str) -> str:
    return paper.MICROARCHITECTURE_DISPLAY_NAMES.get(microarchitecture, microarchitecture)


# ---------------------------------------------------------------------- #
# Tables 5 and 6: baseline comparisons.
# ---------------------------------------------------------------------- #
@dataclass
class BaselineComparisonResult:
    """Result of a Table 5 / Table 6 style comparison.

    Attributes:
        dataset_name: "ithemal" or "bhive".
        models: Trained models keyed by model name.
        paper_mape: The paper's MAPE values for the same table.
        cross_dataset_metrics: Optional metrics of each model on the *other*
            dataset's test split (the Section 5.1 cross-dataset analysis).
    """

    dataset_name: str
    models: Dict[str, TrainedModel]
    paper_mape: Dict[str, Dict[str, float]]
    microarchitectures: Tuple[str, ...] = TARGET_MICROARCHITECTURES
    cross_dataset_metrics: Dict[str, Dict[str, RegressionMetrics]] = field(default_factory=dict)

    def mape(self, model_name: str, microarchitecture: str) -> float:
        return self.models[model_name].mape(microarchitecture)

    def average_mape(self, model_name: str) -> float:
        return self.models[model_name].average_mape()

    def format_table(self) -> str:
        """Renders the comparison in the layout of Table 5 / Table 6."""
        lines = [
            f"Dataset: {self.dataset_name}",
            f"{'Microarchitecture':<14} {'Model':<10} {'MAPE':>8} "
            f"{'Spearman':>9} {'Pearson':>8}   {'paper MAPE':>10}",
        ]
        for microarchitecture in self.microarchitectures:
            for model_name, trained in self.models.items():
                metric = trained.test_metrics[microarchitecture]
                reference = self.paper_mape.get(model_name, {}).get(microarchitecture)
                reference_text = (
                    f"{reference * 100:9.2f}%" if reference is not None else "      n/a"
                )
                lines.append(
                    f"{_display(microarchitecture):<14} {model_name:<10} "
                    f"{metric.mape * 100:7.2f}% {metric.spearman:9.4f} "
                    f"{metric.pearson:8.4f}   {reference_text}"
                )
        return "\n".join(lines)


def run_table5(
    scale: Optional[ExperimentScale] = None,
    include_vanilla_ithemal: bool = True,
    evaluate_cross_dataset: bool = False,
) -> BaselineComparisonResult:
    """Table 5: GRANITE vs Ithemal vs Ithemal+ on the Ithemal dataset.

    All models are trained multi-task (one head per microarchitecture), as
    in the headline configuration of the paper, on the Ithemal-like dataset,
    and evaluated on its held-out test split.

    Args:
        scale: Experiment scale (defaults to the quick CPU scale).
        include_vanilla_ithemal: Also train the vanilla Ithemal baseline.
        evaluate_cross_dataset: Additionally evaluate every model on the
            BHive-like test split (the Section 5.1 cross-dataset analysis).
    """
    harness = ExperimentHarness(scale)
    model_names = ["granite", "ithemal+"] + (["ithemal"] if include_vanilla_ithemal else [])
    models: Dict[str, TrainedModel] = {}
    for index, name in enumerate(model_names):
        models[name] = harness.train_standard_model(name)

    cross: Dict[str, Dict[str, RegressionMetrics]] = {}
    if evaluate_cross_dataset:
        bhive_test = harness.bhive_splits.test
        for name, trained in models.items():
            cross[name] = evaluate_model(trained.model, bhive_test)

    return BaselineComparisonResult(
        dataset_name="ithemal",
        models=models,
        paper_mape=paper.TABLE5_MAPE,
        cross_dataset_metrics=cross,
    )


def run_table6(scale: Optional[ExperimentScale] = None) -> BaselineComparisonResult:
    """Table 6: GRANITE vs Ithemal+ trained and tested on the BHive dataset.

    Vanilla Ithemal is excluded, as in the paper ("we did not include
    vanilla Ithemal in this comparison because of consistent numerical
    instability in the training process").
    """
    harness = ExperimentHarness(scale)
    splits = harness.bhive_splits
    models = {
        "granite": harness.train_standard_model("granite", splits=splits),
        "ithemal+": harness.train_standard_model("ithemal+", splits=splits),
    }
    return BaselineComparisonResult(
        dataset_name="bhive", models=models, paper_mape=paper.TABLE6_MAPE
    )


# ---------------------------------------------------------------------- #
# Table 7: message passing iteration sweep.
# ---------------------------------------------------------------------- #
@dataclass
class MessagePassingSweepResult:
    """MAPE of GRANITE as a function of message passing iterations."""

    mape_by_iterations: Dict[int, Dict[str, float]]
    paper_mape: Dict[str, Dict[int, float]]
    microarchitectures: Tuple[str, ...] = TARGET_MICROARCHITECTURES

    def best_iterations(self, microarchitecture: str) -> int:
        """Returns the iteration count with the lowest test MAPE."""
        return min(
            self.mape_by_iterations,
            key=lambda iterations: self.mape_by_iterations[iterations][microarchitecture],
        )

    def average_mape(self, iterations: int) -> float:
        return float(np.mean(list(self.mape_by_iterations[iterations].values())))

    def format_table(self) -> str:
        lines = [
            f"{'Microarchitecture':<14} {'iterations':>10} {'MAPE':>8} {'paper MAPE':>11}"
        ]
        for microarchitecture in self.microarchitectures:
            for iterations in sorted(self.mape_by_iterations):
                measured = self.mape_by_iterations[iterations][microarchitecture]
                reference = self.paper_mape.get(microarchitecture, {}).get(iterations)
                reference_text = (
                    f"{reference * 100:10.2f}%" if reference is not None else "       n/a"
                )
                lines.append(
                    f"{_display(microarchitecture):<14} {iterations:>10d} "
                    f"{measured * 100:7.2f}% {reference_text}"
                )
        return "\n".join(lines)


def run_table7(
    scale: Optional[ExperimentScale] = None,
    iteration_counts: Sequence[int] = (1, 2, 4, 8),
) -> MessagePassingSweepResult:
    """Table 7: sensitivity of GRANITE to message passing iterations.

    The paper sweeps 1, 2, 4, 8 and 12 iterations; the default here stops at
    8 to keep the CPU run time reasonable (pass ``iteration_counts`` to
    extend the sweep).
    """
    harness = ExperimentHarness(scale)
    results: Dict[int, Dict[str, float]] = {}
    for iterations in iteration_counts:
        model = harness.make_model("granite", num_message_passing_iterations=iterations)
        trained = harness.train_and_evaluate(
            model, harness.ithemal_splits, name=f"granite-mp{iterations}"
        )
        results[int(iterations)] = {
            microarchitecture: trained.mape(microarchitecture)
            for microarchitecture in TARGET_MICROARCHITECTURES
        }
    return MessagePassingSweepResult(
        mape_by_iterations=results, paper_mape=paper.TABLE7_MESSAGE_PASSING_MAPE
    )


# ---------------------------------------------------------------------- #
# Table 8: multi-task vs single-task.
# ---------------------------------------------------------------------- #
@dataclass
class MultiTaskComparisonResult:
    """Single-task vs multi-task MAPE for every model (Table 8)."""

    single_task_mape: Dict[str, Dict[str, float]]
    multi_task_mape: Dict[str, Dict[str, float]]
    paper_values: Dict[str, Dict[str, Tuple[float, float]]]
    microarchitectures: Tuple[str, ...] = TARGET_MICROARCHITECTURES

    def multitask_improvement(self, model_name: str) -> float:
        """Average MAPE reduction from multi-task training (positive=better)."""
        single = np.mean(list(self.single_task_mape[model_name].values()))
        multi = np.mean(list(self.multi_task_mape[model_name].values()))
        return float(single - multi)

    def format_table(self) -> str:
        lines = [
            f"{'Microarchitecture':<14} {'Model':<10} {'single':>8} {'multi':>8} "
            f"{'paper single':>13} {'paper multi':>12}"
        ]
        for microarchitecture in self.microarchitectures:
            for model_name in self.multi_task_mape:
                single = self.single_task_mape[model_name][microarchitecture]
                multi = self.multi_task_mape[model_name][microarchitecture]
                reference = self.paper_values.get(model_name, {}).get(microarchitecture)
                if reference is not None:
                    reference_text = f"{reference[0] * 100:12.2f}% {reference[1] * 100:11.2f}%"
                else:
                    reference_text = f"{'n/a':>13} {'n/a':>12}"
                lines.append(
                    f"{_display(microarchitecture):<14} {model_name:<10} "
                    f"{single * 100:7.2f}% {multi * 100:7.2f}% {reference_text}"
                )
        return "\n".join(lines)


def run_table8(
    scale: Optional[ExperimentScale] = None,
    model_names: Sequence[str] = ("granite", "ithemal+"),
) -> MultiTaskComparisonResult:
    """Table 8: the effect of multi-task training.

    For each model, a separate single-task model is trained per
    microarchitecture and compared against one multi-task model with three
    heads.  Vanilla Ithemal can be added via ``model_names`` but is excluded
    by default to bound the run time.
    """
    harness = ExperimentHarness(scale)
    single_task: Dict[str, Dict[str, float]] = {}
    multi_task: Dict[str, Dict[str, float]] = {}
    for name in model_names:
        single_task[name] = {}
        for microarchitecture in TARGET_MICROARCHITECTURES:
            trained = harness.train_standard_model(
                name, tasks=(microarchitecture,)
            )
            single_task[name][microarchitecture] = trained.mape(microarchitecture)
        multi = harness.train_standard_model(name, tasks=TARGET_MICROARCHITECTURES)
        multi_task[name] = {
            microarchitecture: multi.mape(microarchitecture)
            for microarchitecture in TARGET_MICROARCHITECTURES
        }
    return MultiTaskComparisonResult(
        single_task_mape=single_task,
        multi_task_mape=multi_task,
        paper_values=paper.TABLE8_MULTI_TASK_MAPE,
    )


# ---------------------------------------------------------------------- #
# Table 9: loss function comparison.
# ---------------------------------------------------------------------- #
@dataclass
class LossComparisonResult:
    """Evaluation metrics of GRANITE trained with different loss functions."""

    #: metrics[loss_name][microarchitecture][metric_name] -> value, where
    #: metric_name is one of "mape", "mse", "relative_mse", "huber",
    #: "relative_huber" — the columns of Table 9.
    metrics: Dict[str, Dict[str, Dict[str, float]]]
    paper_mape: Dict[str, Dict[str, float]]
    microarchitectures: Tuple[str, ...] = TARGET_MICROARCHITECTURES

    def mape(self, loss_name: str, microarchitecture: str) -> float:
        return self.metrics[loss_name][microarchitecture]["mape"]

    def best_loss_by_mape(self, microarchitecture: str) -> str:
        return min(
            self.metrics,
            key=lambda loss_name: self.metrics[loss_name][microarchitecture]["mape"],
        )

    def format_table(self) -> str:
        columns = ("mape", "mse", "relative_mse", "huber", "relative_huber")
        header = f"{'Microarchitecture':<14} {'train loss':<15}" + "".join(
            f"{column:>15}" for column in columns
        )
        lines = [header]
        for microarchitecture in self.microarchitectures:
            for loss_name in self.metrics:
                row = self.metrics[loss_name][microarchitecture]
                values = "".join(f"{row[column]:15.4g}" for column in columns)
                lines.append(f"{_display(microarchitecture):<14} {loss_name:<15}{values}")
        return "\n".join(lines)


def _evaluation_losses(predicted: np.ndarray, actual: np.ndarray) -> Dict[str, float]:
    """Evaluates all Table 9 loss columns for one prediction vector."""
    results: Dict[str, float] = {}
    for loss_name, loss_fn in LOSS_FUNCTIONS.items():
        value = loss_fn(Tensor(predicted), Tensor(actual))
        results[loss_name] = float(value.item())
    return results


def run_table9(
    scale: Optional[ExperimentScale] = None,
    loss_names: Sequence[str] = ("mape", "mse", "relative_mse", "huber", "relative_huber"),
) -> LossComparisonResult:
    """Table 9: the impact of the training loss function on GRANITE.

    One GRANITE model is trained per loss function; every model is then
    evaluated under *all* loss metrics (the columns of Table 9) on the test
    split of the Ithemal-like dataset.
    """
    harness = ExperimentHarness(scale)
    splits = harness.ithemal_splits
    metrics: Dict[str, Dict[str, Dict[str, float]]] = {}
    for loss_name in loss_names:
        model = harness.make_model("granite")
        harness.train_and_evaluate(model, splits, name=f"granite-{loss_name}", loss=loss_name)
        metrics[loss_name] = {}
        predictions = model.predict(
            splits.test.blocks(), batch_size=harness.scale.eval_batch_size
        )
        for microarchitecture in TARGET_MICROARCHITECTURES:
            actual = splits.test.throughputs(microarchitecture)
            metrics[loss_name][microarchitecture] = _evaluation_losses(
                predictions[microarchitecture], actual
            )
    return LossComparisonResult(metrics=metrics, paper_mape=paper.TABLE9_LOSS_MAPE)
