"""Computational-efficiency measurements (Table 10).

The paper measures the average run time per batch of 100 basic blocks for
training and inference of every model, on a GPU for training and on both GPU
and CPU for inference.  This reproduction runs on a CPU-only numpy backend,
so the absolute numbers are incomparable, but the *relative* claims are
checked by the benchmark suite:

* GRANITE's per-batch cost on the accelerator-style batched path is lower
  than Ithemal's, because the graph network runs a fixed small number of
  dense operations per message-passing iteration while the hierarchical
  LSTM must step through every token sequentially.
* The overhead of multi-task heads is negligible for both families: the per
  microarchitecture cost of a three-headed model is roughly one third of
  training three single-task models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.datasets import (
    TARGET_MICROARCHITECTURES,
    ThroughputDataset,
    build_bhive_like_dataset,
)
from repro.eval import paper_reference as paper
from repro.eval.harness import ExperimentHarness, ExperimentScale
from repro.models.base import ThroughputModel
from repro.models.config import TrainingConfig
from repro.training.trainer import Trainer

__all__ = ["TimingResult", "measure_model_timing", "run_table10"]


@dataclass
class TimingResult:
    """Per-batch timing of one model configuration.

    Attributes:
        model_name: "granite", "ithemal" or "ithemal+".
        tasks: The microarchitecture heads of the timed model.
        training_seconds_per_batch: Average wall-clock time of one training
            step (forward + backward + optimiser update) on a batch.
        inference_seconds_per_batch: Average wall-clock time of predicting a
            batch.
        batch_size: Number of blocks per batch.
    """

    model_name: str
    tasks: Tuple[str, ...]
    training_seconds_per_batch: float
    inference_seconds_per_batch: float
    batch_size: int

    @property
    def training_seconds_per_task(self) -> float:
        """Training cost divided by the number of heads (the paper's
        "training cost per microarchitecture" argument)."""
        return self.training_seconds_per_batch / max(len(self.tasks), 1)


def measure_model_timing(
    model: ThroughputModel,
    dataset: ThroughputDataset,
    batch_size: int = 100,
    num_training_batches: int = 5,
    num_inference_batches: int = 10,
    seed: int = 0,
) -> TimingResult:
    """Measures average per-batch training and inference time of a model."""
    if len(dataset) < batch_size:
        batch_size = len(dataset)
    trainer = Trainer(
        model,
        TrainingConfig(batch_size=batch_size, num_steps=num_training_batches, seed=seed),
    )
    # Warm-up step excluded from the measurement (first-call overheads).
    trainer.train_step(dataset, step=0)
    training_times = []
    for step in range(num_training_batches):
        result = trainer.train_step(dataset, step=step + 1)
        training_times.append(result.seconds)

    rng = np.random.default_rng(seed)
    blocks = dataset.blocks()
    inference_times = []
    # Disable the prediction *and* encode caches for the measurement: Table
    # 10 reports the cost of actually running the model (graph construction
    # included), and the random batches drawn below repeat blocks across
    # iterations.
    with model.caches_disabled():
        model.predict(blocks[:batch_size])  # warm-up
        for _ in range(num_inference_batches):
            indices = rng.choice(len(blocks), size=batch_size, replace=False)
            batch = [blocks[int(index)] for index in indices]
            start = time.perf_counter()
            model.predict(batch)
            inference_times.append(time.perf_counter() - start)

    # Median, not mean: per-batch wall times occasionally catch a collector
    # pause or scheduler blip an order of magnitude above the true cost,
    # and a handful of samples gives the mean no chance to absorb it.
    return TimingResult(
        model_name=type(model).__name__,
        tasks=tuple(model.tasks),
        training_seconds_per_batch=float(np.median(training_times)),
        inference_seconds_per_batch=float(np.median(inference_times)),
        batch_size=batch_size,
    )


@dataclass
class Table10Result:
    """All timings of Table 10, keyed like the paper's rows."""

    timings: Dict[str, TimingResult]
    paper_seconds: Dict[Tuple[str, str], float]

    def format_table(self) -> str:
        lines = [
            f"{'Configuration':<18} {'train s/batch':>14} {'infer s/batch':>14} "
            f"{'train s/batch/task':>19}"
        ]
        for name, timing in self.timings.items():
            lines.append(
                f"{name:<18} {timing.training_seconds_per_batch:14.4f} "
                f"{timing.inference_seconds_per_batch:14.4f} "
                f"{timing.training_seconds_per_task:19.4f}"
            )
        return "\n".join(lines)


def run_table10(
    scale: Optional[ExperimentScale] = None,
    batch_size: int = 100,
    num_blocks: int = 400,
) -> Table10Result:
    """Table 10: run time per batch of training and inference.

    Times GRANITE and Ithemal+ in single-task and multi-task configurations
    (vanilla Ithemal shares Ithemal+'s encoder, which dominates its run
    time, so it is folded into the Ithemal+ row as in the discussion of the
    paper's results).
    """
    harness = ExperimentHarness(scale)
    dataset = build_bhive_like_dataset(num_blocks, seed=harness.scale.seed + 7)

    configurations = {
        "granite_single": ("granite", (TARGET_MICROARCHITECTURES[0],)),
        "granite_multi": ("granite", TARGET_MICROARCHITECTURES),
        "ithemal+_single": ("ithemal+", (TARGET_MICROARCHITECTURES[0],)),
        "ithemal+_multi": ("ithemal+", TARGET_MICROARCHITECTURES),
    }
    timings: Dict[str, TimingResult] = {}
    for name, (model_name, tasks) in configurations.items():
        model = harness.make_model(model_name, tasks=tasks)
        timings[name] = measure_model_timing(
            model, dataset, batch_size=batch_size, seed=harness.scale.seed
        )
    return Table10Result(timings=timings, paper_seconds=paper.TABLE10_RUNTIME_SECONDS)
