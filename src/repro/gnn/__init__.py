"""Graph neural network blocks (full GN block, Battaglia et al. 2018)."""

from repro.gnn.blocks import (
    EdgeBlock,
    FullGNBlock,
    GlobalBlock,
    GraphNetwork,
    GraphState,
    GraphTopology,
    NodeBlock,
)

__all__ = [
    "EdgeBlock",
    "FullGNBlock",
    "GlobalBlock",
    "GraphNetwork",
    "GraphState",
    "GraphTopology",
    "NodeBlock",
]
