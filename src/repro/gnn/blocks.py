"""Graph network blocks ("full GN block", Battaglia et al. 2018, §4.2).

GRANITE processes the basic-block graph with the full GN block architecture:
per message-passing iteration, edges are updated from their endpoint nodes
and the graph's global feature, nodes are updated from the aggregated
incoming edges, their own feature and the global feature, and finally the
global feature is updated from aggregated edge and node features.  Every
update function is a multi-layer feed-forward ReLU network with a residual
connection and layer normalisation at its input (Section 3.2 / Table 4 of
the GRANITE paper).

The implementation operates on packed batches (:class:`repro.graph.GraphsTuple`
index arrays) so a whole batch of basic blocks is processed as one large
disconnected graph, exactly like DeepMind's Graph Nets library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.nn.layers import ResidualMLP
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concatenate, gather_rows, segment_mean, segment_sum

__all__ = ["GraphState", "EdgeBlock", "NodeBlock", "GlobalBlock", "FullGNBlock", "GraphNetwork"]


@dataclass
class GraphState:
    """Feature tensors of a packed graph batch at one point in the network.

    Under gradient recording these are :class:`Tensor` values; on the
    ``no_grad`` inference fast path they are raw ``numpy.ndarray`` values and
    every block below operates on them without building the autodiff tape.
    The blocks are dtype-transparent: whatever compute dtype the input
    features carry (``float64`` by default, ``float32`` inside a
    ``repro.nn.tensor.compute_dtype("float32")`` context) is preserved by
    every gather/concat/aggregate/update along the way — segment sums
    accumulate in float64 and cast back (see ``repro.nn.tensor.segment_sum``).

    Attributes:
        nodes: ``[total_nodes, node_size]`` node features.
        edges: ``[total_edges, edge_size]`` edge features.
        globals_: ``[num_graphs, global_size]`` per-graph global features.
    """

    nodes: Tensor
    edges: Tensor
    globals_: Tensor


@dataclass(frozen=True)
class GraphTopology:
    """Static index arrays describing the packed batch connectivity."""

    senders: np.ndarray
    receivers: np.ndarray
    node_graph_ids: np.ndarray
    edge_graph_ids: np.ndarray
    num_graphs: int

    @property
    def num_nodes_known(self) -> int:
        return int(self.node_graph_ids.shape[0])


class EdgeBlock(Module):
    """Updates edge features from [edge, sender node, receiver node, global]."""

    def __init__(
        self,
        edge_size: int,
        node_size: int,
        global_size: int,
        hidden_sizes: Sequence[int],
        output_size: int,
        rng: np.random.Generator,
        use_layer_norm: bool = True,
        use_residual: bool = True,
    ) -> None:
        input_size = edge_size + 2 * node_size + global_size
        self.update_network = ResidualMLP(
            input_size, hidden_sizes, output_size, rng,
            use_layer_norm=use_layer_norm, use_residual=use_residual,
        )
        self.output_size = output_size

    def forward(self, state: GraphState, topology: GraphTopology) -> Tensor:
        sender_features = gather_rows(state.nodes, topology.senders)
        receiver_features = gather_rows(state.nodes, topology.receivers)
        global_per_edge = gather_rows(state.globals_, topology.edge_graph_ids)
        inputs = concatenate(
            [state.edges, sender_features, receiver_features, global_per_edge], axis=-1
        )
        return self.update_network(inputs)


def _aggregate(features: Tensor, segment_ids: np.ndarray, num_segments: int, how: str) -> Tensor:
    """Sum or mean segment aggregation (graph_nets' configurable reducer)."""
    if how == "sum":
        return segment_sum(features, segment_ids, num_segments)
    if how == "mean":
        return segment_mean(features, segment_ids, num_segments)
    raise ValueError(f"unknown aggregation {how!r}; expected 'sum' or 'mean'")


class NodeBlock(Module):
    """Updates node features from [aggregated incoming edges, node, global]."""

    def __init__(
        self,
        edge_size: int,
        node_size: int,
        global_size: int,
        hidden_sizes: Sequence[int],
        output_size: int,
        rng: np.random.Generator,
        use_layer_norm: bool = True,
        use_residual: bool = True,
        aggregate_sent_edges: bool = False,
        aggregation: str = "mean",
    ) -> None:
        num_edge_aggregations = 2 if aggregate_sent_edges else 1
        input_size = num_edge_aggregations * edge_size + node_size + global_size
        self.update_network = ResidualMLP(
            input_size, hidden_sizes, output_size, rng,
            use_layer_norm=use_layer_norm, use_residual=use_residual,
        )
        self.aggregate_sent_edges = aggregate_sent_edges
        self.aggregation = aggregation
        self.output_size = output_size

    def forward(self, state: GraphState, topology: GraphTopology, updated_edges: Tensor) -> Tensor:
        num_nodes = state.nodes.shape[0]
        received = _aggregate(updated_edges, topology.receivers, num_nodes, self.aggregation)
        pieces = [received]
        if self.aggregate_sent_edges:
            pieces.append(
                _aggregate(updated_edges, topology.senders, num_nodes, self.aggregation)
            )
        global_per_node = gather_rows(state.globals_, topology.node_graph_ids)
        inputs = concatenate(pieces + [state.nodes, global_per_node], axis=-1)
        return self.update_network(inputs)


class GlobalBlock(Module):
    """Updates the per-graph global feature from aggregated edges and nodes."""

    def __init__(
        self,
        edge_size: int,
        node_size: int,
        global_size: int,
        hidden_sizes: Sequence[int],
        output_size: int,
        rng: np.random.Generator,
        use_layer_norm: bool = True,
        use_residual: bool = True,
        aggregation: str = "mean",
    ) -> None:
        input_size = edge_size + node_size + global_size
        self.update_network = ResidualMLP(
            input_size, hidden_sizes, output_size, rng,
            use_layer_norm=use_layer_norm, use_residual=use_residual,
        )
        self.aggregation = aggregation
        self.output_size = output_size

    def forward(
        self,
        state: GraphState,
        topology: GraphTopology,
        updated_edges: Tensor,
        updated_nodes: Tensor,
    ) -> Tensor:
        aggregated_edges = _aggregate(
            updated_edges, topology.edge_graph_ids, topology.num_graphs, self.aggregation
        )
        aggregated_nodes = _aggregate(
            updated_nodes, topology.node_graph_ids, topology.num_graphs, self.aggregation
        )
        inputs = concatenate([aggregated_edges, aggregated_nodes, state.globals_], axis=-1)
        return self.update_network(inputs)


class FullGNBlock(Module):
    """One full GN block: edge update → node update → global update."""

    def __init__(
        self,
        edge_size: int,
        node_size: int,
        global_size: int,
        hidden_sizes: Sequence[int],
        rng: np.random.Generator,
        use_layer_norm: bool = True,
        use_residual: bool = True,
        aggregation: str = "mean",
    ) -> None:
        self.edge_block = EdgeBlock(
            edge_size, node_size, global_size, hidden_sizes, edge_size, rng,
            use_layer_norm=use_layer_norm, use_residual=use_residual,
        )
        self.node_block = NodeBlock(
            edge_size, node_size, global_size, hidden_sizes, node_size, rng,
            use_layer_norm=use_layer_norm, use_residual=use_residual,
            aggregation=aggregation,
        )
        self.global_block = GlobalBlock(
            edge_size, node_size, global_size, hidden_sizes, global_size, rng,
            use_layer_norm=use_layer_norm, use_residual=use_residual,
            aggregation=aggregation,
        )

    def forward(self, state: GraphState, topology: GraphTopology) -> GraphState:
        updated_edges = self.edge_block(state, topology)
        updated_nodes = self.node_block(state, topology, updated_edges)
        updated_globals = self.global_block(state, topology, updated_edges, updated_nodes)
        return GraphState(nodes=updated_nodes, edges=updated_edges, globals_=updated_globals)


class GraphNetwork(Module):
    """Runs a full GN block for several message-passing iterations.

    The paper's default sweeps the number of iterations between 1 and 12,
    with 8 iterations giving the lowest test error (Table 7).  Weights are
    shared across iterations (the same GN block is applied repeatedly),
    matching the recurrent encode-process-decode structure of Graph Nets.

    Args:
        edge_size / node_size / global_size: Latent feature sizes.
        hidden_sizes: Hidden layer sizes of every update MLP.
        num_message_passing_iterations: How many times the block is applied.
        rng: Random generator for initialisation.
        use_layer_norm / use_residual: Ablation switches.
        share_weights: Apply the same block each iteration (default) or use
            independent blocks per iteration.
    """

    def __init__(
        self,
        edge_size: int,
        node_size: int,
        global_size: int,
        hidden_sizes: Sequence[int],
        num_message_passing_iterations: int,
        rng: np.random.Generator,
        use_layer_norm: bool = True,
        use_residual: bool = True,
        share_weights: bool = True,
        aggregation: str = "mean",
    ) -> None:
        if num_message_passing_iterations < 1:
            raise ValueError("at least one message passing iteration is required")
        self.num_message_passing_iterations = int(num_message_passing_iterations)
        self.share_weights = bool(share_weights)
        num_blocks = 1 if share_weights else self.num_message_passing_iterations
        self.blocks = [
            FullGNBlock(
                edge_size, node_size, global_size, hidden_sizes, rng,
                use_layer_norm=use_layer_norm, use_residual=use_residual,
                aggregation=aggregation,
            )
            for _ in range(num_blocks)
        ]

    def forward(self, state: GraphState, topology: GraphTopology) -> GraphState:
        current = state
        for iteration in range(self.num_message_passing_iterations):
            block = self.blocks[0] if self.share_weights else self.blocks[iteration]
            current = block(current, topology)
        return current
