"""GRANITE graph encoding of basic blocks (Section 3.1 of the paper)."""

from repro.graph.builder import GraphBuilder, GraphBuilderConfig, build_block_graph
from repro.graph.graph import BlockGraph, GraphEdge, GraphNode, GraphsTuple, pack_graphs
from repro.graph.types import (
    EDGE_TYPE_INDEX,
    NODE_TYPE_INDEX,
    EdgeType,
    INSTRUCTION_NODE_TYPES,
    NodeType,
    SpecialToken,
    VALUE_NODE_TYPES,
)
from repro.graph.vocabulary import Vocabulary, build_default_vocabulary

__all__ = [
    "GraphBuilder",
    "GraphBuilderConfig",
    "build_block_graph",
    "BlockGraph",
    "GraphEdge",
    "GraphNode",
    "GraphsTuple",
    "pack_graphs",
    "EDGE_TYPE_INDEX",
    "NODE_TYPE_INDEX",
    "EdgeType",
    "INSTRUCTION_NODE_TYPES",
    "NodeType",
    "SpecialToken",
    "VALUE_NODE_TYPES",
    "Vocabulary",
    "build_default_vocabulary",
]
