"""Construction of the GRANITE graph from a basic block.

This module implements Section 3.1 of the paper: every instruction becomes a
mnemonic node (plus one node per prefix), every operand becomes a value node
(register, immediate, floating-point immediate, memory value, or address
computation), and edges record structural order, data dependencies, and the
structure of address computations.

The important encoding rules, all reproduced here:

* A value node represents *a value in a storage location*, not the location
  itself.  Each time an instruction writes a register, a fresh value node for
  that register is created; later readers connect to the most recent value
  node of the register family (data dependencies follow register aliasing,
  e.g. ``EAX`` reads the value written to ``RAX``).
* Values read but never written inside the block get a value node with no
  incoming edge (live-in values).
* A memory load and a memory store use *distinct* memory value nodes even
  within one instruction, because the value read may differ from the value
  written (Figure 1).
* Every memory operand contributes an address computation node whose inputs
  are connected with the dedicated ``ADDRESS_*`` edge types.
* Implicit operands (EFLAGS and implicitly read/written registers such as
  ``RAX`` for ``MUL``) are modelled exactly like explicit register operands,
  which is how ``ADD ... → EFLAGS`` appears in Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.graph.graph import BlockGraph
from repro.graph.types import EdgeType, NodeType, SpecialToken
from repro.isa.basic_block import BasicBlock
from repro.isa.instructions import Instruction
from repro.isa.operands import MemoryReference, Operand, OperandKind
from repro.isa.registers import canonical_register
from repro.isa.semantics import OperandAction, semantics_for

__all__ = ["GraphBuilder", "build_block_graph"]


@dataclass
class GraphBuilderConfig:
    """Options controlling graph construction (used by the edge ablation).

    Attributes:
        include_structural_edges: Emit STRUCTURAL_DEPENDENCY edges between
            consecutive instructions.
        include_data_edges: Emit INPUT_OPERAND / OUTPUT_OPERAND edges (the
            data-dependency structure).  Disabling this reduces the graph to
            a purely sequential encoding, the ablation in
            ``benchmarks/test_ablation_edges.py``.
        include_address_edges: Emit the ADDRESS_* edges and address
            computation nodes.
        include_implicit_operands: Model implicit register / EFLAGS operands.
    """

    include_structural_edges: bool = True
    include_data_edges: bool = True
    include_address_edges: bool = True
    include_implicit_operands: bool = True


class GraphBuilder:
    """Builds :class:`BlockGraph` objects from basic blocks."""

    def __init__(self, config: Optional[GraphBuilderConfig] = None) -> None:
        self.config = config or GraphBuilderConfig()

    # ------------------------------------------------------------------ #
    # Public API.
    # ------------------------------------------------------------------ #
    def build(self, block: BasicBlock) -> BlockGraph:
        """Builds the GRANITE graph of ``block``."""
        graph = BlockGraph(identifier=block.identifier)
        #: Most recent value node index for every canonical register family.
        current_value: Dict[str, int] = {}
        previous_mnemonic_node: Optional[int] = None

        for instruction_index, instruction in enumerate(block.instructions):
            mnemonic_node = graph.add_node(
                instruction.mnemonic, NodeType.MNEMONIC, instruction_index
            )
            graph.instruction_node_indices.append(mnemonic_node)

            for prefix in instruction.prefixes:
                prefix_node = graph.add_node(prefix, NodeType.PREFIX, instruction_index)
                graph.add_edge(prefix_node, mnemonic_node, EdgeType.PREFIX)

            if (
                self.config.include_structural_edges
                and previous_mnemonic_node is not None
            ):
                graph.add_edge(
                    previous_mnemonic_node, mnemonic_node, EdgeType.STRUCTURAL_DEPENDENCY
                )
            previous_mnemonic_node = mnemonic_node

            self._add_operand_nodes(
                graph, instruction, instruction_index, mnemonic_node, current_value
            )

        return graph

    # ------------------------------------------------------------------ #
    # Operand handling.
    # ------------------------------------------------------------------ #
    def _register_value_node(
        self,
        graph: BlockGraph,
        register_name: str,
        current_value: Dict[str, int],
        instruction_index: int,
    ) -> int:
        """Returns the node carrying the current value of a register family,
        creating a live-in node when the register has not been written yet."""
        family = canonical_register(register_name)
        node_index = current_value.get(family)
        if node_index is None:
            node_index = graph.add_node(register_name.upper(), NodeType.REGISTER, -1)
            current_value[family] = node_index
        return node_index

    def _add_address_computation(
        self,
        graph: BlockGraph,
        memory: MemoryReference,
        current_value: Dict[str, int],
        mnemonic_node: int,
        instruction_index: int,
    ) -> None:
        """Adds the address computation node for a memory operand and
        connects it as an input of the instruction."""
        address_node = graph.add_node(
            SpecialToken.ADDRESS_COMPUTATION.value,
            NodeType.ADDRESS_COMPUTATION,
            instruction_index,
        )
        if self.config.include_address_edges:
            if memory.base is not None:
                base_node = self._register_value_node(
                    graph, memory.base, current_value, instruction_index
                )
                graph.add_edge(base_node, address_node, EdgeType.ADDRESS_BASE)
            if memory.index is not None:
                index_node = self._register_value_node(
                    graph, memory.index, current_value, instruction_index
                )
                graph.add_edge(index_node, address_node, EdgeType.ADDRESS_INDEX)
            if memory.segment is not None:
                segment_node = self._register_value_node(
                    graph, memory.segment, current_value, instruction_index
                )
                graph.add_edge(segment_node, address_node, EdgeType.ADDRESS_SEGMENT)
            if memory.displacement != 0:
                displacement_node = graph.add_node(
                    SpecialToken.IMMEDIATE.value, NodeType.IMMEDIATE, instruction_index
                )
                graph.add_edge(
                    displacement_node, address_node, EdgeType.ADDRESS_DISPLACEMENT
                )
        if self.config.include_data_edges:
            graph.add_edge(address_node, mnemonic_node, EdgeType.INPUT_OPERAND)

    def _add_operand_nodes(
        self,
        graph: BlockGraph,
        instruction: Instruction,
        instruction_index: int,
        mnemonic_node: int,
        current_value: Dict[str, int],
    ) -> None:
        semantics = semantics_for(instruction)

        # Explicit operands, in Intel order.
        for position, operand in enumerate(instruction.operands):
            action = semantics.action_for_operand(position)
            if operand.kind is OperandKind.REGISTER:
                self._add_register_operand(
                    graph,
                    operand.register,
                    action,
                    current_value,
                    mnemonic_node,
                    instruction_index,
                )
            elif operand.kind is OperandKind.IMMEDIATE:
                if self.config.include_data_edges:
                    immediate_node = graph.add_node(
                        SpecialToken.IMMEDIATE.value, NodeType.IMMEDIATE, instruction_index
                    )
                    graph.add_edge(immediate_node, mnemonic_node, EdgeType.INPUT_OPERAND)
            elif operand.kind is OperandKind.FP_IMMEDIATE:
                if self.config.include_data_edges:
                    fp_node = graph.add_node(
                        SpecialToken.FP_IMMEDIATE.value,
                        NodeType.FP_IMMEDIATE,
                        instruction_index,
                    )
                    graph.add_edge(fp_node, mnemonic_node, EdgeType.INPUT_OPERAND)
            elif operand.kind is OperandKind.MEMORY:
                self._add_memory_operand(
                    graph,
                    operand.memory,
                    action,
                    current_value,
                    mnemonic_node,
                    instruction_index,
                )

        # Implicit operands: registers and EFLAGS.
        if self.config.include_implicit_operands and self.config.include_data_edges:
            for register_name in sorted(semantics.implicit_reads):
                self._add_register_operand(
                    graph, register_name, OperandAction.READ, current_value,
                    mnemonic_node, instruction_index,
                )
            if semantics.reads_flags:
                self._add_register_operand(
                    graph, "EFLAGS", OperandAction.READ, current_value,
                    mnemonic_node, instruction_index,
                )
            for register_name in sorted(semantics.implicit_writes):
                self._add_register_operand(
                    graph, register_name, OperandAction.WRITE, current_value,
                    mnemonic_node, instruction_index,
                )
            if semantics.writes_flags:
                self._add_register_operand(
                    graph, "EFLAGS", OperandAction.WRITE, current_value,
                    mnemonic_node, instruction_index,
                )

    def _add_register_operand(
        self,
        graph: BlockGraph,
        register_name: str,
        action: OperandAction,
        current_value: Dict[str, int],
        mnemonic_node: int,
        instruction_index: int,
    ) -> None:
        if not self.config.include_data_edges:
            return
        family = canonical_register(register_name)
        if action in (OperandAction.READ, OperandAction.READ_WRITE):
            value_node = self._register_value_node(
                graph, register_name, current_value, instruction_index
            )
            graph.add_edge(value_node, mnemonic_node, EdgeType.INPUT_OPERAND)
        if action in (OperandAction.WRITE, OperandAction.READ_WRITE):
            # Writing creates a *new* value node for the register family.
            new_value_node = graph.add_node(
                register_name.upper(), NodeType.REGISTER, instruction_index
            )
            graph.add_edge(mnemonic_node, new_value_node, EdgeType.OUTPUT_OPERAND)
            current_value[family] = new_value_node

    def _add_memory_operand(
        self,
        graph: BlockGraph,
        memory: MemoryReference,
        action: OperandAction,
        current_value: Dict[str, int],
        mnemonic_node: int,
        instruction_index: int,
    ) -> None:
        self._add_address_computation(
            graph, memory, current_value, mnemonic_node, instruction_index
        )
        if not self.config.include_data_edges:
            return
        if action in (OperandAction.READ, OperandAction.READ_WRITE):
            load_node = graph.add_node(
                SpecialToken.MEMORY_VALUE.value, NodeType.MEMORY_VALUE, -1
            )
            graph.add_edge(load_node, mnemonic_node, EdgeType.INPUT_OPERAND)
        if action in (OperandAction.WRITE, OperandAction.READ_WRITE):
            store_node = graph.add_node(
                SpecialToken.MEMORY_VALUE.value, NodeType.MEMORY_VALUE, instruction_index
            )
            graph.add_edge(mnemonic_node, store_node, EdgeType.OUTPUT_OPERAND)


def build_block_graph(
    block: BasicBlock, config: Optional[GraphBuilderConfig] = None
) -> BlockGraph:
    """Convenience wrapper: builds the GRANITE graph of one basic block."""
    return GraphBuilder(config).build(block)
