"""Graph data structures.

Two representations are used throughout the library:

* :class:`BlockGraph` — the symbolic graph of a single basic block, produced
  by :class:`repro.graph.builder.GraphBuilder`.  Nodes carry their assembly
  token and :class:`~repro.graph.types.NodeType`; edges carry their
  :class:`~repro.graph.types.EdgeType`.
* :class:`GraphsTuple` — the numeric, batched representation consumed by the
  graph neural network, closely following the ``GraphsTuple`` of DeepMind's
  Graph Nets library: all graphs in a batch are packed into one large
  disconnected graph, with index arrays recording which node/edge belongs to
  which original graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.types import EDGE_TYPE_INDEX, EdgeType, NodeType
from repro.graph.vocabulary import Vocabulary

__all__ = ["GraphNode", "GraphEdge", "BlockGraph", "GraphsTuple", "pack_graphs"]


@dataclass(frozen=True)
class GraphNode:
    """A node of the GRANITE graph.

    Attributes:
        token: The assembly-language token associated with the node.
        node_type: The :class:`NodeType` of the node.
        instruction_index: Index of the instruction this node belongs to
            (for mnemonic/prefix nodes), or the index of the instruction
            that created the value node; -1 for value nodes that exist
            before the block (live-in values).
    """

    token: str
    node_type: NodeType
    instruction_index: int = -1


@dataclass(frozen=True)
class GraphEdge:
    """A directed, typed edge between two nodes (by node index)."""

    sender: int
    receiver: int
    edge_type: EdgeType


@dataclass
class BlockGraph:
    """The GRANITE dependency graph of one basic block."""

    nodes: List[GraphNode] = field(default_factory=list)
    edges: List[GraphEdge] = field(default_factory=list)
    #: Indices of the instruction mnemonic nodes, in program order.  The
    #: decoder network reads the final embeddings of exactly these nodes.
    instruction_node_indices: List[int] = field(default_factory=list)
    #: Optional identifier of the source basic block.
    identifier: Optional[str] = None

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def num_instructions(self) -> int:
        return len(self.instruction_node_indices)

    def add_node(self, token: str, node_type: NodeType, instruction_index: int = -1) -> int:
        """Appends a node and returns its index."""
        self.nodes.append(
            GraphNode(token=token, node_type=node_type, instruction_index=instruction_index)
        )
        return len(self.nodes) - 1

    def add_edge(self, sender: int, receiver: int, edge_type: EdgeType) -> None:
        """Appends a directed edge between two existing node indices."""
        if not (0 <= sender < len(self.nodes)) or not (0 <= receiver < len(self.nodes)):
            raise IndexError(
                f"edge ({sender} -> {receiver}) references a node outside "
                f"[0, {len(self.nodes)})"
            )
        self.edges.append(GraphEdge(sender=sender, receiver=receiver, edge_type=edge_type))

    def tokens(self) -> List[str]:
        """Returns the token of every node, in node order."""
        return [node.token for node in self.nodes]

    def edge_type_histogram(self) -> np.ndarray:
        """Counts of each edge type, indexed by :data:`EDGE_TYPE_INDEX`."""
        histogram = np.zeros(len(EdgeType), dtype=np.float64)
        for edge in self.edges:
            histogram[EDGE_TYPE_INDEX[edge.edge_type]] += 1.0
        return histogram

    def to_networkx(self):
        """Converts to a ``networkx.MultiDiGraph`` for inspection/plotting."""
        import networkx as nx

        graph = nx.MultiDiGraph()
        for index, node in enumerate(self.nodes):
            graph.add_node(index, token=node.token, node_type=node.node_type.value)
        for edge in self.edges:
            graph.add_edge(edge.sender, edge.receiver, edge_type=edge.edge_type.value)
        return graph


@dataclass
class GraphsTuple:
    """A batch of graphs packed into one disconnected graph.

    Attributes:
        node_token_ids: ``[total_nodes]`` int array of vocabulary ids.
        node_graph_ids: ``[total_nodes]`` int array mapping nodes to graphs.
        edge_type_ids: ``[total_edges]`` int array of edge-type ids.
        senders: ``[total_edges]`` int array of sending node indices
            (into the packed node arrays).
        receivers: ``[total_edges]`` int array of receiving node indices.
        edge_graph_ids: ``[total_edges]`` int array mapping edges to graphs.
        globals_features: ``[num_graphs, global_size]`` float array with the
            token / edge-type frequency features described in Section 3.2.
        instruction_node_indices: ``[total_instructions]`` int array of the
            packed indices of instruction mnemonic nodes.
        instruction_graph_ids: ``[total_instructions]`` int array mapping
            instructions to graphs.
        num_graphs: Number of graphs in the batch.
    """

    node_token_ids: np.ndarray
    node_graph_ids: np.ndarray
    edge_type_ids: np.ndarray
    senders: np.ndarray
    receivers: np.ndarray
    edge_graph_ids: np.ndarray
    globals_features: np.ndarray
    instruction_node_indices: np.ndarray
    instruction_graph_ids: np.ndarray
    num_graphs: int

    @property
    def num_nodes(self) -> int:
        return int(self.node_token_ids.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_type_ids.shape[0])

    @property
    def num_instructions(self) -> int:
        return int(self.instruction_node_indices.shape[0])

    def validate(self) -> None:
        """Checks internal index consistency; raises ValueError on problems."""
        if self.num_edges:
            if self.senders.min() < 0 or self.senders.max() >= self.num_nodes:
                raise ValueError("sender index out of range")
            if self.receivers.min() < 0 or self.receivers.max() >= self.num_nodes:
                raise ValueError("receiver index out of range")
            mismatched = self.node_graph_ids[self.senders] != self.edge_graph_ids
            if np.any(mismatched):
                raise ValueError("edge assigned to a different graph than its sender")
        if self.num_instructions:
            if (
                self.instruction_node_indices.min() < 0
                or self.instruction_node_indices.max() >= self.num_nodes
            ):
                raise ValueError("instruction node index out of range")
        if self.globals_features.shape[0] != self.num_graphs:
            raise ValueError("globals_features row count must equal num_graphs")


def _global_features(
    graph: BlockGraph, vocabulary: Vocabulary, token_ids: np.ndarray
) -> np.ndarray:
    """Builds the per-graph global feature vector.

    The paper initialises the global feature with "the relative frequencies
    of the tokens and edge types used in the graph"; its size is the number
    of token types plus the number of edge types.
    """
    token_histogram = np.bincount(token_ids, minlength=len(vocabulary)).astype(np.float64)
    if token_histogram.sum() > 0:
        token_histogram /= token_histogram.sum()
    edge_histogram = graph.edge_type_histogram()
    if edge_histogram.sum() > 0:
        edge_histogram /= edge_histogram.sum()
    return np.concatenate([token_histogram, edge_histogram])


def pack_graphs(graphs: Sequence[BlockGraph], vocabulary: Vocabulary) -> GraphsTuple:
    """Packs a list of :class:`BlockGraph` into one :class:`GraphsTuple`.

    Args:
        graphs: The graphs to batch; must be non-empty.
        vocabulary: Token vocabulary used to encode node tokens.

    Returns:
        The packed batch, ready to be fed to the graph neural network.
    """
    if not graphs:
        raise ValueError("cannot pack an empty list of graphs")

    node_token_ids: List[int] = []
    node_graph_ids: List[int] = []
    edge_type_ids: List[int] = []
    senders: List[int] = []
    receivers: List[int] = []
    edge_graph_ids: List[int] = []
    globals_rows: List[np.ndarray] = []
    instruction_node_indices: List[int] = []
    instruction_graph_ids: List[int] = []

    node_offset = 0
    for graph_index, graph in enumerate(graphs):
        token_ids = np.array(vocabulary.encode(graph.tokens()), dtype=np.int64)
        node_token_ids.extend(token_ids.tolist())
        node_graph_ids.extend([graph_index] * graph.num_nodes)
        for edge in graph.edges:
            edge_type_ids.append(EDGE_TYPE_INDEX[edge.edge_type])
            senders.append(edge.sender + node_offset)
            receivers.append(edge.receiver + node_offset)
            edge_graph_ids.append(graph_index)
        globals_rows.append(_global_features(graph, vocabulary, token_ids))
        for node_index in graph.instruction_node_indices:
            instruction_node_indices.append(node_index + node_offset)
            instruction_graph_ids.append(graph_index)
        node_offset += graph.num_nodes

    packed = GraphsTuple(
        node_token_ids=np.array(node_token_ids, dtype=np.int64),
        node_graph_ids=np.array(node_graph_ids, dtype=np.int64),
        edge_type_ids=np.array(edge_type_ids, dtype=np.int64),
        senders=np.array(senders, dtype=np.int64),
        receivers=np.array(receivers, dtype=np.int64),
        edge_graph_ids=np.array(edge_graph_ids, dtype=np.int64),
        globals_features=np.stack(globals_rows, axis=0),
        instruction_node_indices=np.array(instruction_node_indices, dtype=np.int64),
        instruction_graph_ids=np.array(instruction_graph_ids, dtype=np.int64),
        num_graphs=len(graphs),
    )
    packed.validate()
    return packed
