"""Node and edge type definitions of the GRANITE graph encoding.

Tables 2 and 3 of the paper define the vocabulary of the graph: two families
of nodes (instruction nodes and value nodes) and seven directed edge types.
This module mirrors those tables exactly and provides the special tokens
shared by all immediate values, all memory values and all address
computations.
"""

from __future__ import annotations

import enum
from typing import Tuple

__all__ = [
    "NodeType",
    "EdgeType",
    "SpecialToken",
    "INSTRUCTION_NODE_TYPES",
    "VALUE_NODE_TYPES",
]


class NodeType(enum.Enum):
    """Node types of the GRANITE graph (Table 2)."""

    #: The mnemonic of an instruction (e.g. ``ADD``).
    MNEMONIC = "mnemonic"
    #: An instruction prefix (e.g. ``LOCK``).
    PREFIX = "prefix"
    #: A value stored in a register; the token is the register name.
    REGISTER = "register"
    #: A floating-point immediate value (shared special token).
    FP_IMMEDIATE = "fp_immediate"
    #: An integer immediate value (shared special token).
    IMMEDIATE = "immediate"
    #: The result of an address computation (shared special token).
    ADDRESS_COMPUTATION = "address_computation"
    #: A value stored in memory (shared special token).
    MEMORY_VALUE = "memory_value"


class EdgeType(enum.Enum):
    """Edge types of the GRANITE graph (Table 3).  All edges are directed."""

    #: From an instruction mnemonic node to the mnemonic node of the
    #: following instruction.
    STRUCTURAL_DEPENDENCY = "structural_dependency"
    #: From a value node to the instruction mnemonic node consuming it.
    INPUT_OPERAND = "input_operand"
    #: From an instruction mnemonic node to the register or memory value
    #: node it produces.
    OUTPUT_OPERAND = "output_operand"
    #: From a register node to an address computation node (base register).
    ADDRESS_BASE = "address_base"
    #: From a register node to an address computation node (index register).
    ADDRESS_INDEX = "address_index"
    #: From a register node to an address computation node (segment register).
    ADDRESS_SEGMENT = "address_segment"
    #: From an immediate value node to an address computation node.
    ADDRESS_DISPLACEMENT = "address_displacement"
    #: From an instruction prefix node to its instruction mnemonic node.
    #: (The paper connects prefix nodes to the mnemonic node by an edge;
    #: the edge type is not named in Table 3, so it gets its own type here.)
    PREFIX = "prefix"


class SpecialToken(enum.Enum):
    """Tokens shared by whole classes of value nodes (Table 2)."""

    IMMEDIATE = "<IMM>"
    FP_IMMEDIATE = "<FPIMM>"
    ADDRESS_COMPUTATION = "<ADDR>"
    MEMORY_VALUE = "<MEM>"
    UNKNOWN = "<UNK>"


#: Node types that represent instructions (as opposed to values).
INSTRUCTION_NODE_TYPES: Tuple[NodeType, ...] = (NodeType.MNEMONIC, NodeType.PREFIX)

#: Node types that represent values passed between instructions.
VALUE_NODE_TYPES: Tuple[NodeType, ...] = (
    NodeType.REGISTER,
    NodeType.FP_IMMEDIATE,
    NodeType.IMMEDIATE,
    NodeType.ADDRESS_COMPUTATION,
    NodeType.MEMORY_VALUE,
)

#: Stable integer ids for edge types, used for edge embeddings and for the
#: edge-type histogram in the global feature vector.
EDGE_TYPE_INDEX = {edge_type: index for index, edge_type in enumerate(EdgeType)}
NODE_TYPE_INDEX = {node_type: index for index, node_type in enumerate(NodeType)}
