"""Token vocabulary for graph nodes.

Every graph node carries an assembly-language token (Table 2): the mnemonic
for instruction nodes, the register name for register value nodes, and a
shared special token for immediates, floating point immediates, memory
values and address computations.  The vocabulary maps those tokens to dense
integer ids used to index the learned node-token embedding table.

A canonical vocabulary covering every mnemonic known to
:mod:`repro.isa.semantics`, every register name, every prefix and the special
tokens is built by :func:`build_default_vocabulary`; unknown tokens map to a
dedicated ``<UNK>`` id so models never fail on unseen instructions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.isa.instructions import KNOWN_PREFIXES
from repro.isa.registers import REGISTER_FILE
from repro.isa.semantics import known_mnemonics
from repro.graph.types import SpecialToken

__all__ = ["Vocabulary", "build_default_vocabulary"]


@dataclass(frozen=True)
class Vocabulary:
    """An immutable token-to-id mapping.

    Attributes:
        tokens: Token strings in id order; ``tokens[id]`` is the token.
    """

    tokens: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.tokens)) != len(self.tokens):
            raise ValueError("vocabulary contains duplicate tokens")
        object.__setattr__(
            self, "_index", {token: index for index, token in enumerate(self.tokens)}
        )

    def __len__(self) -> int:
        return len(self.tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._index

    @property
    def unknown_id(self) -> int:
        """Id of the ``<UNK>`` token."""
        return self._index[SpecialToken.UNKNOWN.value]

    def id_of(self, token: str) -> int:
        """Returns the id of ``token``, falling back to the unknown id."""
        return self._index.get(token, self.unknown_id)

    def token_of(self, token_id: int) -> str:
        """Returns the token string for an id."""
        return self.tokens[token_id]

    def encode(self, tokens: Sequence[str]) -> List[int]:
        """Encodes a sequence of token strings to ids."""
        return [self.id_of(token) for token in tokens]

    def to_json(self) -> str:
        """Serialises the vocabulary to a JSON string."""
        return json.dumps({"tokens": list(self.tokens)})

    @staticmethod
    def from_json(text: str) -> "Vocabulary":
        """Restores a vocabulary serialised by :meth:`to_json`."""
        payload = json.loads(text)
        return Vocabulary(tokens=tuple(payload["tokens"]))

    @staticmethod
    def from_tokens(tokens: Iterable[str]) -> "Vocabulary":
        """Builds a vocabulary from arbitrary tokens, adding special tokens."""
        ordered: List[str] = [special.value for special in SpecialToken]
        seen = set(ordered)
        for token in tokens:
            if token not in seen:
                ordered.append(token)
                seen.add(token)
        return Vocabulary(tokens=tuple(ordered))


def build_default_vocabulary(extra_tokens: Optional[Sequence[str]] = None) -> Vocabulary:
    """Builds the canonical vocabulary used across all experiments.

    The vocabulary contains, in a deterministic order: the special tokens,
    every known mnemonic, every instruction prefix, and every register name
    known to the register file.  ``extra_tokens`` can add dataset specific
    tokens (e.g. mnemonics that only appear in a particular trace).
    """
    tokens: List[str] = []
    tokens.extend(sorted(known_mnemonics()))
    tokens.extend(KNOWN_PREFIXES)
    tokens.extend(sorted(REGISTER_FILE.names()))
    if extra_tokens:
        tokens.extend(extra_tokens)
    return Vocabulary.from_tokens(tokens)
