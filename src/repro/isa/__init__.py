"""x86-64 instruction set substrate.

This subpackage provides the assembly-language data model that the rest of
the library builds on: registers with aliasing families, operands (register,
immediate, memory), instructions, an Intel-syntax parser, architectural
read/write semantics, and the :class:`BasicBlock` container with def-use
dependency analysis.
"""

from repro.isa.basic_block import (
    BasicBlock,
    DataDependency,
    InstructionAccesses,
    instruction_accesses,
)
from repro.isa.instructions import KNOWN_PREFIXES, Instruction
from repro.isa.operands import MemoryReference, Operand, OperandKind
from repro.isa.parser import AssemblyParseError, parse_block_text, parse_instruction
from repro.isa.registers import (
    REGISTER_FILE,
    Register,
    RegisterClass,
    RegisterFile,
    canonical_register,
    is_register_name,
    registers_alias,
)
from repro.isa.semantics import (
    CONDITION_CODES,
    InstructionCategory,
    InstructionSemantics,
    OperandAction,
    known_mnemonics,
    semantics_for,
)

__all__ = [
    "BasicBlock",
    "DataDependency",
    "InstructionAccesses",
    "instruction_accesses",
    "Instruction",
    "KNOWN_PREFIXES",
    "MemoryReference",
    "Operand",
    "OperandKind",
    "AssemblyParseError",
    "parse_block_text",
    "parse_instruction",
    "REGISTER_FILE",
    "Register",
    "RegisterClass",
    "RegisterFile",
    "canonical_register",
    "is_register_name",
    "registers_alias",
    "CONDITION_CODES",
    "InstructionCategory",
    "InstructionSemantics",
    "OperandAction",
    "known_mnemonics",
    "semantics_for",
]
