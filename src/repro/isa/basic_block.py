"""Basic block container and dependency analysis.

A basic block is a straight-line sequence of instructions with a single entry
and a single exit.  Besides holding the instructions, this module implements
the def-use analysis that the GRANITE graph encoding and the analytical
throughput oracle both rely on: for every instruction we compute the set of
register families it reads and writes (including implicit operands and the
flags register), and from those sets the intra-block data dependency edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.isa.instructions import Instruction, render_instructions
from repro.isa.operands import Operand, OperandKind
from repro.isa.parser import parse_block_text
from repro.isa.registers import canonical_register
from repro.isa.semantics import OperandAction, semantics_for

__all__ = ["InstructionAccesses", "BasicBlock", "DataDependency"]

#: Pseudo register family used to model memory carried dependencies.  The
#: oracle and the graph builder both treat memory conservatively: every store
#: may feed every later load.
MEMORY_LOCATION = "<MEM>"
FLAGS_FAMILY = "EFLAGS"


@dataclass(frozen=True)
class InstructionAccesses:
    """Register families and memory locations accessed by an instruction.

    Attributes:
        reads: Canonical register families read (including implicit ones and
            address registers of memory operands), plus ``"<MEM>"`` when the
            instruction loads from memory.
        writes: Canonical register families written, plus ``"<MEM>"`` when
            the instruction stores to memory.
    """

    reads: FrozenSet[str]
    writes: FrozenSet[str]


@dataclass(frozen=True)
class DataDependency:
    """A read-after-write dependency between two instructions in a block.

    Attributes:
        producer: Index of the producing instruction.
        consumer: Index of the consuming instruction.
        resource: Canonical register family (or ``"<MEM>"`` / ``"EFLAGS"``)
            that carries the dependency.
    """

    producer: int
    consumer: int
    resource: str


def instruction_accesses(instruction: Instruction) -> InstructionAccesses:
    """Computes the read and write sets of a single instruction."""
    semantics = semantics_for(instruction)
    reads: set[str] = set(semantics.implicit_reads)
    writes: set[str] = set(semantics.implicit_writes)
    if semantics.reads_flags:
        reads.add(FLAGS_FAMILY)
    if semantics.writes_flags:
        writes.add(FLAGS_FAMILY)

    for position, operand in enumerate(instruction.operands):
        action = semantics.action_for_operand(position)
        if operand.kind is OperandKind.REGISTER:
            family = canonical_register(operand.register)
            if action in (OperandAction.READ, OperandAction.READ_WRITE):
                reads.add(family)
            if action in (OperandAction.WRITE, OperandAction.READ_WRITE):
                writes.add(family)
        elif operand.kind is OperandKind.MEMORY:
            for register_name in operand.memory.address_registers:
                reads.add(register_name)
            if action in (OperandAction.READ, OperandAction.READ_WRITE):
                reads.add(MEMORY_LOCATION)
            if action in (OperandAction.WRITE, OperandAction.READ_WRITE):
                writes.add(MEMORY_LOCATION)
    return InstructionAccesses(reads=frozenset(reads), writes=frozenset(writes))


@dataclass
class BasicBlock:
    """A basic block: an ordered sequence of instructions.

    Attributes:
        instructions: The instructions of the block, in program order.
        identifier: Optional stable identifier (dataset row id, hex string…).
    """

    instructions: Tuple[Instruction, ...]
    identifier: Optional[str] = None
    _accesses: Optional[Tuple[InstructionAccesses, ...]] = field(
        default=None, repr=False, compare=False
    )
    _canonical_text: Optional[str] = field(default=None, repr=False, compare=False)

    def __init__(
        self,
        instructions: Sequence[Instruction],
        identifier: Optional[str] = None,
    ) -> None:
        self.instructions = tuple(instructions)
        self.identifier = identifier
        self._accesses = None
        self._canonical_text = None

    @staticmethod
    def from_text(text: str, identifier: Optional[str] = None) -> "BasicBlock":
        """Parses a multi-line Intel-syntax snippet into a basic block."""
        return BasicBlock(parse_block_text(text), identifier=identifier)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def render(self) -> str:
        """Renders the block as Intel-syntax assembly, one line per instruction."""
        return render_instructions(self.instructions)

    def canonical_text(self) -> str:
        """The rendered text, memoized.

        This is the cache key used by the models' encode caches and the
        serving layer; memoizing it keeps repeated predictions of the same
        block object from re-rendering the assembly every call.  The
        instruction tuple is immutable after construction, so the memo
        cannot go stale.
        """
        if self._canonical_text is None:
            self._canonical_text = self.render()
        return self._canonical_text

    @property
    def accesses(self) -> Tuple[InstructionAccesses, ...]:
        """Read/write sets of each instruction, computed lazily and cached."""
        if self._accesses is None:
            self._accesses = tuple(
                instruction_accesses(instruction) for instruction in self.instructions
            )
        return self._accesses

    def data_dependencies(self) -> List[DataDependency]:
        """Computes intra-block read-after-write dependencies.

        For every resource read by an instruction, the dependency points to
        the *most recent* earlier instruction that wrote that resource (the
        standard def-use chain construction).  Memory dependencies use the
        conservative single-location model.
        """
        last_writer: Dict[str, int] = {}
        dependencies: List[DataDependency] = []
        for index, access in enumerate(self.accesses):
            for resource in sorted(access.reads):
                producer = last_writer.get(resource)
                if producer is not None:
                    dependencies.append(
                        DataDependency(producer=producer, consumer=index, resource=resource)
                    )
            for resource in access.writes:
                last_writer[resource] = index
        return dependencies

    def critical_path_length(self, latency_of=None) -> float:
        """Length of the longest dependency chain through the block.

        Args:
            latency_of: Optional callable mapping an instruction to its
                latency in cycles.  Defaults to a unit latency per
                instruction, which is sufficient for structural analyses.

        Returns:
            The length of the critical path in (possibly fractional) cycles.
        """
        if not self.instructions:
            return 0.0
        if latency_of is None:
            latency_of = lambda instruction: 1.0  # noqa: E731 - tiny default
        finish_time = [0.0] * len(self.instructions)
        producers: Dict[int, List[int]] = {index: [] for index in range(len(self.instructions))}
        for dependency in self.data_dependencies():
            producers[dependency.consumer].append(dependency.producer)
        for index, instruction in enumerate(self.instructions):
            ready = 0.0
            for producer in producers[index]:
                ready = max(ready, finish_time[producer])
            finish_time[index] = ready + float(latency_of(instruction))
        return max(finish_time)

    def mnemonic_histogram(self) -> Dict[str, int]:
        """Counts occurrences of each mnemonic in the block."""
        histogram: Dict[str, int] = {}
        for instruction in self.instructions:
            histogram[instruction.mnemonic] = histogram.get(instruction.mnemonic, 0) + 1
        return histogram
