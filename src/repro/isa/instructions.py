"""Instruction and basic-block data model.

Instructions are immutable records of a mnemonic, optional prefixes and a
list of operands.  The *semantics* of an instruction (which operands it
reads/writes, whether it touches EFLAGS, its functional category) live in
:mod:`repro.isa.semantics`; latency and port usage for specific
microarchitectures live in :mod:`repro.uarch`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.isa.operands import Operand

__all__ = ["Instruction", "KNOWN_PREFIXES"]

#: Instruction prefixes that modify the behaviour of the instruction and are
#: represented by dedicated prefix nodes in the GRANITE graph.
KNOWN_PREFIXES: Tuple[str, ...] = ("LOCK", "REP", "REPE", "REPZ", "REPNE", "REPNZ")


@dataclass(frozen=True)
class Instruction:
    """A single x86-64 instruction.

    Attributes:
        mnemonic: Upper-case instruction mnemonic, e.g. ``"ADD"``.
        operands: Explicit operands in Intel order (destination first).
        prefixes: Instruction prefixes such as ``"LOCK"`` in source order.
    """

    mnemonic: str
    operands: Tuple[Operand, ...] = field(default_factory=tuple)
    prefixes: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "mnemonic", self.mnemonic.upper())
        object.__setattr__(self, "operands", tuple(self.operands))
        object.__setattr__(
            self, "prefixes", tuple(prefix.upper() for prefix in self.prefixes)
        )
        for prefix in self.prefixes:
            if prefix not in KNOWN_PREFIXES:
                raise ValueError(f"unknown instruction prefix: {prefix!r}")

    @staticmethod
    def create(
        mnemonic: str,
        operands: Sequence[Operand] = (),
        prefixes: Sequence[str] = (),
    ) -> "Instruction":
        """Convenience constructor accepting any operand/prefix sequences."""
        return Instruction(
            mnemonic=mnemonic, operands=tuple(operands), prefixes=tuple(prefixes)
        )

    @property
    def num_operands(self) -> int:
        return len(self.operands)

    @property
    def has_memory_operand(self) -> bool:
        return any(operand.is_memory for operand in self.operands)

    @property
    def memory_operands(self) -> List[Operand]:
        return [operand for operand in self.operands if operand.is_memory]

    @property
    def register_operands(self) -> List[Operand]:
        return [operand for operand in self.operands if operand.is_register]

    def render(self) -> str:
        """Renders the instruction in Intel syntax."""
        parts: List[str] = list(self.prefixes)
        parts.append(self.mnemonic)
        text = " ".join(parts)
        if self.operands:
            text += " " + ", ".join(operand.render() for operand in self.operands)
        return text

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.render()


def render_instructions(instructions: Iterable[Instruction]) -> str:
    """Renders a sequence of instructions, one per line, in Intel syntax."""
    return "\n".join(instruction.render() for instruction in instructions)
