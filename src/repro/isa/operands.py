"""Operand data model for x86-64 instructions.

An operand is either a register, an immediate value, a floating point
immediate, or a memory reference.  Memory references carry the full x86
addressing expression ``segment:[base + index * scale + displacement]`` which
the GRANITE graph encoding turns into an *address computation* node with
dedicated edge types for the base, index, segment and displacement inputs
(Table 3 of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.isa.registers import REGISTER_FILE, canonical_register

__all__ = [
    "OperandKind",
    "MemoryReference",
    "Operand",
]


class OperandKind(enum.Enum):
    """The kind of an instruction operand."""

    REGISTER = "register"
    IMMEDIATE = "immediate"
    FP_IMMEDIATE = "fp_immediate"
    MEMORY = "memory"


@dataclass(frozen=True)
class MemoryReference:
    """An x86 memory addressing expression.

    Attributes:
        base: Optional base register name.
        index: Optional index register name.
        scale: Scale applied to the index register (1, 2, 4 or 8).
        displacement: Constant displacement added to the address.
        segment: Optional segment override register name.
        width_bits: Access width in bits when known (0 when unknown).
    """

    base: Optional[str] = None
    index: Optional[str] = None
    scale: int = 1
    displacement: int = 0
    segment: Optional[str] = None
    width_bits: int = 0

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale {self.scale}; must be 1, 2, 4 or 8")
        for register_name in (self.base, self.index, self.segment):
            if register_name is not None and register_name.upper() not in REGISTER_FILE:
                raise ValueError(f"unknown register in memory reference: {register_name!r}")
        # Canonical form: an index register with scale 1 and no base is the
        # same addressing expression as a plain base register; normalising
        # here makes rendering/parsing round-trip exactly.
        if self.base is None and self.index is not None and self.scale == 1:
            object.__setattr__(self, "base", self.index)
            object.__setattr__(self, "index", None)

    @property
    def address_registers(self) -> tuple[str, ...]:
        """Canonical families of all registers participating in the address."""
        names = []
        for register_name in (self.base, self.index, self.segment):
            if register_name is not None:
                names.append(canonical_register(register_name))
        return tuple(names)

    def render(self) -> str:
        """Renders the memory reference in Intel syntax."""
        parts = []
        if self.base:
            parts.append(self.base.upper())
        if self.index:
            index_text = self.index.upper()
            if self.scale != 1:
                index_text = f"{index_text}*{self.scale}"
            parts.append(index_text)
        inner = " + ".join(parts)
        if self.displacement or not parts:
            magnitude = abs(self.displacement)
            text = f"{magnitude:#x}" if magnitude > 9 else str(magnitude)
            if not parts:
                inner = text if self.displacement >= 0 else f"-{text}"
            elif self.displacement >= 0:
                inner = f"{inner} + {text}"
            else:
                inner = f"{inner} - {text}"
        prefix = ""
        if self.width_bits:
            prefix = {
                8: "BYTE PTR ",
                16: "WORD PTR ",
                32: "DWORD PTR ",
                64: "QWORD PTR ",
                80: "TBYTE PTR ",
                128: "XMMWORD PTR ",
                256: "YMMWORD PTR ",
                512: "ZMMWORD PTR ",
            }.get(self.width_bits, "")
        segment_prefix = f"{self.segment.upper()}:" if self.segment else ""
        return f"{prefix}{segment_prefix}[{inner}]"


@dataclass(frozen=True)
class Operand:
    """A single instruction operand.

    Exactly one of :attr:`register`, :attr:`immediate`, :attr:`fp_immediate`
    or :attr:`memory` is populated, matching :attr:`kind`.
    """

    kind: OperandKind
    register: Optional[str] = None
    immediate: Optional[int] = None
    fp_immediate: Optional[float] = None
    memory: Optional[MemoryReference] = field(default=None)

    def __post_init__(self) -> None:
        populated = {
            OperandKind.REGISTER: self.register is not None,
            OperandKind.IMMEDIATE: self.immediate is not None,
            OperandKind.FP_IMMEDIATE: self.fp_immediate is not None,
            OperandKind.MEMORY: self.memory is not None,
        }
        if not populated[self.kind]:
            raise ValueError(f"operand of kind {self.kind} is missing its payload")
        if self.kind is OperandKind.REGISTER and self.register.upper() not in REGISTER_FILE:
            raise ValueError(f"unknown register operand: {self.register!r}")

    @staticmethod
    def from_register(name: str) -> "Operand":
        """Creates a register operand."""
        return Operand(kind=OperandKind.REGISTER, register=name.upper())

    @staticmethod
    def from_immediate(value: int) -> "Operand":
        """Creates an integer immediate operand."""
        return Operand(kind=OperandKind.IMMEDIATE, immediate=int(value))

    @staticmethod
    def from_fp_immediate(value: float) -> "Operand":
        """Creates a floating point immediate operand."""
        return Operand(kind=OperandKind.FP_IMMEDIATE, fp_immediate=float(value))

    @staticmethod
    def from_memory(memory: MemoryReference) -> "Operand":
        """Creates a memory operand."""
        return Operand(kind=OperandKind.MEMORY, memory=memory)

    @property
    def is_register(self) -> bool:
        return self.kind is OperandKind.REGISTER

    @property
    def is_memory(self) -> bool:
        return self.kind is OperandKind.MEMORY

    @property
    def is_immediate(self) -> bool:
        return self.kind in (OperandKind.IMMEDIATE, OperandKind.FP_IMMEDIATE)

    @property
    def register_family(self) -> Optional[str]:
        """Canonical family of the register operand, None for other kinds."""
        if self.register is None:
            return None
        return canonical_register(self.register)

    def render(self) -> str:
        """Renders the operand in Intel syntax."""
        if self.kind is OperandKind.REGISTER:
            return self.register.upper()
        if self.kind is OperandKind.IMMEDIATE:
            value = self.immediate
            return f"{value:#x}" if abs(value) > 9 else str(value)
        if self.kind is OperandKind.FP_IMMEDIATE:
            return repr(self.fp_immediate)
        return self.memory.render()
