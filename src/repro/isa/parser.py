"""Parser for Intel-syntax x86-64 assembly.

The datasets used by the GRANITE paper (the Ithemal dataset and BHive) store
basic blocks as short snippets of Intel-syntax assembly, one instruction per
line, exactly like the example block in Table 1 of the paper::

    CMP R15D, 1
    SBB EAX, EAX
    AND EAX, 0x8
    MOV DWORD PTR [RBP - 3], EAX

This module converts that textual form into :class:`repro.isa.Instruction`
objects.  It handles register operands, integer and floating point immediate
values, the full ``segment:[base + index*scale + displacement]`` addressing
syntax with optional size annotations (``DWORD PTR`` etc.), instruction
prefixes (``LOCK``, ``REP`` …), labels, and comments.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.isa.instructions import KNOWN_PREFIXES, Instruction
from repro.isa.operands import MemoryReference, Operand
from repro.isa.registers import is_register_name

__all__ = ["AssemblyParseError", "parse_instruction", "parse_block_text"]


class AssemblyParseError(ValueError):
    """Raised when a line of assembly cannot be parsed."""


_SIZE_KEYWORDS = {
    "BYTE": 8,
    "WORD": 16,
    "DWORD": 32,
    "QWORD": 64,
    "TBYTE": 80,
    "XMMWORD": 128,
    "YMMWORD": 256,
    "ZMMWORD": 512,
    "OWORD": 128,
}

_COMMENT_RE = re.compile(r"(;|#|//).*$")
_LABEL_RE = re.compile(r"^\s*[0-9A-Za-z_.$]+:\s*")
_LINE_NUMBER_RE = re.compile(r"^\s*\d+\s*:\s*")


def _strip_comment(line: str) -> str:
    return _COMMENT_RE.sub("", line)


def _split_operands(text: str) -> List[str]:
    """Splits the operand list on commas that are not inside brackets."""
    operands: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "[" or char == "(":
            depth += 1
        elif char == "]" or char == ")":
            depth -= 1
        if char == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return [operand for operand in operands if operand]


def _parse_integer(text: str) -> Optional[int]:
    token = text.strip().replace("_", "")
    try:
        if token.lower().startswith(("0x", "-0x", "+0x")):
            return int(token, 16)
        if token.lower().endswith("h") and any(c in "0123456789abcdefABCDEF" for c in token[:-1]):
            sign = 1
            body = token[:-1]
            if body.startswith("-"):
                sign, body = -1, body[1:]
            return sign * int(body, 16)
        return int(token, 10)
    except ValueError:
        return None


def _parse_float(text: str) -> Optional[float]:
    token = text.strip()
    if not re.fullmatch(r"[-+]?\d*\.\d+([eE][-+]?\d+)?", token):
        return None
    try:
        return float(token)
    except ValueError:  # pragma: no cover - defensive
        return None


def _parse_memory(text: str) -> MemoryReference:
    """Parses a memory operand such as ``DWORD PTR FS:[RAX + RBX*4 - 0x10]``."""
    working = text.strip()
    width_bits = 0

    size_match = re.match(r"^([A-Za-z]+)\s+PTR\s+", working, re.IGNORECASE)
    if size_match:
        keyword = size_match.group(1).upper()
        if keyword not in _SIZE_KEYWORDS:
            raise AssemblyParseError(f"unknown memory size keyword {keyword!r} in {text!r}")
        width_bits = _SIZE_KEYWORDS[keyword]
        working = working[size_match.end():]

    segment = None
    segment_match = re.match(r"^([A-Za-z]{2})\s*:\s*\[", working)
    if segment_match and is_register_name(segment_match.group(1)):
        segment = segment_match.group(1).upper()
        working = working[segment_match.end() - 1:]

    if not (working.startswith("[") and working.endswith("]")):
        raise AssemblyParseError(f"malformed memory operand: {text!r}")
    inner = working[1:-1].strip()
    if not inner:
        raise AssemblyParseError(f"empty memory operand: {text!r}")

    # Tokenize on + and - while keeping the sign attached to the term.
    terms: List[str] = []
    sign = "+"
    current: List[str] = []
    for char in inner:
        if char in "+-":
            term = "".join(current).strip()
            if term:
                terms.append(sign + term)
            elif terms:
                raise AssemblyParseError(f"malformed address expression: {text!r}")
            sign = char
            current = []
        else:
            current.append(char)
    term = "".join(current).strip()
    if term:
        terms.append(sign + term)

    base: Optional[str] = None
    index: Optional[str] = None
    scale = 1
    displacement = 0

    for signed_term in terms:
        term_sign = -1 if signed_term[0] == "-" else 1
        body = signed_term[1:].strip()
        scale_match = re.fullmatch(r"([A-Za-z0-9()]+)\s*\*\s*([1248])", body) or re.fullmatch(
            r"([1248])\s*\*\s*([A-Za-z0-9()]+)", body
        )
        if scale_match:
            left, right = scale_match.group(1), scale_match.group(2)
            register_token, scale_token = (left, right) if is_register_name(left) else (right, left)
            if not is_register_name(register_token):
                raise AssemblyParseError(f"bad scaled index in {text!r}")
            if index is not None:
                raise AssemblyParseError(f"multiple index registers in {text!r}")
            index = register_token.upper()
            scale = int(scale_token)
            continue
        if is_register_name(body):
            if base is None:
                base = body.upper()
            elif index is None:
                index = body.upper()
            else:
                raise AssemblyParseError(f"too many registers in address: {text!r}")
            continue
        value = _parse_integer(body)
        if value is None:
            # Symbolic displacements (e.g. RIP-relative labels) are treated
            # as a zero displacement; only their structure matters here.
            if re.fullmatch(r"[A-Za-z_.$@][\w.$@]*", body):
                continue
            raise AssemblyParseError(f"cannot parse address term {body!r} in {text!r}")
        displacement += term_sign * value

    return MemoryReference(
        base=base,
        index=index,
        scale=scale,
        displacement=displacement,
        segment=segment,
        width_bits=width_bits,
    )


def _parse_operand(text: str) -> Operand:
    token = text.strip()
    if not token:
        raise AssemblyParseError("empty operand")
    if "[" in token or re.match(r"^[A-Za-z]+\s+PTR\s+", token, re.IGNORECASE):
        return Operand.from_memory(_parse_memory(token))
    if is_register_name(token):
        return Operand.from_register(token)
    integer = _parse_integer(token)
    if integer is not None:
        return Operand.from_immediate(integer)
    floating = _parse_float(token)
    if floating is not None:
        return Operand.from_fp_immediate(floating)
    # Branch targets and other symbolic operands become zero immediates;
    # their value does not influence throughput.
    if re.fullmatch(r"[A-Za-z_.$@][\w.$@+-]*", token):
        return Operand.from_immediate(0)
    raise AssemblyParseError(f"cannot parse operand {token!r}")


def parse_instruction(line: str) -> Optional[Instruction]:
    """Parses a single line of Intel-syntax assembly.

    Returns None for blank lines, comment-only lines and label-only lines.

    Raises:
        AssemblyParseError: When the line looks like an instruction but
            cannot be parsed.
    """
    text = _strip_comment(line).strip()
    text = _LINE_NUMBER_RE.sub("", text)
    text = _LABEL_RE.sub("", text)
    if not text:
        return None

    parts = text.split(None, 1)
    prefixes: List[str] = []
    while parts and parts[0].upper() in KNOWN_PREFIXES:
        prefixes.append(parts[0].upper())
        text = parts[1] if len(parts) > 1 else ""
        parts = text.split(None, 1)
    if not parts:
        raise AssemblyParseError(f"prefix without an instruction: {line!r}")

    mnemonic = parts[0].upper()
    if not re.fullmatch(r"[A-Z][A-Z0-9.]*", mnemonic):
        raise AssemblyParseError(f"invalid mnemonic {mnemonic!r} in {line!r}")
    operand_text = parts[1] if len(parts) > 1 else ""
    operands = [_parse_operand(token) for token in _split_operands(operand_text)]
    return Instruction.create(mnemonic, operands, prefixes)


def parse_block_text(text: str) -> List[Instruction]:
    """Parses a multi-line assembly snippet into a list of instructions."""
    instructions: List[Instruction] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        try:
            instruction = parse_instruction(line)
        except AssemblyParseError as error:
            raise AssemblyParseError(f"line {line_number}: {error}") from error
        if instruction is not None:
            instructions.append(instruction)
    return instructions
