"""x86-64 register model.

The GRANITE graph encoding needs to know, for every operand of an
instruction, *which architectural value* it reads or writes.  On x86-64 the
same architectural value can be named in several ways (``RAX``, ``EAX``,
``AX``, ``AL`` and ``AH`` all alias the same 64-bit register), so the data
dependency analysis used by :mod:`repro.graph.builder` works on *register
families*: two operands touch the same value if and only if their registers
belong to the same family.

This module defines the register families for the general purpose registers,
the SSE/AVX vector registers, the x87/MMX stack, segment registers, the
instruction pointer and the flags register, together with a few helpers used
throughout the code base.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = [
    "RegisterClass",
    "Register",
    "RegisterFile",
    "REGISTERS",
    "canonical_register",
    "is_register_name",
    "registers_alias",
]


class RegisterClass(enum.Enum):
    """Coarse classification of architectural registers."""

    GENERAL_PURPOSE = "gpr"
    VECTOR = "vector"
    X87 = "x87"
    MMX = "mmx"
    MASK = "mask"
    SEGMENT = "segment"
    FLAGS = "flags"
    INSTRUCTION_POINTER = "ip"


@dataclass(frozen=True)
class Register:
    """A single architectural register name.

    Attributes:
        name: The canonical upper-case assembly name (e.g. ``"EAX"``).
        family: Name of the widest register in the same aliasing family
            (e.g. ``"RAX"`` for ``"EAX"``).
        width_bits: Width of this particular name in bits.
        reg_class: The :class:`RegisterClass` of the register.
    """

    name: str
    family: str
    width_bits: int
    reg_class: RegisterClass

    @property
    def is_general_purpose(self) -> bool:
        return self.reg_class is RegisterClass.GENERAL_PURPOSE

    @property
    def is_vector(self) -> bool:
        return self.reg_class is RegisterClass.VECTOR

    @property
    def is_flags(self) -> bool:
        return self.reg_class is RegisterClass.FLAGS


def _gpr_family(
    name64: str, name32: str, name16: str, name8: str, name8h: Optional[str] = None
) -> List[Register]:
    regs = [
        Register(name64, name64, 64, RegisterClass.GENERAL_PURPOSE),
        Register(name32, name64, 32, RegisterClass.GENERAL_PURPOSE),
        Register(name16, name64, 16, RegisterClass.GENERAL_PURPOSE),
        Register(name8, name64, 8, RegisterClass.GENERAL_PURPOSE),
    ]
    if name8h is not None:
        regs.append(Register(name8h, name64, 8, RegisterClass.GENERAL_PURPOSE))
    return regs


def _build_registers() -> Dict[str, Register]:
    registers: List[Register] = []

    registers += _gpr_family("RAX", "EAX", "AX", "AL", "AH")
    registers += _gpr_family("RBX", "EBX", "BX", "BL", "BH")
    registers += _gpr_family("RCX", "ECX", "CX", "CL", "CH")
    registers += _gpr_family("RDX", "EDX", "DX", "DL", "DH")
    registers += _gpr_family("RSI", "ESI", "SI", "SIL")
    registers += _gpr_family("RDI", "EDI", "DI", "DIL")
    registers += _gpr_family("RBP", "EBP", "BP", "BPL")
    registers += _gpr_family("RSP", "ESP", "SP", "SPL")
    for index in range(8, 16):
        base = f"R{index}"
        registers += [
            Register(base, base, 64, RegisterClass.GENERAL_PURPOSE),
            Register(f"{base}D", base, 32, RegisterClass.GENERAL_PURPOSE),
            Register(f"{base}W", base, 16, RegisterClass.GENERAL_PURPOSE),
            Register(f"{base}B", base, 8, RegisterClass.GENERAL_PURPOSE),
        ]

    for index in range(32):
        family = f"ZMM{index}"
        registers.append(Register(family, family, 512, RegisterClass.VECTOR))
        if index < 16:
            registers.append(Register(f"YMM{index}", family, 256, RegisterClass.VECTOR))
            registers.append(Register(f"XMM{index}", family, 128, RegisterClass.VECTOR))

    for index in range(8):
        registers.append(Register(f"ST{index}", f"ST{index}", 80, RegisterClass.X87))
        registers.append(Register(f"ST({index})", f"ST{index}", 80, RegisterClass.X87))
        registers.append(Register(f"MM{index}", f"MM{index}", 64, RegisterClass.MMX))
        registers.append(Register(f"K{index}", f"K{index}", 64, RegisterClass.MASK))

    for name in ("CS", "DS", "ES", "FS", "GS", "SS"):
        registers.append(Register(name, name, 16, RegisterClass.SEGMENT))

    registers.append(Register("RIP", "RIP", 64, RegisterClass.INSTRUCTION_POINTER))
    registers.append(Register("EIP", "RIP", 32, RegisterClass.INSTRUCTION_POINTER))
    registers.append(Register("EFLAGS", "EFLAGS", 32, RegisterClass.FLAGS))
    registers.append(Register("RFLAGS", "EFLAGS", 64, RegisterClass.FLAGS))
    registers.append(Register("MXCSR", "MXCSR", 32, RegisterClass.FLAGS))

    return {register.name: register for register in registers}


REGISTERS: Dict[str, Register] = _build_registers()


class RegisterFile:
    """Queries over the set of known architectural registers.

    The register file is immutable; a module level singleton is exposed as
    :data:`REGISTER_FILE` and used by the parser and the graph builder.
    """

    def __init__(self, registers: Optional[Dict[str, Register]] = None) -> None:
        self._registers = dict(registers if registers is not None else REGISTERS)
        self._families: Dict[str, Tuple[str, ...]] = {}
        for register in self._registers.values():
            members = self._families.setdefault(register.family, ())
            self._families[register.family] = members + (register.name,)

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._registers

    def __len__(self) -> int:
        return len(self._registers)

    def get(self, name: str) -> Register:
        """Returns the :class:`Register` for ``name`` (case insensitive)."""
        key = name.upper()
        if key not in self._registers:
            raise KeyError(f"unknown register name: {name!r}")
        return self._registers[key]

    def family_of(self, name: str) -> str:
        """Returns the canonical family name for a register name."""
        return self.get(name).family

    def family_members(self, family: str) -> FrozenSet[str]:
        """Returns all register names aliasing the given family."""
        key = family.upper()
        if key not in self._families:
            raise KeyError(f"unknown register family: {family!r}")
        return frozenset(self._families[key])

    def alias(self, first: str, second: str) -> bool:
        """Returns True when two register names alias the same value."""
        return self.family_of(first) == self.family_of(second)

    def names(self) -> Iterable[str]:
        return self._registers.keys()

    def general_purpose_families(self) -> List[str]:
        """Returns the 16 canonical 64-bit general purpose register names."""
        families = {
            register.family
            for register in self._registers.values()
            if register.reg_class is RegisterClass.GENERAL_PURPOSE
        }
        return sorted(families)

    def vector_families(self) -> List[str]:
        families = {
            register.family
            for register in self._registers.values()
            if register.reg_class is RegisterClass.VECTOR
        }
        return sorted(families, key=lambda name: (len(name), name))


REGISTER_FILE = RegisterFile()


def canonical_register(name: str) -> str:
    """Returns the canonical family name (widest alias) of a register."""
    return REGISTER_FILE.family_of(name)


def is_register_name(token: str) -> bool:
    """Returns True when ``token`` names an architectural register."""
    return token.upper() in REGISTER_FILE


def registers_alias(first: str, second: str) -> bool:
    """Returns True when the two register names refer to the same value."""
    return REGISTER_FILE.alias(first, second)
