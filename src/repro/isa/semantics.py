"""Architectural semantics of x86-64 instructions.

The GRANITE graph builder needs, for each instruction, which of its explicit
operands are read and which are written, plus which implicit registers
(EFLAGS in particular) it reads or writes.  This module provides that
information as a declarative table keyed by mnemonic, covering the subset of
x86-64 used by the synthetic dataset generator and by the BHive-style blocks
in the paper's examples.

The table is intentionally conservative: any mnemonic that is not listed gets
a generic "first operand is read-write destination, remaining operands are
sources" semantics, which is the most common pattern in x86.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Sequence, Tuple

from repro.isa.instructions import Instruction
from repro.isa.operands import Operand, OperandKind

__all__ = [
    "OperandAction",
    "InstructionCategory",
    "InstructionSemantics",
    "semantics_for",
    "known_mnemonics",
    "CONDITION_CODES",
]


class OperandAction(enum.Enum):
    """How an instruction uses one of its explicit operands."""

    READ = "read"
    WRITE = "write"
    READ_WRITE = "read_write"


class InstructionCategory(enum.Enum):
    """Coarse functional category, used by the synthetic workload generator
    and by the analytical throughput oracle."""

    MOVE = "move"
    ARITHMETIC = "arithmetic"
    LOGIC = "logic"
    COMPARE = "compare"
    SHIFT = "shift"
    MULTIPLY = "multiply"
    DIVIDE = "divide"
    LEA = "lea"
    CONDITIONAL_MOVE = "conditional_move"
    SET_CONDITION = "set_condition"
    STACK = "stack"
    BRANCH = "branch"
    CONVERT = "convert"
    BIT_MANIPULATION = "bit_manipulation"
    VECTOR_MOVE = "vector_move"
    VECTOR_ARITHMETIC = "vector_arithmetic"
    VECTOR_MULTIPLY = "vector_multiply"
    VECTOR_DIVIDE = "vector_divide"
    VECTOR_LOGIC = "vector_logic"
    VECTOR_COMPARE = "vector_compare"
    NOP = "nop"
    OTHER = "other"


@dataclass(frozen=True)
class InstructionSemantics:
    """Read/write behaviour of a single mnemonic.

    Attributes:
        mnemonic: The mnemonic this record describes.
        operand_actions: Action for each explicit operand position.  When an
            instruction has fewer operands than actions the extra actions are
            ignored; when it has more, the last action is repeated.
        reads_flags: True when the instruction reads EFLAGS.
        writes_flags: True when the instruction writes EFLAGS.
        implicit_reads: Canonical register families read implicitly.
        implicit_writes: Canonical register families written implicitly.
        category: Functional category.
    """

    mnemonic: str
    operand_actions: Tuple[OperandAction, ...]
    reads_flags: bool = False
    writes_flags: bool = False
    implicit_reads: FrozenSet[str] = field(default_factory=frozenset)
    implicit_writes: FrozenSet[str] = field(default_factory=frozenset)
    category: InstructionCategory = InstructionCategory.OTHER

    def action_for_operand(self, position: int) -> OperandAction:
        """Returns the action for the explicit operand at ``position``."""
        if not self.operand_actions:
            return OperandAction.READ
        if position < len(self.operand_actions):
            return self.operand_actions[position]
        return self.operand_actions[-1]


_R = OperandAction.READ
_W = OperandAction.WRITE
_RW = OperandAction.READ_WRITE

#: Condition-code suffixes used to expand the Jcc / SETcc / CMOVcc families.
CONDITION_CODES: Tuple[str, ...] = (
    "O", "NO", "B", "NB", "AE", "NAE", "C", "NC", "E", "NE", "Z", "NZ",
    "BE", "NBE", "A", "NA", "S", "NS", "P", "NP", "PE", "PO",
    "L", "NL", "GE", "NGE", "LE", "NLE", "G", "NG",
)


def _sem(
    mnemonic: str,
    actions: Sequence[OperandAction],
    category: InstructionCategory,
    *,
    reads_flags: bool = False,
    writes_flags: bool = False,
    implicit_reads: Sequence[str] = (),
    implicit_writes: Sequence[str] = (),
) -> InstructionSemantics:
    return InstructionSemantics(
        mnemonic=mnemonic.upper(),
        operand_actions=tuple(actions),
        reads_flags=reads_flags,
        writes_flags=writes_flags,
        implicit_reads=frozenset(name.upper() for name in implicit_reads),
        implicit_writes=frozenset(name.upper() for name in implicit_writes),
        category=category,
    )


def _build_semantics_table() -> Dict[str, InstructionSemantics]:
    table: Dict[str, InstructionSemantics] = {}

    def add(record: InstructionSemantics) -> None:
        table[record.mnemonic] = record

    # Moves and loads.
    for mnemonic in ("MOV", "MOVZX", "MOVSX", "MOVSXD", "MOVBE", "LDDQU"):
        add(_sem(mnemonic, (_W, _R), InstructionCategory.MOVE))
    add(_sem("XCHG", (_RW, _RW), InstructionCategory.MOVE))
    add(_sem("LEA", (_W, _R), InstructionCategory.LEA))

    # Integer ALU.
    for mnemonic in ("ADD", "SUB", "AND", "OR", "XOR"):
        add(_sem(mnemonic, (_RW, _R), InstructionCategory.ARITHMETIC
                 if mnemonic in ("ADD", "SUB") else InstructionCategory.LOGIC,
                 writes_flags=True))
    for mnemonic in ("ADC", "SBB"):
        add(_sem(mnemonic, (_RW, _R), InstructionCategory.ARITHMETIC,
                 reads_flags=True, writes_flags=True))
    for mnemonic in ("INC", "DEC", "NEG", "NOT"):
        writes_flags = mnemonic != "NOT"
        add(_sem(mnemonic, (_RW,), InstructionCategory.ARITHMETIC,
                 writes_flags=writes_flags))
    add(_sem("CMP", (_R, _R), InstructionCategory.COMPARE, writes_flags=True))
    add(_sem("TEST", (_R, _R), InstructionCategory.COMPARE, writes_flags=True))

    # Shifts and rotates.
    for mnemonic in ("SHL", "SAL", "SHR", "SAR", "ROL", "ROR", "RCL", "RCR"):
        reads_flags = mnemonic in ("RCL", "RCR")
        add(_sem(mnemonic, (_RW, _R), InstructionCategory.SHIFT,
                 reads_flags=reads_flags, writes_flags=True))
    for mnemonic in ("SHLD", "SHRD"):
        add(_sem(mnemonic, (_RW, _R, _R), InstructionCategory.SHIFT, writes_flags=True))

    # Multiplication and division.
    add(_sem("IMUL", (_RW, _R, _R), InstructionCategory.MULTIPLY, writes_flags=True))
    add(_sem("MUL", (_R,), InstructionCategory.MULTIPLY, writes_flags=True,
             implicit_reads=("RAX",), implicit_writes=("RAX", "RDX")))
    for mnemonic in ("IDIV", "DIV"):
        add(_sem(mnemonic, (_R,), InstructionCategory.DIVIDE, writes_flags=True,
                 implicit_reads=("RAX", "RDX"), implicit_writes=("RAX", "RDX")))

    # Sign extensions of RAX/EAX.
    add(_sem("CDQ", (), InstructionCategory.CONVERT,
             implicit_reads=("RAX",), implicit_writes=("RDX",)))
    add(_sem("CQO", (), InstructionCategory.CONVERT,
             implicit_reads=("RAX",), implicit_writes=("RDX",)))
    add(_sem("CDQE", (), InstructionCategory.CONVERT,
             implicit_reads=("RAX",), implicit_writes=("RAX",)))
    add(_sem("CBW", (), InstructionCategory.CONVERT,
             implicit_reads=("RAX",), implicit_writes=("RAX",)))
    add(_sem("CWDE", (), InstructionCategory.CONVERT,
             implicit_reads=("RAX",), implicit_writes=("RAX",)))

    # Conditional moves / sets / branches.
    for code in CONDITION_CODES:
        add(_sem(f"CMOV{code}", (_RW, _R), InstructionCategory.CONDITIONAL_MOVE,
                 reads_flags=True))
        add(_sem(f"SET{code}", (_W,), InstructionCategory.SET_CONDITION,
                 reads_flags=True))
        add(_sem(f"J{code}", (_R,), InstructionCategory.BRANCH, reads_flags=True))
    add(_sem("JMP", (_R,), InstructionCategory.BRANCH))
    add(_sem("CALL", (_R,), InstructionCategory.BRANCH,
             implicit_reads=("RSP",), implicit_writes=("RSP",)))
    add(_sem("RET", (), InstructionCategory.BRANCH,
             implicit_reads=("RSP",), implicit_writes=("RSP",)))

    # Stack operations.
    add(_sem("PUSH", (_R,), InstructionCategory.STACK,
             implicit_reads=("RSP",), implicit_writes=("RSP",)))
    add(_sem("POP", (_W,), InstructionCategory.STACK,
             implicit_reads=("RSP",), implicit_writes=("RSP",)))

    # Bit manipulation.
    for mnemonic in ("BSF", "BSR", "LZCNT", "TZCNT", "POPCNT"):
        add(_sem(mnemonic, (_W, _R), InstructionCategory.BIT_MANIPULATION,
                 writes_flags=True))
    for mnemonic in ("BT",):
        add(_sem(mnemonic, (_R, _R), InstructionCategory.BIT_MANIPULATION,
                 writes_flags=True))
    for mnemonic in ("BTS", "BTR", "BTC"):
        add(_sem(mnemonic, (_RW, _R), InstructionCategory.BIT_MANIPULATION,
                 writes_flags=True))
    add(_sem("BSWAP", (_RW,), InstructionCategory.BIT_MANIPULATION))
    for mnemonic in ("ANDN",):
        add(_sem(mnemonic, (_W, _R, _R), InstructionCategory.BIT_MANIPULATION,
                 writes_flags=True))

    add(_sem("NOP", (_R,), InstructionCategory.NOP))

    # Scalar SSE moves.
    for mnemonic in ("MOVSS", "MOVSD", "MOVAPS", "MOVAPD", "MOVUPS", "MOVUPD",
                     "MOVDQA", "MOVDQU", "MOVQ", "MOVD", "MOVHPS", "MOVLPS",
                     "VMOVAPS", "VMOVUPS", "VMOVDQA", "VMOVDQU", "VMOVSS", "VMOVSD"):
        add(_sem(mnemonic, (_W, _R), InstructionCategory.VECTOR_MOVE))

    # Scalar / packed SSE arithmetic.
    for mnemonic in ("ADDSS", "ADDSD", "SUBSS", "SUBSD", "ADDPS", "ADDPD",
                     "SUBPS", "SUBPD", "MINSS", "MINSD", "MAXSS", "MAXSD",
                     "PADDD", "PADDQ", "PADDB", "PADDW", "PSUBD", "PSUBQ",
                     "VADDPS", "VADDPD", "VSUBPS", "VSUBPD"):
        add(_sem(mnemonic, (_RW, _R), InstructionCategory.VECTOR_ARITHMETIC))
    for mnemonic in ("MULSS", "MULSD", "MULPS", "MULPD", "PMULLD", "PMULLW",
                     "PMULUDQ", "VMULPS", "VMULPD"):
        add(_sem(mnemonic, (_RW, _R), InstructionCategory.VECTOR_MULTIPLY))
    for mnemonic in ("DIVSS", "DIVSD", "DIVPS", "DIVPD", "SQRTSS", "SQRTSD",
                     "SQRTPS", "SQRTPD", "VDIVPS", "VDIVPD"):
        add(_sem(mnemonic, (_RW, _R), InstructionCategory.VECTOR_DIVIDE))
    for mnemonic in ("XORPS", "XORPD", "ANDPS", "ANDPD", "ORPS", "ORPD",
                     "PXOR", "PAND", "POR", "PANDN", "VXORPS", "VPXOR"):
        add(_sem(mnemonic, (_RW, _R), InstructionCategory.VECTOR_LOGIC))
    for mnemonic in ("UCOMISS", "UCOMISD", "COMISS", "COMISD"):
        add(_sem(mnemonic, (_R, _R), InstructionCategory.VECTOR_COMPARE,
                 writes_flags=True))
    for mnemonic in ("PCMPEQB", "PCMPEQD", "PCMPGTD"):
        add(_sem(mnemonic, (_RW, _R), InstructionCategory.VECTOR_COMPARE))

    # FMA-style three operand AVX arithmetic.
    for mnemonic in ("VFMADD132SS", "VFMADD213SS", "VFMADD231SS",
                     "VFMADD132SD", "VFMADD213SD", "VFMADD231SD",
                     "VFMADD132PS", "VFMADD213PS", "VFMADD231PS",
                     "VFMADD132PD", "VFMADD213PD", "VFMADD231PD"):
        add(_sem(mnemonic, (_RW, _R, _R), InstructionCategory.VECTOR_MULTIPLY))

    # Conversions.
    for mnemonic in ("CVTSI2SS", "CVTSI2SD", "CVTTSS2SI", "CVTTSD2SI",
                     "CVTSS2SD", "CVTSD2SS", "CVTDQ2PS", "CVTPS2DQ",
                     "CVTDQ2PD", "CVTPD2DQ"):
        add(_sem(mnemonic, (_W, _R), InstructionCategory.CONVERT))

    # Shuffles and unpacks (treated as vector logic for the oracle).
    for mnemonic in ("PSHUFD", "PSHUFB", "SHUFPS", "SHUFPD", "UNPCKLPS",
                     "UNPCKHPS", "PUNPCKLDQ", "PUNPCKHDQ", "VPERMILPS",
                     "PSLLD", "PSRLD", "PSLLQ", "PSRLQ", "PSLLDQ", "PSRLDQ"):
        add(_sem(mnemonic, (_RW, _R, _R), InstructionCategory.VECTOR_LOGIC))

    # String operations (used with REP prefixes).
    add(_sem("MOVSB", (), InstructionCategory.MOVE,
             implicit_reads=("RSI", "RDI", "RCX"),
             implicit_writes=("RSI", "RDI", "RCX")))
    add(_sem("STOSB", (), InstructionCategory.MOVE,
             implicit_reads=("RAX", "RDI", "RCX"),
             implicit_writes=("RDI", "RCX")))
    add(_sem("STOSQ", (), InstructionCategory.MOVE,
             implicit_reads=("RAX", "RDI", "RCX"),
             implicit_writes=("RDI", "RCX")))

    return table


_SEMANTICS_TABLE = _build_semantics_table()

_DEFAULT_ACTIONS = (_RW, _R, _R, _R)


def semantics_for(instruction_or_mnemonic: "Instruction | str") -> InstructionSemantics:
    """Returns the semantics record for an instruction or mnemonic.

    Unknown mnemonics fall back to a generic "destination first" pattern so
    that the graph builder and the oracle never fail on unusual instructions.
    """
    if isinstance(instruction_or_mnemonic, Instruction):
        mnemonic = instruction_or_mnemonic.mnemonic
    else:
        mnemonic = instruction_or_mnemonic.upper()
    record = _SEMANTICS_TABLE.get(mnemonic)
    if record is not None:
        return record
    return InstructionSemantics(
        mnemonic=mnemonic,
        operand_actions=_DEFAULT_ACTIONS,
        category=InstructionCategory.OTHER,
    )


def known_mnemonics() -> Tuple[str, ...]:
    """Returns all mnemonics with explicit semantics, sorted."""
    return tuple(sorted(_SEMANTICS_TABLE))


def operand_reads_and_writes(
    instruction: Instruction,
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Returns (read_positions, write_positions) of explicit operands.

    Memory operands are special: the registers used in the address
    computation are always *read*, regardless of whether the memory location
    itself is read or written; that distinction is handled by the caller.
    Immediate operands are never written.
    """
    semantics = semantics_for(instruction)
    reads = []
    writes = []
    for position, operand in enumerate(instruction.operands):
        action = semantics.action_for_operand(position)
        if operand.kind in (OperandKind.IMMEDIATE, OperandKind.FP_IMMEDIATE):
            reads.append(position)
            continue
        if action in (OperandAction.READ, OperandAction.READ_WRITE):
            reads.append(position)
        if action in (OperandAction.WRITE, OperandAction.READ_WRITE):
            writes.append(position)
    return tuple(reads), tuple(writes)
