"""The paper's models: GRANITE, Ithemal and Ithemal+.

Factory helpers are provided so experiments and examples can create any of
the three models from a single string name.
"""

from typing import Optional, Sequence

from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.models.base import ThroughputModel
from repro.models.config import GraniteConfig, IthemalConfig, TrainingConfig
from repro.models.granite import GraniteBatch, GraniteModel
from repro.models.ithemal import IthemalBatch, IthemalModel
from repro.models.tokenizer import (
    build_ithemal_vocabulary,
    tokenize_block,
    tokenize_instruction,
)

__all__ = [
    "ThroughputModel",
    "GraniteConfig",
    "IthemalConfig",
    "TrainingConfig",
    "GraniteBatch",
    "GraniteModel",
    "IthemalBatch",
    "IthemalModel",
    "build_ithemal_vocabulary",
    "tokenize_block",
    "tokenize_instruction",
    "create_model",
    "MODEL_NAMES",
]

#: Names accepted by :func:`create_model`, matching the rows of Table 5.
MODEL_NAMES = ("granite", "ithemal", "ithemal+")


def create_model(
    name: str,
    tasks: Sequence[str] = TARGET_MICROARCHITECTURES,
    small: bool = True,
    seed: int = 0,
    num_message_passing_iterations: Optional[int] = None,
    inference_dtype: Optional[str] = None,
    checkpoint_path: Optional[str] = None,
) -> ThroughputModel:
    """Creates one of the paper's models by name.

    Args:
        name: ``"granite"``, ``"ithemal"`` or ``"ithemal+"``.
        tasks: Target microarchitecture keys (one decoder head per task).
        small: Use the reduced CPU-friendly configuration (default) instead
            of the paper-scale Table 4 configuration.
        seed: Seed for weight initialisation.
        num_message_passing_iterations: Optional override for GRANITE.
        inference_dtype: Optional compute dtype of the no-grad inference
            fast path (``"float64"`` / ``"float32"``); ``None`` keeps the
            config default, which honours the ``INFERENCE_DTYPE``
            environment variable.  Weights are identical across dtypes for
            a given seed — only inference math changes.
        checkpoint_path: Optional ``.npz`` checkpoint (saved by
            :func:`repro.nn.save_checkpoint`) restored into the freshly
            built model — the warm-start path shared by the serving
            workers and the model registry.
    """
    from dataclasses import replace

    key = name.lower()
    if key == "granite":
        if small:
            config = GraniteConfig.small(tasks=tasks, seed=seed)
        else:
            config = GraniteConfig.paper_defaults(tasks=tasks)
        if num_message_passing_iterations is not None:
            config = replace(
                config, num_message_passing_iterations=num_message_passing_iterations
            )
        if inference_dtype is not None:
            config = replace(config, inference_dtype=inference_dtype)
        model: ThroughputModel = GraniteModel(config)
    elif key in ("ithemal", "ithemal+"):
        plus = key == "ithemal+"
        if small:
            config = IthemalConfig.small(tasks=tasks, plus=plus, seed=seed)
        else:
            config = IthemalConfig.paper_defaults(tasks=tasks, plus=plus)
        if inference_dtype is not None:
            config = replace(config, inference_dtype=inference_dtype)
        model = IthemalModel(config)
    else:
        raise ValueError(f"unknown model {name!r}; expected one of {MODEL_NAMES}")
    if checkpoint_path is not None:
        from repro.nn.serialization import load_checkpoint

        load_checkpoint(model, checkpoint_path)
    return model
