"""Common interface of throughput-estimation models.

The training and evaluation harness only relies on this small interface, so
GRANITE, Ithemal and Ithemal+ (and any future model) are interchangeable in
every experiment:

* :meth:`ThroughputModel.encode_blocks` turns a list of basic blocks into a
  model-specific batch object (a packed graph for GRANITE, padded token
  sequences for Ithemal).  Encoding is separated from the forward pass so it
  can be cached across epochs.
* :meth:`ThroughputModel.forward` maps the encoded batch to one predicted
  throughput tensor per task (microarchitecture).
* :meth:`ThroughputModel.predict` is the inference-mode convenience wrapper
  returning plain numpy arrays.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.nn.module import Module, parameter_version
from repro.nn.tensor import Tensor, compute_dtype, no_grad
from repro.utils.cache import LRUCache

__all__ = ["ThroughputModel"]


def _as_array(values) -> np.ndarray:
    """Normalises a forward output (Tensor or ndarray) to a flat float64 array.

    Predictions computed by the float32 fast path are widened here, at the
    inference boundary, so callers always receive float64 arrays whatever
    the model's :attr:`~ThroughputModel.inference_dtype` is.
    """
    array = values.data if isinstance(values, Tensor) else np.asarray(values)
    return array.reshape(-1).astype(np.float64, copy=False)


class ThroughputModel(Module):
    """Base class of all basic-block throughput models."""

    #: Target microarchitecture keys, one prediction head per entry.
    tasks: Tuple[str, ...]

    #: Compute dtype of the no-grad inference fast path (``"float64"`` or
    #: ``"float32"``).  Subclasses set it from their config; it only affects
    #: :meth:`predict` (training and the tape path always run float64).  The
    #: dtype is part of the prediction-cache key, so flipping it — or serving
    #: a float32 clone next to a float64 original — never aliases cached
    #: values across precisions.
    inference_dtype: str = "float64"

    #: Capacity of the per-block prediction cache (0 disables it).  Unlike
    #: the encode caches, cached *predictions* depend on the weights, so the
    #: cache records the generation of *this model's* parameters it was
    #: filled at (:meth:`~repro.nn.module.Module.parameter_generation`) and
    #: is dropped whenever an optimizer step or ``load_state_dict`` mutates
    #: them.  The global :func:`~repro.nn.module.parameter_version` is only
    #: used as an O(1) fast-path check, so training one model in a process
    #: does not invalidate another model's cache.
    prediction_cache_size: int = 8192

    def encode_blocks(self, blocks: Sequence[BasicBlock]):
        """Encodes basic blocks into the model's batch representation."""
        raise NotImplementedError

    def forward(self, batch) -> Dict[str, Tensor]:
        """Returns per-task predicted throughputs of shape ``[num_blocks]``."""
        raise NotImplementedError

    def encode_caches(self) -> List[LRUCache]:
        """The model's encode caches (overridden by subclasses that cache).

        Base-class cache management (:meth:`clear_encode_cache`,
        :meth:`caches_disabled`) operates on whatever this returns, so
        subclasses keep the knowledge of their own cache attributes.
        """
        return []

    def clear_encode_cache(self) -> None:
        """Drops every cached encoding."""
        for cache in self.encode_caches():
            cache.clear()

    # ------------------------------------------------------------------ #
    # Prediction cache plumbing.
    # ------------------------------------------------------------------ #
    def _current_prediction_cache(self) -> LRUCache:
        cache = getattr(self, "_prediction_cache", None)
        if cache is None or cache.maxsize != self.prediction_cache_size:
            cache = LRUCache(self.prediction_cache_size)
            self._prediction_cache = cache
            self._prediction_cache_generation = self.parameter_generation()
            self._prediction_cache_global_version = parameter_version()
        if self._prediction_cache_global_version != parameter_version():
            # Some model in the process trained since the last lookup; only
            # drop the cache if it was *this* model's parameters that moved.
            generation = self.parameter_generation()
            if generation != self._prediction_cache_generation:
                cache.clear()
                self._prediction_cache_generation = generation
            self._prediction_cache_global_version = parameter_version()
        return cache

    def clear_prediction_cache(self) -> None:
        """Drops every cached per-block prediction."""
        if getattr(self, "_prediction_cache", None) is not None:
            self._prediction_cache.clear()

    @contextmanager
    def caches_disabled(self) -> Iterator["ThroughputModel"]:
        """Temporarily disables the prediction *and* encode caches.

        Timing code uses this so measurements include the full inference
        cost (graph construction / tokenization included) instead of cache
        hits.  On exit the previous caches — including their warm entries
        and hit/miss counters — are restored intact; only the encode caches
        are emptied (their entries cannot go stale, they are just dropped
        so the context starts cold).
        """
        saved_prediction_size = self.prediction_cache_size
        saved_prediction_cache = getattr(self, "_prediction_cache", None)
        saved_prediction_generation = getattr(
            self, "_prediction_cache_generation", None
        )
        saved_prediction_global = getattr(
            self, "_prediction_cache_global_version", None
        )
        self.prediction_cache_size = 0
        self._prediction_cache = None  # a fresh zero-capacity cache inside
        encode_caches = self.encode_caches()
        saved_sizes = [(cache, cache.maxsize) for cache in encode_caches]
        for cache in encode_caches:
            cache.maxsize = 0
            cache.clear()
        try:
            yield self
        finally:
            self.prediction_cache_size = saved_prediction_size
            self._prediction_cache = saved_prediction_cache
            if saved_prediction_generation is not None:
                # Restore the generation the saved cache was filled at, so a
                # weight update made inside the context still invalidates it.
                self._prediction_cache_generation = saved_prediction_generation
                self._prediction_cache_global_version = saved_prediction_global
            for cache, size in saved_sizes:
                cache.maxsize = size

    @property
    def prediction_cache_stats(self) -> Dict[str, int]:
        """Hit/miss counters of the prediction cache (for benchmarks)."""
        cache = self._current_prediction_cache()
        return {"hits": cache.hits, "misses": cache.misses, "entries": len(cache)}

    def cache_stats(self) -> Dict[str, float]:
        """Uniform cache summary across model families.

        Aggregates the (model-specific) encode caches and the prediction
        cache into one flat counter dict.  The sharded worker pool reports
        this per worker, which is how the serving benchmarks measure shard
        affinity: stable hash sharding should give every worker a high hit
        rate on its own partition of the block key space.
        """
        encode_hits = sum(cache.hits for cache in self.encode_caches())
        encode_misses = sum(cache.misses for cache in self.encode_caches())
        prediction = self.prediction_cache_stats
        encode_total = encode_hits + encode_misses
        prediction_total = prediction["hits"] + prediction["misses"]
        return {
            "encode_hits": encode_hits,
            "encode_misses": encode_misses,
            "encode_hit_rate": encode_hits / encode_total if encode_total else 0.0,
            "prediction_hits": prediction["hits"],
            "prediction_misses": prediction["misses"],
            "prediction_hit_rate": (
                prediction["hits"] / prediction_total if prediction_total else 0.0
            ),
            "prediction_entries": prediction["entries"],
        }

    # ------------------------------------------------------------------ #
    # Inference.
    # ------------------------------------------------------------------ #
    def _predict_uncached(
        self, blocks: List[BasicBlock], batch_size: Optional[int]
    ) -> Dict[str, np.ndarray]:
        """Batched no-grad forward over ``blocks`` (no prediction cache)."""
        with no_grad(), compute_dtype(self.inference_dtype):
            if batch_size is None or batch_size >= len(blocks):
                predictions = self.forward(self.encode_blocks(blocks))
                return {
                    task: _as_array(predictions[task]).copy() for task in self.tasks
                }
            chunks: Dict[str, List[np.ndarray]] = {task: [] for task in self.tasks}
            for start in range(0, len(blocks), batch_size):
                batch = self.encode_blocks(blocks[start : start + batch_size])
                predictions = self.forward(batch)
                for task in self.tasks:
                    chunks[task].append(_as_array(predictions[task]))
        return {task: np.concatenate(chunks[task]) for task in self.tasks}

    def predict(
        self,
        blocks: Sequence[BasicBlock],
        batch_size: Optional[int] = None,
    ) -> Dict[str, np.ndarray]:
        """Inference: predicts throughputs for ``blocks`` without gradients.

        Runs on the no-grad fast path (raw numpy, no autodiff tape) in the
        model's :attr:`inference_dtype`; results are widened to float64
        arrays at this boundary either way.  With
        ``batch_size`` the blocks are processed in micro-batches of at most
        that many blocks, which bounds the peak memory of the packed
        representation; the result is identical to one large batch.  Blocks
        already served since the last weight update come straight from the
        prediction cache (see :attr:`prediction_cache_size`).

        Args:
            blocks: Basic blocks to predict.  May be empty.
            batch_size: Optional micro-batch size; ``None`` processes all
                blocks as a single batch.

        Returns:
            Per-task float arrays of shape ``[len(blocks)]``.
        """
        blocks = list(blocks)
        if not blocks:
            return {task: np.zeros(0, dtype=np.float64) for task in self.tasks}
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive")

        cache = self._current_prediction_cache()
        if cache.maxsize <= 0:
            return self._predict_uncached(blocks, batch_size)

        # The compute dtype is part of the key: a float32 clone of a float64
        # model (or one model whose inference_dtype is flipped) must neither
        # serve the other precision's cached values nor evict them.
        dtype = self.inference_dtype
        keys = [(block.canonical_text(), dtype) for block in blocks]
        results = {task: np.empty(len(blocks), dtype=np.float64) for task in self.tasks}
        missing: List[int] = []
        for index, key in enumerate(keys):
            entry = cache.get(key)
            if entry is None:
                missing.append(index)
            else:
                for task in self.tasks:
                    results[task][index] = entry[task]
        if missing:
            # Dedupe repeated blocks so each distinct text is computed once.
            position_of_key: Dict[str, int] = {}
            unique_indices: List[int] = []
            for index in missing:
                if keys[index] not in position_of_key:
                    position_of_key[keys[index]] = len(unique_indices)
                    unique_indices.append(index)
            computed = self._predict_uncached(
                [blocks[index] for index in unique_indices], batch_size
            )
            for index in missing:
                position = position_of_key[keys[index]]
                entry = {
                    task: float(computed[task][position]) for task in self.tasks
                }
                cache.put(keys[index], entry)
                for task in self.tasks:
                    results[task][index] = entry[task]
        return results

    def predict_single(self, block: BasicBlock) -> Dict[str, float]:
        """Predicts the throughput of a single basic block."""
        predictions = self.predict([block])
        return {task: float(values[0]) for task, values in predictions.items()}
