"""Common interface of throughput-estimation models.

The training and evaluation harness only relies on this small interface, so
GRANITE, Ithemal and Ithemal+ (and any future model) are interchangeable in
every experiment:

* :meth:`ThroughputModel.encode_blocks` turns a list of basic blocks into a
  model-specific batch object (a packed graph for GRANITE, padded token
  sequences for Ithemal).  Encoding is separated from the forward pass so it
  can be cached across epochs.
* :meth:`ThroughputModel.forward` maps the encoded batch to one predicted
  throughput tensor per task (microarchitecture).
* :meth:`ThroughputModel.predict` is the inference-mode convenience wrapper
  returning plain numpy arrays.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad

__all__ = ["ThroughputModel"]


class ThroughputModel(Module):
    """Base class of all basic-block throughput models."""

    #: Target microarchitecture keys, one prediction head per entry.
    tasks: Tuple[str, ...]

    def encode_blocks(self, blocks: Sequence[BasicBlock]):
        """Encodes basic blocks into the model's batch representation."""
        raise NotImplementedError

    def forward(self, batch) -> Dict[str, Tensor]:
        """Returns per-task predicted throughputs of shape ``[num_blocks]``."""
        raise NotImplementedError

    def predict(self, blocks: Sequence[BasicBlock]) -> Dict[str, np.ndarray]:
        """Inference: predicts throughputs for ``blocks`` without gradients."""
        if not blocks:
            return {task: np.zeros(0) for task in self.tasks}
        with no_grad():
            batch = self.encode_blocks(blocks)
            predictions = self.forward(batch)
        return {task: predictions[task].numpy().reshape(-1).copy() for task in self.tasks}

    def predict_single(self, block: BasicBlock) -> Dict[str, float]:
        """Predicts the throughput of a single basic block."""
        predictions = self.predict([block])
        return {task: float(values[0]) for task, values in predictions.items()}
