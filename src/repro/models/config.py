"""Model hyper-parameter configurations (Table 4 of the paper).

The defaults follow Table 4: 256-wide embeddings, two-layer 256-wide update
and decoder networks, eight message passing iterations, layer normalisation
and residual connections enabled, and a learning rate of 1e-3 with batches
of 100 basic blocks.

The full-size configuration is expensive on a CPU-only numpy runtime, so
:func:`GraniteConfig.small` / :func:`IthemalConfig.small` provide reduced
presets used by the unit tests and the quick benchmark harness; every
experiment script accepts a ``--full`` flag to switch back to the paper's
values.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Sequence, Tuple

from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.nn.tensor import SUPPORTED_DTYPES

__all__ = [
    "GraniteConfig",
    "IthemalConfig",
    "TrainingConfig",
    "default_inference_dtype",
]


def default_inference_dtype() -> str:
    """The process-wide default inference dtype.

    ``float64`` unless the ``INFERENCE_DTYPE`` environment variable says
    otherwise — which is how the CI matrix runs the whole tier-1 suite with
    float32 inference without touching any individual test.  Training is
    always float64 regardless (see ``repro.nn.tensor.compute_dtype``).
    The serving stack follows the same env-default pattern for its
    flush-deadline policy (``repro.serve.flush.default_flush_policy``).
    """
    return os.environ.get("INFERENCE_DTYPE", "float64")


@dataclass(frozen=True)
class GraniteConfig:
    """Hyper-parameters of the GRANITE model.

    Attributes:
        node_embedding_size: Size of node token embeddings and node latents.
        edge_embedding_size: Size of edge type embeddings and edge latents.
        global_embedding_size: Size of the latent global feature.
        update_hidden_sizes: Hidden layers of every GN update network.
        decoder_hidden_sizes: Hidden layers of the per-task decoder network.
        num_message_passing_iterations: GN block applications (Table 7
            sweeps 1-12; 8 is the paper's best).
        tasks: Target microarchitecture keys; a single entry makes the model
            single-task, several entries make it multi-task (Section 3.4).
        use_layer_norm: Layer normalisation at the input of every update
            network and decoder (the Section 5.2 ablation disables it).
        use_residual: Residual connections in update networks and decoder.
        use_global_features: Whether to use the token/edge frequency global
            feature (True in the paper).
        aggregation: Reducer used when aggregating edge features into nodes
            and node/edge features into the global feature.  Graph Nets (and
            hence the paper) default to ``"sum"``; ``"mean"`` is numerically
            better behaved for the short CPU training runs used in this
            reproduction and is the default here (see DESIGN.md).  The
            per-instruction decoder outputs are always summed per block, as
            in Table 4.
        readout: ``"per_instruction"`` (the paper's design: decode every
            instruction mnemonic node and sum the contributions) or
            ``"global"`` (decode the graph-level global feature directly) —
            the readout ablation called out in DESIGN.md.
        output_scale: Constant multiplier applied to decoder outputs; keeps
            the per-instruction contributions in a numerically convenient
            range given that labels are cycles per 100 iterations.
        inference_dtype: Compute dtype of the no-grad inference fast path
            (``"float64"`` default, ``"float32"`` for mixed-precision
            serving).  Master weights and training stay float64; predictions
            computed in float32 must pass the tolerance harness in
            ``tests/equivalence``.  The default honours the
            ``INFERENCE_DTYPE`` environment variable (CI matrix leg).
        seed: Seed for weight initialisation.
        encode_cache_size: Capacity of the per-block graph LRU cache used by
            :meth:`repro.models.granite.GraniteModel.encode_blocks` (0
            disables caching).  Graphs depend only on the block text, so the
            cache stays valid across retraining.
        batch_cache_size: Capacity of the packed-batch LRU cache keyed by the
            tuple of canonical block texts (0 disables it).
    """

    node_embedding_size: int = 256
    edge_embedding_size: int = 256
    global_embedding_size: int = 256
    update_hidden_sizes: Tuple[int, ...] = (256, 256)
    decoder_hidden_sizes: Tuple[int, ...] = (256, 256)
    num_message_passing_iterations: int = 8
    tasks: Tuple[str, ...] = TARGET_MICROARCHITECTURES
    use_layer_norm: bool = True
    use_residual: bool = True
    use_global_features: bool = True
    aggregation: str = "mean"
    readout: str = "per_instruction"
    output_scale: float = 100.0
    inference_dtype: str = field(default_factory=default_inference_dtype)
    seed: int = 0
    encode_cache_size: int = 8192
    batch_cache_size: int = 64

    def __post_init__(self) -> None:
        if self.readout not in ("per_instruction", "global"):
            raise ValueError("readout must be 'per_instruction' or 'global'")
        if self.aggregation not in ("sum", "mean"):
            raise ValueError("aggregation must be 'sum' or 'mean'")
        if self.inference_dtype not in SUPPORTED_DTYPES:
            raise ValueError(
                f"inference_dtype must be one of {SUPPORTED_DTYPES}, "
                f"got {self.inference_dtype!r}"
            )

    @staticmethod
    def paper_defaults(tasks: Sequence[str] = TARGET_MICROARCHITECTURES) -> "GraniteConfig":
        """The configuration from Table 4 of the paper."""
        return GraniteConfig(tasks=tuple(tasks))

    @staticmethod
    def small(
        tasks: Sequence[str] = TARGET_MICROARCHITECTURES,
        num_message_passing_iterations: int = 4,
        seed: int = 0,
    ) -> "GraniteConfig":
        """A reduced configuration that trains in seconds on a CPU."""
        return GraniteConfig(
            node_embedding_size=32,
            edge_embedding_size=32,
            global_embedding_size=32,
            update_hidden_sizes=(32, 32),
            decoder_hidden_sizes=(32, 32),
            num_message_passing_iterations=num_message_passing_iterations,
            tasks=tuple(tasks),
            seed=seed,
        )

    def with_tasks(self, tasks: Sequence[str]) -> "GraniteConfig":
        """Returns a copy of the config targeting different tasks."""
        return replace(self, tasks=tuple(tasks))


@dataclass(frozen=True)
class IthemalConfig:
    """Hyper-parameters of the Ithemal / Ithemal+ baselines.

    Attributes:
        token_embedding_size: Size of token embedding vectors.
        hidden_size: LSTM state size for both hierarchy levels.
        decoder: ``"dot_product"`` for vanilla Ithemal (a linear readout of
            the block embedding) or ``"mlp"`` for the Ithemal+ extension
            (the same residual MLP decoder as GRANITE).
        decoder_hidden_sizes: Hidden layers of the MLP decoder (Ithemal+).
        tasks: Target microarchitecture keys (one per decoder head).
        use_layer_norm: Layer normalisation at the MLP decoder input.
        output_scale: Constant multiplier on decoder outputs.
        inference_dtype: Compute dtype of the no-grad inference fast path
            (see :attr:`GraniteConfig.inference_dtype`).
        seed: Seed for weight initialisation.
        encode_cache_size: Capacity of the per-block tokenization LRU cache
            (0 disables caching); valid across retraining because the
            tokenization depends only on the block text.
        batch_cache_size: Capacity of the padded-batch LRU cache keyed by
            the tuple of canonical block texts (0 disables it).
    """

    token_embedding_size: int = 256
    hidden_size: int = 256
    decoder: str = "dot_product"
    decoder_hidden_sizes: Tuple[int, ...] = (256, 256)
    tasks: Tuple[str, ...] = TARGET_MICROARCHITECTURES
    use_layer_norm: bool = True
    output_scale: float = 100.0
    inference_dtype: str = field(default_factory=default_inference_dtype)
    seed: int = 0
    encode_cache_size: int = 8192
    batch_cache_size: int = 64

    def __post_init__(self) -> None:
        if self.decoder not in ("dot_product", "mlp"):
            raise ValueError("decoder must be 'dot_product' or 'mlp'")
        if self.inference_dtype not in SUPPORTED_DTYPES:
            raise ValueError(
                f"inference_dtype must be one of {SUPPORTED_DTYPES}, "
                f"got {self.inference_dtype!r}"
            )

    @staticmethod
    def paper_defaults(
        tasks: Sequence[str] = TARGET_MICROARCHITECTURES, plus: bool = False
    ) -> "IthemalConfig":
        """Vanilla Ithemal (or Ithemal+ when ``plus=True``) at paper scale."""
        return IthemalConfig(tasks=tuple(tasks), decoder="mlp" if plus else "dot_product")

    @staticmethod
    def small(
        tasks: Sequence[str] = TARGET_MICROARCHITECTURES,
        plus: bool = False,
        seed: int = 0,
    ) -> "IthemalConfig":
        """A reduced configuration that trains in seconds on a CPU."""
        return IthemalConfig(
            token_embedding_size=32,
            hidden_size=32,
            decoder="mlp" if plus else "dot_product",
            decoder_hidden_sizes=(32, 32),
            tasks=tuple(tasks),
            seed=seed,
        )

    def with_tasks(self, tasks: Sequence[str]) -> "IthemalConfig":
        """Returns a copy of the config targeting different tasks."""
        return replace(self, tasks=tuple(tasks))


@dataclass(frozen=True)
class TrainingConfig:
    """Optimisation hyper-parameters (Table 4).

    Attributes:
        learning_rate: Adam learning rate (1e-3 in the paper).
        batch_size: Basic blocks per batch (100 in the paper).
        num_steps: Training steps (the paper trains for >= 6M steps; the
            reproduction uses far fewer).
        loss: Name of the training loss (Table 9 sweeps alternatives).
        gradient_clip_norm: Global-norm gradient clipping; 0 disables it.
            The paper only needs clipping when layer normalisation is
            removed (Section 5.2).
        validation_interval: Steps between validation evaluations used to
            select the best checkpoint.
        seed: Seed controlling batch sampling.
    """

    learning_rate: float = 1e-3
    batch_size: int = 100
    num_steps: int = 300
    loss: str = "mape"
    gradient_clip_norm: float = 0.0
    validation_interval: int = 50
    seed: int = 0
