"""The GRANITE model (Section 3 of the paper).

The model is the composition of four pieces:

1. **Graph encoding** — basic blocks become dependency graphs
   (:mod:`repro.graph.builder`).
2. **Input encoders** — node tokens and edge types are mapped to learnable
   embedding vectors, and the per-graph token/edge-type frequency vector is
   projected to the latent global feature (Section 3.2).
3. **Graph neural network** — the full GN block applied for a configurable
   number of message passing iterations (Table 7 sweeps this; 8 is best).
4. **Decoder network(s)** — a residual MLP applied to the final embedding of
   every *instruction mnemonic node*, producing that instruction's
   contribution to the block throughput; contributions are summed per block
   (Section 3.3).  The multi-task variant instantiates one decoder per
   target microarchitecture on top of the shared GNN (Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.graph.builder import GraphBuilder, GraphBuilderConfig
from repro.graph.graph import BlockGraph, GraphsTuple, pack_graphs
from repro.graph.types import EdgeType
from repro.graph.vocabulary import Vocabulary, build_default_vocabulary
from repro.gnn.blocks import GraphNetwork, GraphState, GraphTopology
from repro.isa.basic_block import BasicBlock
from repro.models.base import ThroughputModel
from repro.models.config import GraniteConfig
from repro.nn.layers import Dense, Embedding, ResidualMLP
from repro.nn.tensor import (
    Tensor,
    active_dtype,
    fast_path_active,
    gather_rows,
    segment_sum,
)
from repro.utils.cache import LRUCache

__all__ = ["GraniteModel", "GraniteBatch"]


@dataclass
class GraniteBatch:
    """An encoded batch of basic blocks: the packed graph plus topology."""

    graphs: GraphsTuple
    topology: GraphTopology


class GraniteModel(ThroughputModel):
    """GRANITE: graph neural network throughput estimator.

    Args:
        config: Model hyper-parameters; defaults to Table 4 of the paper.
        vocabulary: Token vocabulary; defaults to the canonical vocabulary
            covering every known mnemonic, prefix and register.
        graph_config: Graph construction options (used by ablations).
    """

    def __init__(
        self,
        config: Optional[GraniteConfig] = None,
        vocabulary: Optional[Vocabulary] = None,
        graph_config: Optional[GraphBuilderConfig] = None,
    ) -> None:
        self.config = config or GraniteConfig()
        self.vocabulary = vocabulary or build_default_vocabulary()
        self.graph_builder = GraphBuilder(graph_config)
        self.tasks = tuple(self.config.tasks)
        self.inference_dtype = self.config.inference_dtype
        if not self.tasks:
            raise ValueError("GraniteModel needs at least one task")

        # Encode caches: graph construction dominates single-block inference
        # cost, and evaluation sweeps predict the same blocks over and over.
        # Graphs depend only on the block text and the (fixed) builder
        # configuration, never on the weights, so the caches survive
        # retraining without invalidation.
        self._graph_cache: LRUCache[str, BlockGraph] = LRUCache(
            self.config.encode_cache_size
        )
        self._batch_cache: LRUCache[Tuple[str, ...], GraniteBatch] = LRUCache(
            self.config.batch_cache_size
        )

        rng = np.random.default_rng(self.config.seed)
        num_edge_types = len(EdgeType)
        cfg = self.config

        # Input encoders (Section 3.2: learnable embeddings per token / edge
        # type; the global feature starts as token/edge-type frequencies).
        self.node_embedding = Embedding(len(self.vocabulary), cfg.node_embedding_size, rng)
        self.edge_embedding = Embedding(num_edge_types, cfg.edge_embedding_size, rng)
        global_input_size = len(self.vocabulary) + num_edge_types
        self.global_encoder = Dense(
            global_input_size, cfg.global_embedding_size, rng, activation=None
        )

        # The processing core: a full GN block applied N times.
        self.graph_network = GraphNetwork(
            edge_size=cfg.edge_embedding_size,
            node_size=cfg.node_embedding_size,
            global_size=cfg.global_embedding_size,
            hidden_sizes=cfg.update_hidden_sizes,
            num_message_passing_iterations=cfg.num_message_passing_iterations,
            rng=rng,
            use_layer_norm=cfg.use_layer_norm,
            use_residual=cfg.use_residual,
            aggregation=cfg.aggregation,
        )

        # One decoder head per task (multi-task, Section 3.4); a single-task
        # model is simply the special case of one head.  The decoder input is
        # an instruction-node embedding for the paper's per-instruction
        # readout, or the graph's global feature for the readout ablation.
        decoder_input_size = (
            cfg.node_embedding_size
            if cfg.readout == "per_instruction"
            else cfg.global_embedding_size
        )
        self.decoders: Dict[str, ResidualMLP] = {
            task: ResidualMLP(
                decoder_input_size,
                cfg.decoder_hidden_sizes,
                1,
                rng,
                use_layer_norm=cfg.use_layer_norm,
                use_residual=cfg.use_residual,
            )
            for task in self.tasks
        }

    # ------------------------------------------------------------------ #
    # Encoding.
    # ------------------------------------------------------------------ #
    def encode_blocks(self, blocks: Sequence[BasicBlock]) -> GraniteBatch:
        """Builds and packs the GRANITE graphs of ``blocks``.

        Per-block graphs are cached in an LRU keyed by the canonical block
        text, and whole packed batches are cached by their key tuple, so
        evaluation sweeps that predict the same blocks repeatedly skip graph
        construction entirely.
        """
        if not blocks:
            raise ValueError("cannot encode an empty list of blocks")
        keys = tuple(block.canonical_text() for block in blocks)
        cached_batch = self._batch_cache.get(keys)
        if cached_batch is not None:
            return cached_batch
        graphs = []
        for key, block in zip(keys, blocks):
            graph = self._graph_cache.get(key)
            if graph is None:
                graph = self.graph_builder.build(block)
                self._graph_cache.put(key, graph)
            graphs.append(graph)
        packed = pack_graphs(graphs, self.vocabulary)
        topology = GraphTopology(
            senders=packed.senders,
            receivers=packed.receivers,
            node_graph_ids=packed.node_graph_ids,
            edge_graph_ids=packed.edge_graph_ids,
            num_graphs=packed.num_graphs,
        )
        batch = GraniteBatch(graphs=packed, topology=topology)
        self._batch_cache.put(keys, batch)
        return batch

    def encode_caches(self):
        """The per-block graph cache and the packed-batch cache."""
        return [self._graph_cache, self._batch_cache]

    @property
    def encode_cache_stats(self) -> Dict[str, int]:
        """Hit/miss counters of the per-block graph cache (for benchmarks)."""
        return {
            "graph_hits": self._graph_cache.hits,
            "graph_misses": self._graph_cache.misses,
            "batch_hits": self._batch_cache.hits,
            "batch_misses": self._batch_cache.misses,
        }

    # ------------------------------------------------------------------ #
    # Forward pass.
    # ------------------------------------------------------------------ #
    def _process_graph(self, batch: GraniteBatch) -> GraphState:
        """Runs the input encoders and the graph network on a packed batch.

        Under ``no_grad`` every feature is a raw numpy array (the inference
        fast path); under gradient recording they are tape tensors.
        """
        graphs = batch.graphs
        grad = not fast_path_active()
        dtype = np.float64 if grad else active_dtype()
        node_features = self.node_embedding(graphs.node_token_ids)
        if graphs.num_edges > 0:
            edge_features = self.edge_embedding(graphs.edge_type_ids)
        else:
            zeros = np.zeros((0, self.config.edge_embedding_size), dtype=dtype)
            edge_features = Tensor(zeros) if grad else zeros
        if self.config.use_global_features:
            globals_input = Tensor(graphs.globals_features) if grad else graphs.globals_features
            global_features = self.global_encoder(globals_input)
        else:
            zeros = np.zeros(
                (graphs.num_graphs, self.config.global_embedding_size), dtype=dtype
            )
            global_features = Tensor(zeros) if grad else zeros
        state = GraphState(nodes=node_features, edges=edge_features, globals_=global_features)
        return self.graph_network(state, batch.topology)

    def embed_batch(self, batch: GraniteBatch) -> Tensor:
        """Returns the final per-instruction embeddings of the batch.

        This exposes the learned representation (useful for downstream tasks
        and for tests); :meth:`forward` applies the decoders on top.
        """
        processed = self._process_graph(batch)
        return gather_rows(processed.nodes, batch.graphs.instruction_node_indices)

    def forward(self, batch: GraniteBatch) -> Dict[str, Tensor]:
        """Predicts the throughput of every block, for every task.

        With the paper's ``per_instruction`` readout, the decoder computes
        the contribution of each instruction mnemonic node and contributions
        are summed per basic block (Section 3.3).  With the ``global``
        readout ablation, the decoder maps each graph's global feature
        directly to the block throughput.
        """
        graphs = batch.graphs
        processed = self._process_graph(batch)
        predictions: Dict[str, Tensor] = {}
        if self.config.readout == "per_instruction":
            instruction_embeddings = gather_rows(
                processed.nodes, graphs.instruction_node_indices
            )
            for task in self.tasks:
                contributions = self.decoders[task](instruction_embeddings)
                per_block = segment_sum(
                    contributions.reshape(-1),
                    graphs.instruction_graph_ids,
                    graphs.num_graphs,
                )
                predictions[task] = per_block * self.config.output_scale
        else:
            for task in self.tasks:
                per_block = self.decoders[task](processed.globals_).reshape(-1)
                predictions[task] = per_block * self.config.output_scale
        return predictions
