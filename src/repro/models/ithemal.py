"""The Ithemal and Ithemal+ baseline models.

Ithemal (Mendis et al. 2019) is the learned baseline the paper compares
against.  It is a hierarchical LSTM:

1. each instruction is tokenized (:mod:`repro.models.tokenizer`) and its
   tokens run through a first LSTM whose final state is the *instruction
   embedding*;
2. the instruction embeddings of a block run through a second LSTM whose
   final state is the *block embedding*;
3. the decoder maps the block embedding to the predicted throughput — a
   single dot product with a learned weight vector in vanilla Ithemal.

"Ithemal+" is the paper's extended baseline (Section 4, "Extensions to the
Ithemal model"): the dot-product decoder is replaced by the same multi-layer
residual MLP decoder used by GRANITE, and multi-task heads are supported.
Selecting between the two is a configuration switch
(:attr:`IthemalConfig.decoder`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.models.base import ThroughputModel
from repro.models.config import IthemalConfig
from repro.models.tokenizer import build_ithemal_vocabulary, tokenize_block
from repro.graph.vocabulary import Vocabulary
from repro.nn.layers import Embedding, ResidualMLP
from repro.nn.lstm import LSTM
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor, fused_ops_active, matmul, scatter_rows
from repro.utils.cache import LRUCache

__all__ = ["IthemalModel", "IthemalBatch"]


def _slot_indices(
    instruction_block_ids: np.ndarray,
    block_lengths: np.ndarray,
    max_instructions: int,
) -> np.ndarray:
    """Destination rows for re-packing instructions into padded blocks.

    Instruction ``i`` of the flat batch lands in row
    ``block * max_instructions + position_within_block`` of the padded
    ``[num_blocks * max_instructions, hidden]`` layout.  Computed from
    cumulative block counts in O(N) — ``instruction_block_ids`` lists each
    block's instructions contiguously in order (as ``encode_blocks``
    produces them), so the position within a block is the flat index minus
    the block's cumulative start.
    """
    starts = np.zeros(block_lengths.shape[0], dtype=np.int64)
    np.cumsum(block_lengths[:-1], out=starts[1:])
    positions = (
        np.arange(instruction_block_ids.shape[0], dtype=np.int64)
        - starts[instruction_block_ids]
    )
    return instruction_block_ids * max_instructions + positions


@dataclass
class IthemalBatch:
    """An encoded batch of blocks for the hierarchical LSTM.

    Attributes:
        token_ids: ``[total_instructions, max_tokens]`` padded token ids.
        token_lengths: ``[total_instructions]`` true token counts.
        instruction_block_ids: ``[total_instructions]`` block index of each
            instruction.
        block_lengths: ``[num_blocks]`` number of instructions per block.
        num_blocks: Number of basic blocks in the batch.
        max_instructions: Maximum instructions per block in this batch.
        slot_indices: ``[total_instructions]`` destination row of each
            instruction in the padded ``[num_blocks * max_instructions]``
            layout (precomputed once per batch; see :func:`_slot_indices`).
    """

    token_ids: np.ndarray
    token_lengths: np.ndarray
    instruction_block_ids: np.ndarray
    block_lengths: np.ndarray
    num_blocks: int
    max_instructions: int
    slot_indices: Optional[np.ndarray] = None


class IthemalModel(ThroughputModel):
    """Hierarchical-LSTM throughput estimator (Ithemal / Ithemal+).

    Args:
        config: Model hyper-parameters.  ``config.decoder`` selects the
            vanilla dot-product decoder or the Ithemal+ MLP decoder.
        vocabulary: Token vocabulary; defaults to the canonical vocabulary
            extended with the Ithemal delimiter tokens.
    """

    def __init__(
        self,
        config: Optional[IthemalConfig] = None,
        vocabulary: Optional[Vocabulary] = None,
    ) -> None:
        self.config = config or IthemalConfig()
        self.vocabulary = vocabulary or build_ithemal_vocabulary()
        self.tasks = tuple(self.config.tasks)
        self.inference_dtype = self.config.inference_dtype
        if not self.tasks:
            raise ValueError("IthemalModel needs at least one task")

        cfg = self.config
        # Per-block tokenization and padded-batch caches (see GraniteModel's
        # graph caches); both depend only on the block text, not the weights.
        self._token_cache: LRUCache[str, List[List[int]]] = LRUCache(cfg.encode_cache_size)
        self._batch_cache: LRUCache[Tuple[str, ...], IthemalBatch] = LRUCache(
            cfg.batch_cache_size
        )
        rng = np.random.default_rng(cfg.seed)
        self.token_embedding = Embedding(len(self.vocabulary), cfg.token_embedding_size, rng)
        self.instruction_lstm = LSTM(cfg.token_embedding_size, cfg.hidden_size, rng)
        self.block_lstm = LSTM(cfg.hidden_size, cfg.hidden_size, rng)

        if cfg.decoder == "dot_product":
            # Vanilla Ithemal: the prediction is a dot product of the block
            # embedding with a learned weight vector, one vector per task.
            self.decoder_weights: Dict[str, Parameter] = {
                task: Parameter(
                    rng.normal(0.0, 1.0 / np.sqrt(cfg.hidden_size), size=(cfg.hidden_size, 1)),
                    name=f"decoder_{task}",
                )
                for task in self.tasks
            }
            self.decoders: Dict[str, ResidualMLP] = {}
        else:
            # Ithemal+: the same residual MLP decoder as GRANITE, per task.
            self.decoder_weights = {}
            self.decoders = {
                task: ResidualMLP(
                    cfg.hidden_size,
                    cfg.decoder_hidden_sizes,
                    1,
                    rng,
                    use_layer_norm=cfg.use_layer_norm,
                    use_residual=True,
                )
                for task in self.tasks
            }

    # ------------------------------------------------------------------ #
    # Encoding.
    # ------------------------------------------------------------------ #
    def _tokenize_cached(self, key: str, block: BasicBlock) -> List[List[int]]:
        """Returns the per-instruction token id lists of ``block`` (cached)."""
        encoded = self._token_cache.get(key)
        if encoded is None:
            tokenized = tokenize_block(block)
            # Blocks may be empty in pathological cases; give them one
            # NOP-like dummy instruction of a single unknown token so shapes
            # stay valid.
            if not tokenized:
                tokenized = [[self.vocabulary.token_of(self.vocabulary.unknown_id)]]
            encoded = [self.vocabulary.encode(tokens) for tokens in tokenized]
            self._token_cache.put(key, encoded)
        return encoded

    def encode_blocks(self, blocks: Sequence[BasicBlock]) -> IthemalBatch:
        """Tokenizes and pads a batch of basic blocks (LRU cached)."""
        if not blocks:
            raise ValueError("cannot encode an empty list of blocks")
        keys = tuple(block.canonical_text() for block in blocks)
        cached_batch = self._batch_cache.get(keys)
        if cached_batch is not None:
            return cached_batch

        instruction_token_ids: List[List[int]] = []
        instruction_block_ids: List[int] = []
        block_lengths: List[int] = []
        for block_index, (key, block) in enumerate(zip(keys, blocks)):
            encoded_instructions = self._tokenize_cached(key, block)
            block_lengths.append(len(encoded_instructions))
            for ids in encoded_instructions:
                instruction_token_ids.append(ids)
                instruction_block_ids.append(block_index)

        max_tokens = max(len(ids) for ids in instruction_token_ids)
        token_ids = np.zeros((len(instruction_token_ids), max_tokens), dtype=np.int64)
        token_lengths = np.zeros(len(instruction_token_ids), dtype=np.int64)
        for row, ids in enumerate(instruction_token_ids):
            token_ids[row, : len(ids)] = ids
            token_lengths[row] = len(ids)

        instruction_block_id_array = np.array(instruction_block_ids, dtype=np.int64)
        block_length_array = np.array(block_lengths, dtype=np.int64)
        max_instructions = int(max(block_lengths))
        batch = IthemalBatch(
            token_ids=token_ids,
            token_lengths=token_lengths,
            instruction_block_ids=instruction_block_id_array,
            block_lengths=block_length_array,
            num_blocks=len(blocks),
            max_instructions=max_instructions,
            slot_indices=_slot_indices(
                instruction_block_id_array, block_length_array, max_instructions
            ),
        )
        self._batch_cache.put(keys, batch)
        return batch

    def encode_caches(self):
        """The per-block tokenization cache and the padded-batch cache."""
        return [self._token_cache, self._batch_cache]

    @property
    def encode_cache_stats(self) -> Dict[str, int]:
        """Hit/miss counters of the tokenization cache (for benchmarks)."""
        return {
            "token_hits": self._token_cache.hits,
            "token_misses": self._token_cache.misses,
            "batch_hits": self._batch_cache.hits,
            "batch_misses": self._batch_cache.misses,
        }

    # ------------------------------------------------------------------ #
    # Forward pass.
    # ------------------------------------------------------------------ #
    def embed_batch(self, batch: IthemalBatch) -> Tensor:
        """Returns the block embeddings ``[num_blocks, hidden_size]``."""
        # Level 1: token LSTM over every instruction of every block.
        token_features = self.token_embedding(batch.token_ids.reshape(-1)).reshape(
            batch.token_ids.shape[0], batch.token_ids.shape[1], self.config.token_embedding_size
        )
        _, instruction_embeddings = self.instruction_lstm(
            token_features, batch.token_lengths, need_outputs=False
        )

        # Re-pack instruction embeddings into a [num_blocks, max_instr, H]
        # padded tensor.  On the no-grad fast path this is a direct indexed
        # assignment; during training it is the scatter_rows primitive whose
        # backward is an O(N) gather.  The composed-tape fallback keeps the
        # original O(N^2) permutation-matrix matmul (same float values:
        # each output row is 1 * x + 0 * rest).
        num_instructions = instruction_embeddings.shape[0]
        num_blocks = batch.num_blocks
        max_instructions = batch.max_instructions
        hidden_size = self.config.hidden_size
        slots = batch.slot_indices
        if slots is None:
            slots = _slot_indices(
                batch.instruction_block_ids, batch.block_lengths, max_instructions
            )
        if isinstance(instruction_embeddings, np.ndarray):
            flat = np.zeros(
                (num_blocks * max_instructions, hidden_size),
                dtype=instruction_embeddings.dtype,
            )
            flat[slots] = instruction_embeddings
            packed = flat.reshape(num_blocks, max_instructions, hidden_size)
        elif fused_ops_active():
            packed = scatter_rows(
                instruction_embeddings, slots, num_blocks * max_instructions
            ).reshape(num_blocks, max_instructions, hidden_size)
        else:
            scatter = np.zeros(
                (num_blocks * max_instructions, num_instructions), dtype=np.float64
            )
            scatter[slots, np.arange(num_instructions, dtype=np.int64)] = 1.0
            packed = matmul(scatter, instruction_embeddings)
            packed = packed.reshape(num_blocks, max_instructions, hidden_size)

        # Level 2: block LSTM over the instruction embeddings.
        _, block_embeddings = self.block_lstm(
            packed, batch.block_lengths, need_outputs=False
        )
        return block_embeddings

    def forward(self, batch: IthemalBatch) -> Dict[str, Tensor]:
        """Predicts the throughput of every block for every task."""
        block_embeddings = self.embed_batch(batch)
        predictions: Dict[str, Tensor] = {}
        for task in self.tasks:
            if self.config.decoder == "dot_product":
                weight = self.decoder_weights[task]
                if isinstance(block_embeddings, np.ndarray):
                    # Stay on the raw-numpy fast path: a Parameter operand
                    # would pull the matmul back onto tape Tensors.
                    output = block_embeddings @ weight.data_as(block_embeddings.dtype)
                else:
                    output = matmul(block_embeddings, weight)
            else:
                output = self.decoders[task](block_embeddings)
            predictions[task] = output.reshape(-1) * self.config.output_scale
        return predictions
