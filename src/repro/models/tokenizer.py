"""Ithemal-style tokenization of basic blocks.

Ithemal presents each instruction to its first-level LSTM as a flat token
sequence: the mnemonic, a ``<S>`` delimiter, the source operand tokens, a
``<D>`` delimiter, the destination operand tokens and an ``<E>`` end marker
(Section 2.2 of the GRANITE paper, which describes the baseline).  Register
operands contribute their register name; immediate, floating-point immediate
and memory operands contribute shared special tokens; memory operands also
contribute the registers used in their address expression, which is how the
original Ithemal exposes address dependencies to the model.
"""

from __future__ import annotations

from typing import List

from repro.graph.types import SpecialToken
from repro.graph.vocabulary import Vocabulary, build_default_vocabulary
from repro.isa.basic_block import BasicBlock
from repro.isa.instructions import Instruction
from repro.isa.operands import Operand, OperandKind
from repro.isa.semantics import OperandAction, semantics_for

__all__ = [
    "SOURCE_DELIMITER",
    "DESTINATION_DELIMITER",
    "END_DELIMITER",
    "tokenize_instruction",
    "tokenize_block",
    "build_ithemal_vocabulary",
]

SOURCE_DELIMITER = "<S>"
DESTINATION_DELIMITER = "<D>"
END_DELIMITER = "<E>"

_DELIMITERS = (SOURCE_DELIMITER, DESTINATION_DELIMITER, END_DELIMITER)


def _operand_tokens(operand: Operand) -> List[str]:
    """Tokens contributed by one operand occurrence."""
    if operand.kind is OperandKind.REGISTER:
        return [operand.register.upper()]
    if operand.kind is OperandKind.IMMEDIATE:
        return [SpecialToken.IMMEDIATE.value]
    if operand.kind is OperandKind.FP_IMMEDIATE:
        return [SpecialToken.FP_IMMEDIATE.value]
    tokens: List[str] = []
    memory = operand.memory
    if memory.base is not None:
        tokens.append(memory.base.upper())
    if memory.index is not None:
        tokens.append(memory.index.upper())
    if memory.segment is not None:
        tokens.append(memory.segment.upper())
    tokens.append(SpecialToken.MEMORY_VALUE.value)
    return tokens


def tokenize_instruction(instruction: Instruction) -> List[str]:
    """Tokenizes one instruction in the Ithemal format.

    For example ``SBB EAX, EBX`` becomes
    ``["SBB", "<S>", "EAX", "EBX", "<D>", "EAX", "<E>"]``.
    """
    semantics = semantics_for(instruction)
    tokens: List[str] = list(instruction.prefixes)
    tokens.append(instruction.mnemonic)
    source_tokens: List[str] = []
    destination_tokens: List[str] = []
    for position, operand in enumerate(instruction.operands):
        action = semantics.action_for_operand(position)
        operand_tokens = _operand_tokens(operand)
        if operand.kind in (OperandKind.IMMEDIATE, OperandKind.FP_IMMEDIATE):
            source_tokens.extend(operand_tokens)
            continue
        if action in (OperandAction.READ, OperandAction.READ_WRITE):
            source_tokens.extend(operand_tokens)
        if action in (OperandAction.WRITE, OperandAction.READ_WRITE):
            destination_tokens.extend(operand_tokens)
    tokens.append(SOURCE_DELIMITER)
    tokens.extend(source_tokens)
    tokens.append(DESTINATION_DELIMITER)
    tokens.extend(destination_tokens)
    tokens.append(END_DELIMITER)
    return tokens


def tokenize_block(block: BasicBlock) -> List[List[str]]:
    """Tokenizes every instruction of a basic block."""
    return [tokenize_instruction(instruction) for instruction in block.instructions]


def build_ithemal_vocabulary() -> Vocabulary:
    """The canonical vocabulary extended with the Ithemal delimiters."""
    return build_default_vocabulary(extra_tokens=list(_DELIMITERS))
