"""Neural-network substrate: autodiff tensors, layers, losses, optimizers.

This subpackage replaces the TensorFlow 1.x runtime used by the original
GRANITE implementation with a small, dependency-free (numpy only)
reverse-mode autodiff engine and the layers the paper's models need.
"""

from repro.nn.layers import Dense, Embedding, LayerNorm, MLP, ResidualMLP, Sequential
from repro.nn.losses import (
    LOSS_FUNCTIONS,
    get_loss,
    huber_loss,
    mean_absolute_percentage_error,
    mean_squared_error,
    relative_huber_loss,
    relative_mean_squared_error,
)
from repro.nn.lstm import LSTM, LSTMCell
from repro.nn.module import (
    Module,
    Parameter,
    bump_parameter_version,
    parameter_version,
)
from repro.nn.optim import (
    Adam,
    Optimizer,
    SGD,
    clip_gradients_by_global_norm,
    global_gradient_norm,
)
from repro.nn.serialization import checkpoint_to_dict, load_checkpoint, save_checkpoint
from repro.nn.tensor import (
    SUPPORTED_DTYPES,
    Tensor,
    active_dtype,
    as_tensor,
    compute_dtype,
    concatenate,
    fast_path_active,
    gather_rows,
    is_grad_enabled,
    matmul,
    no_grad,
    raw,
    resolve_dtype,
    relu,
    segment_mean,
    segment_sum,
    sigmoid,
    stack,
    tanh,
    use_fast_path,
    where,
)

__all__ = [
    "Dense",
    "Embedding",
    "LayerNorm",
    "MLP",
    "ResidualMLP",
    "Sequential",
    "LOSS_FUNCTIONS",
    "get_loss",
    "huber_loss",
    "mean_absolute_percentage_error",
    "mean_squared_error",
    "relative_huber_loss",
    "relative_mean_squared_error",
    "LSTM",
    "LSTMCell",
    "Module",
    "Parameter",
    "Adam",
    "Optimizer",
    "SGD",
    "clip_gradients_by_global_norm",
    "global_gradient_norm",
    "checkpoint_to_dict",
    "load_checkpoint",
    "save_checkpoint",
    "SUPPORTED_DTYPES",
    "Tensor",
    "active_dtype",
    "as_tensor",
    "compute_dtype",
    "concatenate",
    "fast_path_active",
    "resolve_dtype",
    "gather_rows",
    "is_grad_enabled",
    "matmul",
    "no_grad",
    "parameter_version",
    "bump_parameter_version",
    "raw",
    "relu",
    "segment_mean",
    "segment_sum",
    "sigmoid",
    "stack",
    "tanh",
    "use_fast_path",
    "where",
]
