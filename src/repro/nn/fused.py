"""Fused tape operations with hand-written backwards (training fast path).

The define-by-run tape in :mod:`repro.nn.tensor` composes every layer out of
elementwise primitives, which is easy to verify but records a closure per
primitive: a single LSTM time step allocates ~15 tape nodes (gate slicing,
two sigmoids, a tanh, elementwise combines, masking), and a Dense layer
three to four.  During training the Python/allocation overhead of those
nodes dominates the actual numpy work for all but the largest models.

The ops below collapse each hot composite into **one** tape node whose
backward is written by hand against the stashed forward intermediates:

* :func:`fused_dense` — ``activation(x @ W + b)``;
* :func:`fused_layer_norm` — LayerNorm over the last axis;
* :func:`fused_lstm_step` — a full LSTM cell step (optionally
  length-masked), returning the ``[batch, 2 * hidden]`` concatenation of
  the new hidden and cell states (slice it with basic indexing, whose
  backward is a cheap in-place region add).

Every fused forward replicates the float arithmetic of the composed ops it
replaces operation-for-operation, so switching fusion on and off
(:class:`repro.nn.tensor.use_fused_ops`) changes no forward bit; the
backwards are algebraically identical but may reorder float summations.
All of them are covered by the numeric gradient checks in
``tests/test_nn_gradcheck.py`` via :mod:`repro.testing.gradcheck`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.tensor import ArrayLike, Tensor, _unbroadcast, as_tensor

__all__ = ["fused_dense", "fused_layer_norm", "fused_lstm_step"]

_ACTIVATIONS = (None, "relu", "tanh", "sigmoid")


def fused_dense(
    inputs: ArrayLike,
    weight: ArrayLike,
    bias: Optional[ArrayLike] = None,
    activation: Optional[str] = None,
) -> Tensor:
    """``activation(inputs @ weight + bias)`` as a single tape node.

    Replaces the composed matmul → add → activation chain of
    :class:`repro.nn.layers.Dense` (three tape nodes and closures) with one
    node; the backward computes the input/weight/bias gradients directly
    from the stashed pre-activation (ReLU) or output (tanh/sigmoid).
    """
    if activation not in _ACTIVATIONS:
        raise ValueError(f"unsupported activation {activation!r}")
    inputs = as_tensor(inputs)
    weight = as_tensor(weight)
    bias = as_tensor(bias) if bias is not None else None

    pre = inputs.data @ weight.data
    if bias is not None:
        pre = pre + bias.data
    if activation == "relu":
        out = np.maximum(pre, 0.0)
    elif activation == "tanh":
        out = np.tanh(pre)
    elif activation == "sigmoid":
        out = 1.0 / (1.0 + np.exp(-pre))
    else:
        out = pre

    def backward(gradient: np.ndarray) -> None:
        if activation == "relu":
            delta = gradient * (pre > 0.0)
        elif activation == "tanh":
            delta = gradient * (1.0 - out**2)
        elif activation == "sigmoid":
            delta = gradient * out * (1.0 - out)
        else:
            delta = gradient
        inputs._accumulate(
            _unbroadcast(delta @ np.swapaxes(weight.data, -1, -2), inputs.shape)
        )
        weight._accumulate(
            _unbroadcast(np.swapaxes(inputs.data, -1, -2) @ delta, weight.shape)
        )
        if bias is not None:
            bias._accumulate(_unbroadcast(delta, bias.shape))

    parents = (inputs, weight) if bias is None else (inputs, weight, bias)
    return Tensor._make(out, parents, backward)


def fused_layer_norm(
    inputs: ArrayLike,
    gain: ArrayLike,
    offset: ArrayLike,
    epsilon: float = 1e-5,
) -> Tensor:
    """LayerNorm over the last axis as a single tape node.

    The composed implementation records ~8 nodes (mean, centering, variance,
    rsqrt, two scales, an add); this one stashes the normalised activations
    and the rsqrt factor and applies the standard LayerNorm gradient
    ``dx = scale * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat))``.
    """
    inputs = as_tensor(inputs)
    gain = as_tensor(gain)
    offset = as_tensor(offset)

    size = inputs.data.shape[-1]
    # Same arithmetic sequence as the composed path (sum * 1/n, two-pass
    # variance), so the fused forward is bit-identical to the composed one.
    mean = inputs.data.sum(axis=-1, keepdims=True) * (1.0 / size)
    centered = inputs.data - mean
    variance = (centered * centered).sum(axis=-1, keepdims=True) * (1.0 / size)
    scale = (variance + epsilon) ** -0.5
    normalized = centered * scale
    out = normalized * gain.data + offset.data

    def backward(gradient: np.ndarray) -> None:
        gain._accumulate(_unbroadcast(gradient * normalized, gain.shape))
        offset._accumulate(_unbroadcast(gradient, offset.shape))
        if not inputs.requires_grad:
            return
        delta = gradient * gain.data
        mean_delta = delta.mean(axis=-1, keepdims=True)
        mean_delta_normalized = (delta * normalized).mean(axis=-1, keepdims=True)
        inputs._accumulate(
            scale * (delta - mean_delta - normalized * mean_delta_normalized)
        )

    return Tensor._make(out, (inputs, gain, offset), backward)


def fused_lstm_step(
    inputs: ArrayLike,
    hidden: ArrayLike,
    cell: ArrayLike,
    weight_input: ArrayLike,
    weight_hidden: ArrayLike,
    bias: ArrayLike,
    mask: Optional[np.ndarray] = None,
) -> Tensor:
    """One LSTM cell step as a single tape node.

    Computes the standard gate formulation (input/forget/candidate/output,
    gate order matching :class:`repro.nn.lstm.LSTMCell`) and returns the
    concatenation ``[new_hidden | new_cell]`` of shape
    ``[batch, 2 * hidden_size]`` — callers slice it with basic indexing,
    which costs one cheap region-add node per slice.  When ``mask`` (a
    ``[batch]`` or ``[batch, 1]`` boolean array) is given, masked-out rows
    keep their previous state and receive no gradient through this step's
    gates — exactly the ``where``-based length masking of the composed
    :class:`repro.nn.lstm.LSTM` loop.
    """
    inputs = as_tensor(inputs)
    hidden = as_tensor(hidden)
    cell = as_tensor(cell)
    weight_input = as_tensor(weight_input)
    weight_hidden = as_tensor(weight_hidden)
    bias = as_tensor(bias)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool).reshape(inputs.data.shape[0], 1)

    size = hidden.data.shape[-1]
    pre = inputs.data @ weight_input.data
    pre += hidden.data @ weight_hidden.data
    pre += bias.data
    input_gate = 1.0 / (1.0 + np.exp(-pre[:, 0 * size : 1 * size]))
    forget_gate = 1.0 / (1.0 + np.exp(-pre[:, 1 * size : 2 * size]))
    candidate = np.tanh(pre[:, 2 * size : 3 * size])
    output_gate = 1.0 / (1.0 + np.exp(-pre[:, 3 * size : 4 * size]))
    new_cell = forget_gate * cell.data + input_gate * candidate
    cell_tanh = np.tanh(new_cell)
    new_hidden = output_gate * cell_tanh
    if mask is not None:
        new_hidden = np.where(mask, new_hidden, hidden.data)
        new_cell_out = np.where(mask, new_cell, cell.data)
    else:
        new_cell_out = new_cell
    out = np.concatenate([new_hidden, new_cell_out], axis=1)

    def backward(gradient: np.ndarray) -> None:
        d_hidden = gradient[:, :size]
        d_cell = gradient[:, size:]
        if mask is not None:
            # Masked rows pass their gradient straight to the previous state.
            d_hidden_passthrough = np.where(mask, 0.0, d_hidden)
            d_cell_passthrough = np.where(mask, 0.0, d_cell)
            d_hidden = np.where(mask, d_hidden, 0.0)
            d_cell = np.where(mask, d_cell, 0.0)
        d_output_gate = d_hidden * cell_tanh
        d_new_cell = d_cell + d_hidden * output_gate * (1.0 - cell_tanh**2)
        d_pre = np.empty_like(pre)
        d_pre[:, 0 * size : 1 * size] = (
            d_new_cell * candidate * input_gate * (1.0 - input_gate)
        )
        d_pre[:, 1 * size : 2 * size] = (
            d_new_cell * cell.data * forget_gate * (1.0 - forget_gate)
        )
        d_pre[:, 2 * size : 3 * size] = d_new_cell * input_gate * (1.0 - candidate**2)
        d_pre[:, 3 * size : 4 * size] = (
            d_output_gate * output_gate * (1.0 - output_gate)
        )
        inputs._accumulate(d_pre @ weight_input.data.T)
        d_hidden_previous = d_pre @ weight_hidden.data.T
        d_cell_previous = d_new_cell * forget_gate
        if mask is not None:
            d_hidden_previous += d_hidden_passthrough
            d_cell_previous += d_cell_passthrough
        hidden._accumulate(d_hidden_previous)
        cell._accumulate(d_cell_previous)
        weight_input._accumulate(inputs.data.T @ d_pre)
        weight_hidden._accumulate(hidden.data.T @ d_pre)
        bias._accumulate(d_pre.sum(axis=0))

    parents = (inputs, hidden, cell, weight_input, weight_hidden, bias)
    return Tensor._make(out, parents, backward)
