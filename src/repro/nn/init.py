"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so that every
experiment in the reproduction is deterministic given its seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "glorot_uniform",
    "he_normal",
    "orthogonal",
    "zeros",
    "normal_embedding",
]


def glorot_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for dense layers."""
    fan_in = shape[0] if len(shape) > 1 else shape[0]
    fan_out = shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal initialisation, appropriate for ReLU update networks."""
    fan_in = shape[0] if len(shape) > 1 else shape[0]
    scale = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, scale, size=shape)


def orthogonal(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialisation used for LSTM recurrent weights."""
    rows, cols = shape
    size = max(rows, cols)
    matrix = rng.normal(0.0, 1.0, size=(size, size))
    q, _ = np.linalg.qr(matrix)
    return q[:rows, :cols]


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zeros initialisation for biases."""
    return np.zeros(shape, dtype=np.float64)


def normal_embedding(
    shape: Tuple[int, ...], rng: np.random.Generator, scale: float = 0.1
) -> np.ndarray:
    """Small-variance normal initialisation for embedding tables."""
    return rng.normal(0.0, scale, size=shape)
