"""Standard neural-network layers.

These are the building blocks of the GRANITE and Ithemal models: dense
layers, multi-layer feed-forward ReLU networks, layer normalisation, learned
embedding tables, and the residual MLP with layer normalisation at the input
which the paper uses for every update function and decoder (Section 3.2/3.3,
Table 4: "Layer/Decoder Normalization = True", "Residual Connections =
True").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn import init
from repro.nn.fused import fused_dense, fused_layer_norm
from repro.nn.module import Module, Parameter
from repro.nn.tensor import (
    Tensor,
    active_dtype,
    as_tensor,
    fast_path_active,
    fused_ops_active,
    raw,
    sigmoid,
)

__all__ = [
    "Dense",
    "MLP",
    "LayerNorm",
    "Embedding",
    "ResidualMLP",
    "Sequential",
]


class Dense(Module):
    """A fully connected layer ``y = activation(x W + b)``.

    Args:
        input_size: Number of input features.
        output_size: Number of output features.
        rng: Random generator used for weight initialisation.
        activation: ``"relu"``, ``"tanh"``, ``"sigmoid"`` or ``None``.
        use_bias: Whether to add a learned bias vector.
    """

    def __init__(
        self,
        input_size: int,
        output_size: int,
        rng: np.random.Generator,
        activation: Optional[str] = None,
        use_bias: bool = True,
    ) -> None:
        if input_size <= 0 or output_size <= 0:
            raise ValueError("Dense layer sizes must be positive")
        if activation not in (None, "relu", "tanh", "sigmoid"):
            raise ValueError(f"unsupported activation {activation!r}")
        initializer = init.he_normal if activation == "relu" else init.glorot_uniform
        self.weight = Parameter(initializer((input_size, output_size), rng), name="weight")
        self.bias = Parameter(init.zeros((output_size,)), name="bias") if use_bias else None
        self.activation = activation
        self.input_size = input_size
        self.output_size = output_size

    def forward(self, inputs: Tensor) -> Tensor:
        if fast_path_active():
            # Inference fast path: raw numpy, in-place where possible, in
            # the active compute dtype (weights cast once per weight update,
            # see Parameter.data_as).
            dtype = active_dtype()
            outputs = raw(inputs) @ self.weight.data_as(dtype)
            if self.bias is not None:
                outputs += self.bias.data_as(dtype)
            if self.activation == "relu":
                np.maximum(outputs, 0.0, out=outputs)
            elif self.activation == "tanh":
                np.tanh(outputs, out=outputs)
            elif self.activation == "sigmoid":
                outputs = sigmoid(outputs)
            return outputs
        if fused_ops_active():
            # Training fast path: one fused tape node instead of the
            # composed matmul -> add -> activation chain (same float
            # arithmetic, hand-written backward).
            return fused_dense(inputs, self.weight, self.bias, self.activation)
        inputs = as_tensor(inputs)
        outputs = inputs @ self.weight
        if self.bias is not None:
            outputs = outputs + self.bias
        if self.activation == "relu":
            outputs = outputs.relu()
        elif self.activation == "tanh":
            outputs = outputs.tanh()
        elif self.activation == "sigmoid":
            outputs = outputs.sigmoid()
        return outputs


class Sequential(Module):
    """Applies a list of modules in order."""

    def __init__(self, layers: Sequence[Module]) -> None:
        self.layers = list(layers)

    def forward(self, inputs: Tensor) -> Tensor:
        outputs = inputs
        for layer in self.layers:
            outputs = layer(outputs)
        return outputs


class MLP(Module):
    """A multi-layer feed-forward ReLU network.

    The paper uses two-layer 256-wide ReLU networks for every update function
    and decoder (Table 4).  Hidden layers use ReLU; the output layer is
    linear unless ``output_activation`` says otherwise.

    Args:
        input_size: Number of input features.
        hidden_sizes: Sizes of the hidden layers.
        output_size: Number of output features.
        rng: Random generator for initialisation.
        output_activation: Optional activation applied to the final layer.
    """

    def __init__(
        self,
        input_size: int,
        hidden_sizes: Sequence[int],
        output_size: int,
        rng: np.random.Generator,
        output_activation: Optional[str] = None,
    ) -> None:
        sizes = [input_size] + list(hidden_sizes) + [output_size]
        layers: List[Dense] = []
        for index in range(len(sizes) - 1):
            is_last = index == len(sizes) - 2
            activation = output_activation if is_last else "relu"
            layers.append(Dense(sizes[index], sizes[index + 1], rng, activation=activation))
        self.layers = layers
        self.input_size = input_size
        self.output_size = output_size

    def forward(self, inputs: Tensor) -> Tensor:
        outputs = raw(inputs) if fast_path_active() else as_tensor(inputs)
        for layer in self.layers:
            outputs = layer(outputs)
        return outputs


class LayerNorm(Module):
    """Layer normalisation (Ba et al. 2016) over the last axis.

    The paper's ablation (Section 5.2) shows layer normalisation is essential
    for the stability and accuracy of GRANITE; it is applied to the inputs of
    every update network and decoder.
    """

    #: Epsilon floor applied when normalising in float32.  The spacing of
    #: float32 around 1.0 is ~1.2e-7, so a variance computed from float32
    #: features carries rounding noise of that order; an epsilon far below
    #: it (some configs use 1e-8 and tighter) no longer regularises the
    #: rsqrt and near-constant features blow up.  float64 keeps whatever
    #: epsilon was configured.
    FLOAT32_EPSILON_FLOOR = 1e-5

    def __init__(self, size: int, epsilon: float = 1e-5) -> None:
        if size <= 0:
            raise ValueError("LayerNorm size must be positive")
        self.gain = Parameter(np.ones((size,), dtype=np.float64), name="gain")
        self.offset = Parameter(np.zeros((size,), dtype=np.float64), name="offset")
        self.epsilon = float(epsilon)
        self.size = size

    def epsilon_for(self, dtype) -> float:
        """The dtype-aware epsilon actually added to the variance."""
        if np.dtype(dtype) == np.float32:
            return max(self.epsilon, self.FLOAT32_EPSILON_FLOOR)
        return self.epsilon

    def forward(self, inputs: Tensor) -> Tensor:
        if fast_path_active():
            array = raw(inputs)
            dtype = array.dtype
            if dtype == np.float64:
                mean = array.mean(axis=-1, keepdims=True)
                centered = array - mean
                if centered.ndim == 2:
                    # einsum computes the row-wise sum of squares in one
                    # pass, noticeably faster than materialising centered**2.
                    variance = np.einsum("ij,ij->i", centered, centered)[:, None]
                    variance /= centered.shape[-1]
                else:
                    variance = (centered * centered).mean(axis=-1, keepdims=True)
                scale = (variance + self.epsilon) ** -0.5
            else:
                # float32 inference: the mean and the sum of squares are
                # reductions over the feature axis, where float32 suffers
                # catastrophic cancellation on near-constant features (a
                # single-precision two-pass variance can even come out
                # negative).  Accumulate both in float64, then fold the
                # rsqrt factor back to float32 — the per-feature work stays
                # single precision, only the [rows, 1] statistics don't.
                mean = array.mean(axis=-1, keepdims=True, dtype=np.float64)
                centered = array - mean.astype(dtype)
                if centered.ndim == 2:
                    variance = np.einsum(
                        "ij,ij->i", centered, centered, dtype=np.float64
                    )[:, None]
                    variance /= centered.shape[-1]
                else:
                    variance = (centered * centered).mean(
                        axis=-1, keepdims=True, dtype=np.float64
                    )
                scale = ((variance + self.epsilon_for(dtype)) ** -0.5).astype(dtype)
            centered *= scale
            centered *= self.gain.data_as(dtype)
            centered += self.offset.data_as(dtype)
            return centered
        if fused_ops_active():
            # Training fast path: a single fused tape node with the
            # closed-form LayerNorm backward (composed path records ~8).
            return fused_layer_norm(inputs, self.gain, self.offset, self.epsilon)
        inputs = as_tensor(inputs)
        mean = inputs.mean(axis=-1, keepdims=True)
        centered = inputs - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered * ((variance + self.epsilon) ** -0.5)
        return normalized * self.gain + self.offset


class Embedding(Module):
    """A learned embedding table.

    Every assembly-language token associated with a graph node, and every
    edge type, gets a learnable embedding vector (Section 3.2).
    """

    def __init__(self, num_embeddings: int, embedding_size: int, rng: np.random.Generator) -> None:
        if num_embeddings <= 0 or embedding_size <= 0:
            raise ValueError("Embedding sizes must be positive")
        self.table = Parameter(
            init.normal_embedding((num_embeddings, embedding_size), rng), name="table"
        )
        self.num_embeddings = num_embeddings
        self.embedding_size = embedding_size

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        if fast_path_active():
            return self.table.data_as(active_dtype())[indices]
        return self.table.gather_rows(indices)


class ResidualMLP(Module):
    """The paper's update function: LayerNorm → MLP, with a residual connection.

    "employing multi-layer feed forward ReLU networks with residual
    connections and layer normalization at input as update functions"
    (Section 3.2).  When the input and output sizes differ, the residual
    branch is a learned linear projection.

    Args:
        input_size: Number of input features.
        hidden_sizes: Hidden layer sizes of the MLP.
        output_size: Number of output features.
        rng: Random generator for initialisation.
        use_layer_norm: Disable to reproduce the layer-norm ablation.
        use_residual: Disable to reproduce the residual ablation.
    """

    def __init__(
        self,
        input_size: int,
        hidden_sizes: Sequence[int],
        output_size: int,
        rng: np.random.Generator,
        use_layer_norm: bool = True,
        use_residual: bool = True,
    ) -> None:
        self.layer_norm = LayerNorm(input_size) if use_layer_norm else None
        self.mlp = MLP(input_size, hidden_sizes, output_size, rng)
        self.use_residual = use_residual
        if use_residual and input_size != output_size:
            self.projection: Optional[Dense] = Dense(
                input_size, output_size, rng, activation=None, use_bias=False
            )
        else:
            self.projection = None
        self.input_size = input_size
        self.output_size = output_size

    def forward(self, inputs: Tensor) -> Tensor:
        inputs = raw(inputs) if fast_path_active() else as_tensor(inputs)
        hidden = self.layer_norm(inputs) if self.layer_norm is not None else inputs
        outputs = self.mlp(hidden)
        if self.use_residual:
            residual = self.projection(inputs) if self.projection is not None else inputs
            outputs = outputs + residual
        return outputs
