"""Loss functions for throughput regression.

The paper trains with Mean Absolute Percentage Error (MAPE) and, in the loss
ablation of Table 9, compares against mean squared error and Huber loss in
both absolute and relative (normalised by the ground truth) variants.  All
five losses are implemented here and a registry maps their paper names to
the implementations so the Table 9 benchmark can sweep them.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.nn.tensor import Tensor, as_tensor, where

__all__ = [
    "mean_absolute_percentage_error",
    "mean_squared_error",
    "relative_mean_squared_error",
    "huber_loss",
    "relative_huber_loss",
    "LOSS_FUNCTIONS",
    "get_loss",
]

#: Small constant guarding divisions by the ground-truth throughput, which is
#: strictly positive in both datasets but may be tiny for degenerate blocks.
_EPSILON = 1e-6

#: Targets with absolute value at or below this threshold are excluded from
#: every relative loss.  Without the guard a single zero-throughput target
#: contributes ``|error| / epsilon`` (order 1e6) and silently poisons the
#: Table 5/6 metrics; such targets carry no usable relative-error signal.
ZERO_TARGET_THRESHOLD = 1e-6


def _valid_target_weights(actual: Tensor) -> np.ndarray:
    """Weights that average over non-zero targets only.

    Returns an array shaped like ``actual`` whose entries are
    ``1 / num_valid`` for targets with ``|target| > ZERO_TARGET_THRESHOLD``
    and ``0.0`` for (near-)zero targets, so that
    ``(per_element_loss * weights).sum()`` is the mean over valid targets.
    When every target is zero the weights are all zero and the loss
    degenerates to 0, which keeps training finite instead of exploding.
    """
    valid = np.abs(actual.numpy()) > ZERO_TARGET_THRESHOLD
    count = valid.sum()
    if count == 0:
        return np.zeros_like(valid, dtype=np.float64)
    return valid.astype(np.float64) / float(count)


def mean_absolute_percentage_error(predicted: Tensor, actual: Tensor) -> Tensor:
    """MAPE: ``mean(|actual - predicted| / |actual|)`` over non-zero targets.

    This is the training loss of both GRANITE and Ithemal (Section 4).  The
    value is returned as a fraction (0.069 for 6.9 %).  Zero-throughput
    targets are excluded from the mean (see :data:`ZERO_TARGET_THRESHOLD`);
    without the guard each contributed an ``|error| / epsilon`` term of
    order 1e6.
    """
    predicted = as_tensor(predicted)
    actual = as_tensor(actual)
    weights = _valid_target_weights(actual)
    denominator = actual.abs() + _EPSILON
    errors = (actual - predicted).abs() / denominator
    return (errors * Tensor(weights)).sum()


def mean_squared_error(predicted: Tensor, actual: Tensor) -> Tensor:
    """Plain mean squared error on the absolute throughput values."""
    predicted = as_tensor(predicted)
    actual = as_tensor(actual)
    difference = actual - predicted
    return (difference * difference).mean()


def relative_mean_squared_error(predicted: Tensor, actual: Tensor) -> Tensor:
    """MSE of the error normalised by the ground truth, over non-zero targets."""
    predicted = as_tensor(predicted)
    actual = as_tensor(actual)
    weights = _valid_target_weights(actual)
    relative = (actual - predicted) / (actual.abs() + _EPSILON)
    return (relative * relative * Tensor(weights)).sum()


def _huber_elements(predicted: Tensor, actual: Tensor, delta: float) -> Tensor:
    """Per-element Huber penalty with threshold ``delta``."""
    difference = actual - predicted
    absolute = difference.abs()
    quadratic = difference * difference * 0.5
    linear = absolute * delta - 0.5 * delta * delta
    return where(absolute.numpy() <= delta, quadratic, linear)


def huber_loss(predicted: Tensor, actual: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss with threshold ``delta`` (the paper uses delta = 1)."""
    predicted = as_tensor(predicted)
    actual = as_tensor(actual)
    return _huber_elements(predicted, actual, delta).mean()


def relative_huber_loss(predicted: Tensor, actual: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss on the relative error, averaged over non-zero targets."""
    predicted = as_tensor(predicted)
    actual = as_tensor(actual)
    weights = _valid_target_weights(actual)
    denominator = actual.abs() + _EPSILON
    relative_predicted = predicted / denominator
    relative_actual = actual / denominator
    elements = _huber_elements(relative_predicted, relative_actual, delta=delta)
    return (elements * Tensor(weights)).sum()


#: Registry keyed by the loss names used in Table 9 of the paper.
LOSS_FUNCTIONS: Dict[str, Callable[[Tensor, Tensor], Tensor]] = {
    "mape": mean_absolute_percentage_error,
    "mse": mean_squared_error,
    "relative_mse": relative_mean_squared_error,
    "huber": huber_loss,
    "relative_huber": relative_huber_loss,
}


def get_loss(name: str) -> Callable[[Tensor, Tensor], Tensor]:
    """Looks up a loss function by its Table 9 name."""
    key = name.lower()
    if key not in LOSS_FUNCTIONS:
        raise KeyError(
            f"unknown loss {name!r}; available: {sorted(LOSS_FUNCTIONS)}"
        )
    return LOSS_FUNCTIONS[key]
