"""Loss functions for throughput regression.

The paper trains with Mean Absolute Percentage Error (MAPE) and, in the loss
ablation of Table 9, compares against mean squared error and Huber loss in
both absolute and relative (normalised by the ground truth) variants.  All
five losses are implemented here and a registry maps their paper names to
the implementations so the Table 9 benchmark can sweep them.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.nn.tensor import Tensor, as_tensor, where

__all__ = [
    "mean_absolute_percentage_error",
    "mean_squared_error",
    "relative_mean_squared_error",
    "huber_loss",
    "relative_huber_loss",
    "LOSS_FUNCTIONS",
    "get_loss",
]

#: Small constant guarding divisions by the ground-truth throughput, which is
#: strictly positive in both datasets but may be tiny for degenerate blocks.
_EPSILON = 1e-6


def mean_absolute_percentage_error(predicted: Tensor, actual: Tensor) -> Tensor:
    """MAPE: ``mean(|actual - predicted| / |actual|)``.

    This is the training loss of both GRANITE and Ithemal (Section 4).  The
    value is returned as a fraction (0.069 for 6.9 %).
    """
    predicted = as_tensor(predicted)
    actual = as_tensor(actual)
    denominator = actual.abs() + _EPSILON
    return ((actual - predicted).abs() / denominator).mean()


def mean_squared_error(predicted: Tensor, actual: Tensor) -> Tensor:
    """Plain mean squared error on the absolute throughput values."""
    predicted = as_tensor(predicted)
    actual = as_tensor(actual)
    difference = actual - predicted
    return (difference * difference).mean()


def relative_mean_squared_error(predicted: Tensor, actual: Tensor) -> Tensor:
    """MSE of the error normalised by the ground-truth value."""
    predicted = as_tensor(predicted)
    actual = as_tensor(actual)
    relative = (actual - predicted) / (actual.abs() + _EPSILON)
    return (relative * relative).mean()


def huber_loss(predicted: Tensor, actual: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss with threshold ``delta`` (the paper uses delta = 1)."""
    predicted = as_tensor(predicted)
    actual = as_tensor(actual)
    difference = actual - predicted
    absolute = difference.abs()
    quadratic = difference * difference * 0.5
    linear = absolute * delta - 0.5 * delta * delta
    return where(absolute.numpy() <= delta, quadratic, linear).mean()


def relative_huber_loss(predicted: Tensor, actual: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss applied to the relative error."""
    predicted = as_tensor(predicted)
    actual = as_tensor(actual)
    relative_predicted = predicted / (actual.abs() + _EPSILON)
    relative_actual = actual / (actual.abs() + _EPSILON)
    return huber_loss(relative_predicted, relative_actual, delta=delta)


#: Registry keyed by the loss names used in Table 9 of the paper.
LOSS_FUNCTIONS: Dict[str, Callable[[Tensor, Tensor], Tensor]] = {
    "mape": mean_absolute_percentage_error,
    "mse": mean_squared_error,
    "relative_mse": relative_mean_squared_error,
    "huber": huber_loss,
    "relative_huber": relative_huber_loss,
}


def get_loss(name: str) -> Callable[[Tensor, Tensor], Tensor]:
    """Looks up a loss function by its Table 9 name."""
    key = name.lower()
    if key not in LOSS_FUNCTIONS:
        raise KeyError(
            f"unknown loss {name!r}; available: {sorted(LOSS_FUNCTIONS)}"
        )
    return LOSS_FUNCTIONS[key]
