"""LSTM layers used by the Ithemal baseline.

Ithemal (Mendis et al. 2019) is a two-level LSTM: the first level consumes
the tokens of each instruction and produces an instruction embedding, the
second level consumes the instruction embeddings and produces a basic-block
embedding.  This module provides the :class:`LSTMCell` and a convenience
:class:`LSTM` that runs a cell over a padded batch of sequences with an
explicit length mask, which is what the re-implemented baseline uses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.nn import init
from repro.nn.fused import fused_lstm_step
from repro.nn.module import Module, Parameter
from repro.nn.tensor import (
    Tensor,
    active_dtype,
    as_tensor,
    concatenate,
    fast_path_active,
    fused_ops_active,
    raw,
    sigmoid,
    where,
)

#: States are tape tensors while gradients are recorded and raw arrays on
#: the no-grad fast path (see :meth:`LSTMCell.initial_state`).
State = Union[Tensor, np.ndarray]

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM cell with the standard gate formulation.

    The forget gate bias is initialised to one, the common trick to ease
    gradient flow early in training.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("LSTM sizes must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        gate_size = 4 * hidden_size
        self.weight_input = Parameter(
            init.glorot_uniform((input_size, gate_size), rng), name="weight_input"
        )
        self.weight_hidden = Parameter(
            np.concatenate(
                [init.orthogonal((hidden_size, hidden_size), rng) for _ in range(4)], axis=1
            ),
            name="weight_hidden",
        )
        bias = np.zeros((gate_size,), dtype=np.float64)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate bias
        self.bias = Parameter(bias, name="bias")

    def forward(
        self, inputs: Tensor, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        """Runs one step.

        Args:
            inputs: ``[batch, input_size]`` input at this time step.
            state: ``(hidden, cell)`` tensors of shape ``[batch, hidden_size]``.

        Returns:
            ``(hidden, (hidden, cell))`` for the next step.
        """
        hidden_state, cell_state = state
        if fast_path_active():
            dtype = active_dtype()
            gates = raw(inputs) @ self.weight_input.data_as(dtype)
            gates += raw(hidden_state) @ self.weight_hidden.data_as(dtype)
            gates += self.bias.data_as(dtype)
            size = self.hidden_size
            input_gate = sigmoid(gates[:, 0 * size : 1 * size])
            forget_gate = sigmoid(gates[:, 1 * size : 2 * size])
            candidate = np.tanh(gates[:, 2 * size : 3 * size])
            output_gate = sigmoid(gates[:, 3 * size : 4 * size])
            new_cell = forget_gate * raw(cell_state) + input_gate * candidate
            new_hidden = output_gate * np.tanh(new_cell)
            return new_hidden, (new_hidden, new_cell)
        if fused_ops_active():
            # Training fast path: one fused tape node for the whole step
            # plus two cheap basic-index slices, instead of ~15 composed
            # nodes (per-gate slicing, sigmoids, tanh, combines).
            state = fused_lstm_step(
                inputs,
                hidden_state,
                cell_state,
                self.weight_input,
                self.weight_hidden,
                self.bias,
            )
            size = self.hidden_size
            new_hidden = state[:, :size]
            new_cell = state[:, size:]
            return new_hidden, (new_hidden, new_cell)
        gates = inputs @ self.weight_input + hidden_state @ self.weight_hidden + self.bias
        size = self.hidden_size
        input_gate = gates[:, 0 * size : 1 * size].sigmoid()
        forget_gate = gates[:, 1 * size : 2 * size].sigmoid()
        candidate = gates[:, 2 * size : 3 * size].tanh()
        output_gate = gates[:, 3 * size : 4 * size].sigmoid()
        new_cell = forget_gate * cell_state + input_gate * candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, (new_hidden, new_cell)

    def initial_state(self, batch_size: int) -> Tuple[State, State]:
        """Returns an all-zeros ``(hidden, cell)`` state.

        Tape :class:`Tensor` wrappers are only allocated when an operand
        could actually join a tape; on the no-grad numpy fast path the state
        is a pair of raw arrays, which the cell's fast path consumes
        directly.  (The tape-on-``no_grad`` combination —
        ``use_fast_path(False)`` inference — still gets Tensors, because the
        composed ops mix Tensor and ndarray operands left-to-right.)
        """
        shape = (batch_size, self.hidden_size)
        if fast_path_active():
            # Allocate in the active compute dtype: a float64 zero state
            # would silently upcast every step of a float32 forward.
            dtype = active_dtype()
            return np.zeros(shape, dtype=dtype), np.zeros(shape, dtype=dtype)
        return (
            Tensor(np.zeros(shape, dtype=np.float64)),
            Tensor(np.zeros(shape, dtype=np.float64)),
        )


class LSTM(Module):
    """Runs an :class:`LSTMCell` over a padded batch of sequences.

    Args:
        input_size: Feature size of each sequence element.
        hidden_size: LSTM state size.
        rng: Random generator for initialisation.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        self.cell = LSTMCell(input_size, hidden_size, rng)
        self.input_size = input_size
        self.hidden_size = hidden_size

    def forward(
        self,
        inputs: Tensor,
        lengths: Optional[np.ndarray] = None,
        need_outputs: bool = True,
    ) -> Tuple[Optional[Tensor], Tensor]:
        """Processes a padded batch.

        Args:
            inputs: ``[batch, time, input_size]`` padded sequences.
            lengths: Optional ``[batch]`` integer array of true sequence
                lengths.  When given, the returned final state for each
                sequence is the state at its own last element, and padded
                steps do not modify the state.
            need_outputs: When False, the fused training path skips
                recording the per-step output stack (the hierarchical models
                only consume the final state); ``outputs`` is then ``None``.

        Returns:
            A tuple ``(outputs, final_hidden)`` where ``outputs`` is
            ``[batch, time, hidden_size]`` (or ``None``, see
            ``need_outputs``) and ``final_hidden`` is
            ``[batch, hidden_size]``.  On the fused path, output rows past a
            sequence's length hold its frozen final state rather than the
            padded-step activations — they carry no information either way.
        """
        if fast_path_active():
            return self._forward_inference(raw(inputs), lengths)
        inputs = as_tensor(inputs)
        batch_size, max_time = inputs.shape[0], inputs.shape[1]
        if lengths is None:
            lengths = np.full((batch_size,), max_time, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if fused_ops_active():
            return self._forward_fused(inputs, lengths, need_outputs)

        hidden, cell = self.cell.initial_state(batch_size)
        step_outputs: List[Tensor] = []
        for time in range(max_time):
            frame = inputs[:, time, :]
            new_hidden, (new_hidden_state, new_cell) = self.cell(frame, (hidden, cell))
            active = (lengths > time).reshape(batch_size, 1)
            hidden = where(active, new_hidden_state, hidden)
            cell = where(active, new_cell, cell)
            step_outputs.append(new_hidden.reshape(batch_size, 1, self.hidden_size))
        outputs = concatenate(step_outputs, axis=1) if step_outputs else inputs
        return outputs, hidden

    def _forward_fused(
        self, inputs: Tensor, lengths: np.ndarray, need_outputs: bool
    ) -> Tuple[Optional[Tensor], Tensor]:
        """Training fast path: one fused tape node per time step.

        Each step records a :func:`repro.nn.fused.fused_lstm_step` node (the
        length mask folded in) plus two basic-index slices whose backwards
        accumulate in place, instead of the ~17 composed nodes of the
        define-by-run loop.
        """
        batch_size, max_time = inputs.shape[0], inputs.shape[1]
        size = self.hidden_size
        cell_module = self.cell
        hidden, cell = cell_module.initial_state(batch_size)
        step_outputs: List[Tensor] = []
        for time in range(max_time):
            frame = inputs[:, time, :]
            active = lengths > time
            mask = None if active.all() else active
            state = fused_lstm_step(
                frame,
                hidden,
                cell,
                cell_module.weight_input,
                cell_module.weight_hidden,
                cell_module.bias,
                mask=mask,
            )
            hidden = state[:, :size]
            cell = state[:, size:]
            if need_outputs:
                step_outputs.append(hidden.reshape(batch_size, 1, size))
        if not need_outputs:
            return None, hidden
        outputs = concatenate(step_outputs, axis=1) if step_outputs else inputs
        return outputs, hidden

    def _forward_inference(
        self, inputs: np.ndarray, lengths: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """No-grad fast path: the same recurrence on raw numpy arrays."""
        batch_size, max_time = inputs.shape[0], inputs.shape[1]
        if lengths is None:
            lengths = np.full((batch_size,), max_time, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)

        size = self.hidden_size
        dtype = inputs.dtype
        weight_input = self.cell.weight_input.data_as(dtype)
        weight_hidden = self.cell.weight_hidden.data_as(dtype)
        bias = self.cell.bias.data_as(dtype)
        hidden = np.zeros((batch_size, size), dtype=dtype)
        cell = np.zeros((batch_size, size), dtype=dtype)
        outputs = np.empty((batch_size, max_time, size), dtype=dtype)
        for time in range(max_time):
            gates = inputs[:, time, :] @ weight_input
            gates += hidden @ weight_hidden
            gates += bias
            input_gate = sigmoid(gates[:, 0 * size : 1 * size])
            forget_gate = sigmoid(gates[:, 1 * size : 2 * size])
            candidate = np.tanh(gates[:, 2 * size : 3 * size])
            output_gate = sigmoid(gates[:, 3 * size : 4 * size])
            new_cell = forget_gate * cell + input_gate * candidate
            new_hidden = output_gate * np.tanh(new_cell)
            active = (lengths > time).reshape(batch_size, 1)
            hidden = np.where(active, new_hidden, hidden)
            cell = np.where(active, new_cell, cell)
            outputs[:, time, :] = new_hidden
        return outputs, hidden
