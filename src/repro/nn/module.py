"""Module and parameter abstractions.

A :class:`Module` owns :class:`Parameter` tensors and (recursively) child
modules, mirroring the structure of ``tf.Module`` / ``torch.nn.Module`` that
the original GRANITE implementation relies on.  The main services provided
here are parameter discovery (for the optimizer), named parameter access
(for serialization) and gradient zeroing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module", "parameter_version", "bump_parameter_version"]

# Global generation counter of parameter mutations.  Optimizer steps and
# ``load_state_dict`` bump it; weight-dependent caches (the prediction cache
# in :class:`repro.models.base.ThroughputModel`) use it as a cheap O(1)
# "did anything train anywhere?" signal.  On its own a global counter
# over-invalidates (another model training would clear this model's cache),
# so every :class:`Parameter` additionally carries its own mutation counter
# and :meth:`Module.parameter_generation` aggregates them per module: the
# global version says *whether* to re-check, the per-module generation says
# *whose* weights actually changed.
_PARAMETER_VERSION = 0


def parameter_version() -> int:
    """Returns the current global parameter-mutation generation."""
    return _PARAMETER_VERSION


def bump_parameter_version() -> int:
    """Records that some parameters changed; returns the new generation."""
    global _PARAMETER_VERSION
    _PARAMETER_VERSION += 1
    return _PARAMETER_VERSION


class Parameter(Tensor):
    """A tensor that is updated by the optimizer.

    Parameters always require gradients, even when constructed inside a
    ``no_grad`` block (unlike plain tensors).
    """

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)
        # Parameters must track gradients regardless of the global switch at
        # construction time.
        self.requires_grad = True
        #: Per-parameter mutation counter.  Optimizer steps and state-dict
        #: loads increment it, so per-module cache generations can tell which
        #: model's weights a global version bump belongs to.
        self.version = 0
        # (version, array) of the last reduced-precision cast of ``data``;
        # see :meth:`data_as`.
        self._cast_cache: Optional[Tuple[int, np.ndarray]] = None

    def bump_version(self) -> int:
        """Records an in-place mutation of this parameter's data."""
        self.version += 1
        return self.version

    def data_as(self, dtype) -> np.ndarray:
        """This parameter's values cast to ``dtype`` (cached per version).

        The float64 master weights are the single source of truth; reduced
        precision views are derived caches keyed by :attr:`version`, so an
        optimizer step or ``load_state_dict`` (both bump the version)
        invalidates them and the next inference forward re-casts.  The cast
        therefore happens once per weight update rather than once per
        forward, which is what keeps the float32 fast path fast.
        """
        dtype = np.dtype(dtype)
        if dtype == self.data.dtype:
            return self.data
        cached = self._cast_cache
        if cached is None or cached[0] != self.version or cached[1].dtype != dtype:
            cached = (self.version, self.data.astype(dtype))
            self._cast_cache = cached
        return cached[1]


class Module:
    """Base class for all neural network components.

    Subclasses register parameters and sub-modules simply by assigning them
    to attributes; discovery walks ``__dict__`` (and lists/tuples/dicts of
    modules or parameters, which is convenient for per-task decoder heads).
    """

    def parameters(self) -> List[Parameter]:
        """Returns all parameters of this module and its children."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> List[Tuple[str, Parameter]]:
        """Returns ``(name, parameter)`` pairs, names reflect attribute paths."""
        result: List[Tuple[str, Parameter]] = []
        seen: set[int] = set()
        self._collect_parameters(prefix, result, seen)
        return result

    def _collect_parameters(
        self, prefix: str, result: List[Tuple[str, Parameter]], seen: set[int]
    ) -> None:
        for attribute_name, value in vars(self).items():
            path = f"{prefix}{attribute_name}" if prefix == "" else f"{prefix}.{attribute_name}"
            self._collect_from_value(path, value, result, seen)

    def _collect_from_value(
        self, path: str, value, result: List[Tuple[str, Parameter]], seen: set[int]
    ) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                result.append((path, value))
        elif isinstance(value, Module):
            value._collect_parameters(path, result, seen)
        elif isinstance(value, (list, tuple)):
            for index, element in enumerate(value):
                self._collect_from_value(f"{path}.{index}", element, result, seen)
        elif isinstance(value, dict):
            for key, element in value.items():
                self._collect_from_value(f"{path}.{key}", element, result, seen)

    def zero_grad(self) -> None:
        """Clears the gradients of all parameters."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the module."""
        return sum(parameter.size for parameter in self.parameters())

    def parameter_generation(self) -> int:
        """Aggregate mutation generation of this module's parameters.

        The sum of the per-parameter version counters.  Versions only ever
        increment, so any tracked mutation of any parameter owned by this
        module strictly increases the sum — equal generations mean no
        optimizer step or state-dict load touched this module in between.
        Mutations of *other* modules' parameters leave it unchanged, which is
        what lets weight-dependent caches survive unrelated training (see
        ``ThroughputModel._current_prediction_cache``).
        """
        return sum(parameter.version for parameter in self.parameters())

    # ------------------------------------------------------------------ #
    # State dict style serialization helpers.
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Returns a copy of every parameter keyed by its attribute path."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Loads parameter values saved by :meth:`state_dict`.

        Raises:
            KeyError: If the state is missing a parameter of this module.
            ValueError: If a stored array has the wrong shape.
        """
        named = dict(self.named_parameters())
        missing = sorted(set(named) - set(state))
        if missing:
            raise KeyError(f"state dict is missing parameters: {missing}")
        try:
            for name, parameter in named.items():
                value = np.asarray(state[name], dtype=np.float64)
                if value.shape != parameter.data.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: stored {value.shape}, "
                        f"expected {parameter.data.shape}"
                    )
                parameter.data[...] = value
                parameter.bump_version()
        finally:
            # Even a partial load mutated weights, so weight-dependent caches
            # must be invalidated whether or not the loop completed.
            bump_parameter_version()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError
