"""Optimizers and gradient utilities.

The paper trains every model with Adam at a learning rate of 1e-3 and the
default moment decay rates (Section 4, Table 4).  The layer-normalisation
ablation additionally requires global-norm gradient clipping to keep the
un-normalised models from diverging, so that is provided here too.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.nn.module import Parameter, bump_parameter_version
from repro.nn.tensor import fused_ops_active

__all__ = ["Optimizer", "SGD", "Adam", "clip_gradients_by_global_norm", "global_gradient_norm"]


class Optimizer:
    """Base class for optimizers over a fixed list of parameters."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        """Clears the gradient of every managed parameter."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(parameter.data) for parameter in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.learning_rate * parameter.grad
            parameter.data += velocity
            parameter.bump_version()
        bump_parameter_version()


class Adam(Optimizer):
    """Adam (Kingma & Ba 2014) with the paper's default hyper-parameters.

    The moment state lives in two flat slabs over the concatenation of all
    parameters; the per-parameter moment arrays are reshaped views into
    them.  On the training fast path (``repro.nn.tensor.use_fused_ops``,
    the default) and when every parameter has a gradient, the update runs
    as a handful of vectorized operations over the slabs — element-for-
    element the same arithmetic as the per-parameter loop, so both paths
    produce bit-identical updates.  The loop is kept for the composed-tape
    baseline and for steps where some parameters have no gradient (their
    moments must not decay).
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("beta coefficients must be in [0, 1)")
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._step_count = 0
        total_size = sum(parameter.size for parameter in self.parameters)
        self._flat_first = np.zeros(total_size, dtype=np.float64)
        self._flat_second = np.zeros(total_size, dtype=np.float64)
        self._flat_gradient = np.empty(total_size, dtype=np.float64)
        self._scratch = np.empty(total_size, dtype=np.float64)
        self._spans: List[Tuple[int, int]] = []
        self._first_moment: List[np.ndarray] = []
        self._second_moment: List[np.ndarray] = []
        offset = 0
        for parameter in self.parameters:
            span = (offset, offset + parameter.size)
            self._spans.append(span)
            self._first_moment.append(
                self._flat_first[span[0] : span[1]].reshape(parameter.data.shape)
            )
            self._second_moment.append(
                self._flat_second[span[0] : span[1]].reshape(parameter.data.shape)
            )
            offset = span[1]

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        if fused_ops_active() and all(
            parameter.grad is not None for parameter in self.parameters
        ):
            self._step_flat(bias_correction1, bias_correction2)
            return
        for parameter, first, second in zip(
            self.parameters, self._first_moment, self._second_moment
        ):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            first *= self.beta1
            first += (1.0 - self.beta1) * gradient
            second *= self.beta2
            second += (1.0 - self.beta2) * gradient * gradient
            corrected_first = first / bias_correction1
            corrected_second = second / bias_correction2
            parameter.data -= (
                self.learning_rate * corrected_first / (np.sqrt(corrected_second) + self.epsilon)
            )
            parameter.bump_version()
        bump_parameter_version()

    def _step_flat(self, bias_correction1: float, bias_correction2: float) -> None:
        """One update over the flat moment slabs (training fast path)."""
        gradient = self._flat_gradient
        for parameter, (start, stop) in zip(self.parameters, self._spans):
            gradient[start:stop] = parameter.grad.ravel()
        first, second = self._flat_first, self._flat_second
        first *= self.beta1
        first += (1.0 - self.beta1) * gradient
        second *= self.beta2
        # Same association as the loop: ((1 - beta2) * g) * g.
        scratch = self._scratch
        np.multiply(1.0 - self.beta2, gradient, out=scratch)
        scratch *= gradient
        second += scratch
        corrected_first = first / bias_correction1
        corrected_second = second / bias_correction2
        update = self.learning_rate * corrected_first
        np.sqrt(corrected_second, out=corrected_second)
        corrected_second += self.epsilon
        update /= corrected_second
        for parameter, (start, stop) in zip(self.parameters, self._spans):
            parameter.data -= update[start:stop].reshape(parameter.data.shape)
            parameter.bump_version()
        bump_parameter_version()


def global_gradient_norm(parameters: Iterable[Parameter]) -> float:
    """Returns the L2 norm of all parameter gradients concatenated."""
    total = 0.0
    for parameter in parameters:
        if parameter.grad is not None:
            total += float(np.sum(parameter.grad ** 2))
    return float(np.sqrt(total))


def clip_gradients_by_global_norm(
    parameters: Iterable[Parameter], max_norm: float
) -> float:
    """Scales gradients so their global norm does not exceed ``max_norm``.

    Returns the norm before clipping, which the trainer logs to detect
    instability (the layer-norm ablation in Section 5.2 relies on this).
    """
    parameters = list(parameters)
    norm = global_gradient_norm(parameters)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for parameter in parameters:
            if parameter.grad is not None:
                parameter.grad *= scale
    return norm
