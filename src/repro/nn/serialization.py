"""Saving and loading model parameters, crash-safely.

Checkpoints are plain ``.npz`` archives keyed by the parameter attribute
paths produced by :meth:`repro.nn.Module.named_parameters`, which makes them
portable, inspectable with numpy alone, and independent of pickling the
model classes.

Dtype contract: checkpoints always store the float64 master weights —
:meth:`~repro.nn.Module.state_dict` copies ``Parameter.data``, which is
float64 regardless of any ``inference_dtype`` the model serves in, and
:meth:`~repro.nn.Module.load_state_dict` coerces stored arrays back to
float64 on the way in.  Reduced-precision views (``Parameter.data_as``) are
derived caches keyed to the parameter version, never persisted; loading a
checkpoint bumps the versions, so a float32 serving replica re-casts from
the freshly loaded float64 weights on its next forward.  A checkpoint
round-trip therefore neither narrows weights nor silently upcasts a float32
inference configuration back to float64.

Durability contract: :func:`save_checkpoint` writes the archive to a
temporary sibling, fsyncs it, and renames it into place — a crash (or an
injected checkpoint-write fault) mid-save leaves the previous checkpoint
untouched, never a half-written archive under the real name.  The archive
embeds a CRC32 over every parameter array; :func:`checkpoint_to_dict`
recomputes it on load and raises :class:`CheckpointCorruptError` on
mismatch (or on an unreadable archive), and :func:`load_checkpoint` falls
back to the ``.bak`` predecessor the rename path keeps around.
"""

from __future__ import annotations

import os
import zipfile
import zlib
from typing import Callable, Dict, Optional

import numpy as np

from repro.nn.module import Module

__all__ = [
    "CheckpointCorruptError",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_to_dict",
]

#: The archive entry holding the integrity checksum (never a parameter
#: name: attribute paths cannot contain ``__`` prefixes *and* suffixes).
_CHECKSUM_KEY = "__checksum__"


class CheckpointCorruptError(RuntimeError):
    """A checkpoint failed its integrity check (or cannot be parsed)."""


def _npz_path(path: str) -> str:
    """The name the archive actually lands under.

    ``np.savez`` appends ``.npz`` to bare filenames; normalizing here keeps
    the temp-file + rename dance and the loader pointed at the same file.
    """
    return path if path.endswith(".npz") else path + ".npz"


def _backup_path(target: str) -> str:
    return target + ".bak"


def _state_checksum(state: Dict[str, np.ndarray]) -> int:
    """Order-independent CRC32 over names, dtypes, shapes and bytes."""
    digest = 0
    for name in sorted(state):
        values = np.ascontiguousarray(state[name])
        digest = zlib.crc32(name.encode("utf-8"), digest)
        digest = zlib.crc32(str(values.dtype).encode("utf-8"), digest)
        digest = zlib.crc32(str(values.shape).encode("utf-8"), digest)
        digest = zlib.crc32(values.tobytes(), digest)
    return digest


def save_checkpoint(
    module: Module,
    path: str,
    fault_hook: Optional[Callable[[str], None]] = None,
) -> str:
    """Atomically saves every parameter of ``module`` to ``path``.

    The archive is written (and fsynced) under a temporary name first and
    renamed into place, demoting any existing checkpoint to ``.bak``; a
    failure at any point before the final rename leaves the previous
    checkpoint bytes untouched.  Returns the path the archive landed under
    (``path`` with ``.npz`` appended if it lacked the extension).

    Args:
        module: The model whose ``state_dict()`` to persist.
        path: Target filename.
        fault_hook: Test seam for crash-safety: called with the temp path
            after the bytes are durable but *before* the rename.  If it
            raises, the temp file is removed and the target never changes —
            exactly the window a real crash would hit.
    """
    state = module.state_dict()
    target = _npz_path(path)
    directory = os.path.dirname(os.path.abspath(target))
    os.makedirs(directory, exist_ok=True)
    checksum = np.array([_state_checksum(state)], dtype=np.uint64)
    temp = target + ".tmp"
    try:
        with open(temp, "wb") as handle:
            np.savez(handle, **{_CHECKSUM_KEY: checksum}, **state)
            handle.flush()
            os.fsync(handle.fileno())
        if fault_hook is not None:
            fault_hook(temp)
    except BaseException:
        if os.path.exists(temp):
            os.remove(temp)
        raise
    if os.path.exists(target):
        os.replace(target, _backup_path(target))
    os.replace(temp, target)
    return target


def checkpoint_to_dict(path: str) -> Dict[str, np.ndarray]:
    """Loads a checkpoint file into a plain ``{name: array}`` dictionary.

    Raises:
        FileNotFoundError: Nothing at ``path`` (or its ``.npz`` spelling).
        CheckpointCorruptError: The archive is unreadable, or its embedded
            checksum does not match the recomputed one.  Legacy archives
            without a checksum entry load unverified.
    """
    if not os.path.exists(path):
        normalized = _npz_path(path)
        if normalized == path or not os.path.exists(normalized):
            raise FileNotFoundError(f"checkpoint not found: {path}")
        path = normalized
    try:
        with np.load(path) as archive:
            state = {name: archive[name] for name in archive.files}
    except (
        ValueError,
        OSError,
        EOFError,
        KeyError,
        zlib.error,
        zipfile.BadZipFile,
    ) as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is unreadable: {exc}"
        ) from exc
    stored = state.pop(_CHECKSUM_KEY, None)
    if stored is not None and int(stored[0]) != _state_checksum(state):
        raise CheckpointCorruptError(
            f"checkpoint {path!r} failed its integrity check "
            f"(stored checksum does not match the parameter bytes)"
        )
    return state


def load_checkpoint(module: Module, path: str, fallback: bool = True) -> str:
    """Restores parameters saved by :func:`save_checkpoint` into ``module``.

    A corrupt primary falls back to the ``.bak`` predecessor that
    :func:`save_checkpoint`'s rename path keeps (``fallback=False``
    disables this and re-raises instead).  Returns the path actually
    loaded, so callers can log when a fallback happened.

    Raises:
        CheckpointCorruptError: The primary is corrupt and no loadable
            backup exists.
    """
    try:
        module.load_state_dict(checkpoint_to_dict(path))
        return path
    except CheckpointCorruptError:
        backup = _backup_path(_npz_path(path))
        if not fallback or not os.path.exists(backup):
            raise
        module.load_state_dict(checkpoint_to_dict(backup))
        return backup
