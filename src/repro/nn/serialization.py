"""Saving and loading model parameters.

Checkpoints are plain ``.npz`` archives keyed by the parameter attribute
paths produced by :meth:`repro.nn.Module.named_parameters`, which makes them
portable, inspectable with numpy alone, and independent of pickling the
model classes.

Dtype contract: checkpoints always store the float64 master weights —
:meth:`~repro.nn.Module.state_dict` copies ``Parameter.data``, which is
float64 regardless of any ``inference_dtype`` the model serves in, and
:meth:`~repro.nn.Module.load_state_dict` coerces stored arrays back to
float64 on the way in.  Reduced-precision views (``Parameter.data_as``) are
derived caches keyed to the parameter version, never persisted; loading a
checkpoint bumps the versions, so a float32 serving replica re-casts from
the freshly loaded float64 weights on its next forward.  A checkpoint
round-trip therefore neither narrows weights nor silently upcasts a float32
inference configuration back to float64.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.nn.module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_to_dict"]


def save_checkpoint(module: Module, path: str) -> None:
    """Saves every parameter of ``module`` to an ``.npz`` file at ``path``."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def checkpoint_to_dict(path: str) -> Dict[str, np.ndarray]:
    """Loads a checkpoint file into a plain ``{name: array}`` dictionary."""
    if not os.path.exists(path):
        raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def load_checkpoint(module: Module, path: str) -> None:
    """Restores parameters saved by :func:`save_checkpoint` into ``module``."""
    module.load_state_dict(checkpoint_to_dict(path))
