"""Reverse-mode automatic differentiation on numpy arrays.

The GRANITE paper implements its models in TensorFlow 1.x with DeepMind's
Graph Nets library.  Neither is available in this environment, so this module
provides the minimal tensor runtime the reproduction needs: a
:class:`Tensor` that records the operations applied to it and can compute
gradients of a scalar loss with respect to every tensor that participated in
its computation.

The design is the classic define-by-run tape: every operation creates a new
tensor whose ``_backward`` closure knows how to propagate the output gradient
to the inputs.  :meth:`Tensor.backward` performs a topological sort of the
recorded graph and runs the closures in reverse order.

Only the operations required by the models in this repository are
implemented (dense layers, layer normalisation, embeddings, LSTMs, graph
segment aggregations and the paper's loss functions), but they are
implemented with full broadcasting support so they compose freely.

Inference fast path
-------------------

Allocating a :class:`Tensor` wrapper (and, when gradients are enabled, a
backward closure) per operation is pure overhead during inference.  The
module-level functional operations below (:func:`matmul`,
:func:`gather_rows`, :func:`segment_sum`, :func:`relu`, ...) therefore
run plain numpy code whenever no operand is a :class:`Tensor` — no tape,
no closures, no wrapper allocations.  Layers switch their outputs to raw
arrays inside :class:`no_grad` (see :func:`fast_path_active`), so a whole
model forward stays on numpy end to end during inference.  Model code written
against the functional API transparently accepts and returns either
representation, which is what makes the batched prediction service fast.

Compute dtype
-------------

The fast path is additionally dtype-configurable: inside a
``compute_dtype("float32")`` context, :func:`raw` coerces operands to
``float32`` and every fast-path op preserves that dtype, so a whole no-grad
forward runs in single precision (roughly halving the Dense/LayerNorm
matmul cost on BLAS backends).  Reductions that are numerically delicate
(:func:`segment_sum` via ``bincount``, LayerNorm statistics in
``repro.nn.layers``) still accumulate in ``float64`` and cast the result
back.  The tape path is unaffected: differentiable :class:`Tensor` data is
always ``float64`` — master weights and training never run in reduced
precision, only inference does (see
``repro.models.base.ThroughputModel.predict``).

Training fast path
------------------

Training keeps the define-by-run tape, but its hot composites collapse into
**fused** tape ops with hand-written backwards (:mod:`repro.nn.fused`):

* one node per Dense layer (matmul + bias + activation), one per LayerNorm,
  and one per LSTM time step (which otherwise records ~15 nodes of per-gate
  slicing / sigmoid / tanh / multiply closures);
* a :func:`scatter_rows` primitive whose backward is an O(N) gather,
  replacing the quadratic permutation-matrix matmul the Ithemal model used
  to re-pack instruction embeddings;
* every scatter-add style backward (embedding / :meth:`Tensor.gather_rows` /
  :meth:`Tensor.segment_sum` / integer-array ``__getitem__``) runs on
  flattened ``np.bincount`` instead of ``np.add.at`` (roughly an order of
  magnitude faster for 2-D feature matrices), and basic-index slices
  accumulate in place into the parent's gradient region instead of
  materialising a full-size zeros array per slice;
* gradients accumulate into preallocated per-tensor buffers (reused across
  steps for long-lived tensors such as :class:`repro.nn.module.Parameter`),
  and ``repro.nn.optim.Adam`` applies its update through one flat slab over
  all parameters.

**Fused vs composed:** the composed per-op tape is retained behind
:class:`use_fused_ops` — ``use_fused_ops(False)`` restores the pre-fusion
behaviour (per-gate LSTM closures, permutation-matrix scatter, ``np.add.at``
backwards, per-parameter Adam), which is the baseline that
``benchmarks/test_training_throughput.py`` measures the fast path against.
Fused forwards replicate the composed float arithmetic operation-for-
operation (bit-identical losses); backwards may legitimately reorder float
summations, so same-seed loss *trajectories* agree within the documented
tolerance of that benchmark rather than bit-for-bit.  Use the composed path
when debugging gradients op by op; use the (default) fused path everywhere
else.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "use_fast_path",
    "fast_path_active",
    "use_fused_ops",
    "fused_ops_active",
    "compute_dtype",
    "active_dtype",
    "resolve_dtype",
    "SUPPORTED_DTYPES",
    "raw",
    "matmul",
    "gather_rows",
    "scatter_rows",
    "segment_sum",
    "segment_mean",
    "relu",
    "tanh",
    "sigmoid",
    "stack",
    "concatenate",
    "where",
]

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True
_FAST_PATH_ENABLED = True
_FUSED_OPS_ENABLED = True

#: Dtype names accepted by :func:`resolve_dtype` / inference configurations.
SUPPORTED_DTYPES = ("float64", "float32")


class _ComputeDtypeState(threading.local):
    """Per-thread compute dtype.

    Thread-local rather than a module global because the serving stack runs
    predicts on several threads at once (async dispatcher + client threads),
    and a float32 service may share the process with a float64 one — each
    thread's forward must see only its own ``compute_dtype`` context, or a
    float64 predict could silently compute (and cache) float32 values.
    """

    def __init__(self) -> None:
        self.value = np.dtype(np.float64)


_COMPUTE_DTYPE = _ComputeDtypeState()


def resolve_dtype(dtype: Union[str, np.dtype, type]) -> np.dtype:
    """Normalises a dtype spec (``"float32"``, ``np.float32``, ...) to a dtype.

    Raises:
        ValueError: If the dtype is not one of :data:`SUPPORTED_DTYPES`.
    """
    resolved = np.dtype(dtype)
    if resolved.name not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported compute dtype {dtype!r}; expected one of {SUPPORTED_DTYPES}"
        )
    return resolved


def active_dtype() -> np.dtype:
    """The dtype fast-path operations compute in (``float64`` by default).

    Per-thread: see :class:`compute_dtype`.
    """
    return _COMPUTE_DTYPE.value


class compute_dtype:
    """Context manager selecting the no-grad fast path's compute dtype.

    Only the raw-numpy fast path honours it: tape :class:`Tensor` data stays
    ``float64`` regardless, so gradients and master weights keep full
    precision.  Typical use is ``with no_grad(), compute_dtype("float32"):``
    around an inference forward — which is exactly what
    ``ThroughputModel.predict`` does when its ``inference_dtype`` says so.

    The state is per-thread, so concurrent predicts in different precisions
    (e.g. a float32 worker service next to a float64 model, or the async
    dispatcher flushing while a client thread predicts) never leak their
    dtype into each other's forwards.
    """

    def __init__(self, dtype: Union[str, np.dtype, type] = np.float64) -> None:
        self._dtype = resolve_dtype(dtype)

    def __enter__(self) -> "compute_dtype":
        self._previous = _COMPUTE_DTYPE.value
        _COMPUTE_DTYPE.value = self._dtype
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _COMPUTE_DTYPE.value = self._previous


class use_fast_path:
    """Context manager toggling the no-grad numpy fast path.

    The fast path is on by default; disabling it makes ``no_grad`` inference
    run through tape :class:`Tensor` wrappers exactly like the original
    implementation, which is what the throughput benchmarks use as their
    baseline ("seed path").
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = bool(enabled)

    def __enter__(self) -> "use_fast_path":
        global _FAST_PATH_ENABLED
        self._previous = _FAST_PATH_ENABLED
        _FAST_PATH_ENABLED = self._enabled
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        global _FAST_PATH_ENABLED
        _FAST_PATH_ENABLED = self._previous


def fast_path_active() -> bool:
    """True when ops should dispatch to raw numpy (no-grad fast path)."""
    return not _GRAD_ENABLED and _FAST_PATH_ENABLED


class use_fused_ops:
    """Context manager toggling the vectorized *training* fast path.

    On (the default), layers record fused tape ops with hand-written
    backwards, scatter-add backwards run on ``np.bincount``, the Ithemal
    scatter is the O(N) :func:`scatter_rows` primitive, and ``Adam`` updates
    through a flat parameter slab.  ``use_fused_ops(False)`` restores the
    composed per-op tape (per-gate LSTM closures, permutation-matrix
    scatter, ``np.add.at`` backwards, per-parameter Adam), which is the
    pre-fusion baseline measured by
    ``benchmarks/test_training_throughput.py``.  See the module docstring's
    "Training fast path" section.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = bool(enabled)

    def __enter__(self) -> "use_fused_ops":
        global _FUSED_OPS_ENABLED
        self._previous = _FUSED_OPS_ENABLED
        _FUSED_OPS_ENABLED = self._enabled
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        global _FUSED_OPS_ENABLED
        _FUSED_OPS_ENABLED = self._previous


def fused_ops_active() -> bool:
    """True when the tape should record fused ops (training fast path)."""
    return _FUSED_OPS_ENABLED


class no_grad:
    """Context manager that disables gradient recording.

    Used during evaluation and inference to avoid building the autodiff
    graph, which keeps memory usage flat and inference fast.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Returns True when operations record gradients."""
    return _GRAD_ENABLED


def _unbroadcast(gradient: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sums ``gradient`` down to ``shape`` to undo numpy broadcasting."""
    if gradient.shape == shape:
        return gradient
    # Sum over leading axes that were added by broadcasting.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)


def _row_scatter_add(target: np.ndarray, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
    """``target[indices] += values`` with duplicate indices summed, in O(N).

    The 1-D/2-D cases run on flattened ``np.bincount`` (a single C loop over
    the value buffer) instead of ``np.add.at``, whose generalised-ufunc
    fallback is roughly an order of magnitude slower for the row-shaped
    scatters the training backwards perform.  Higher-rank values fall back
    to ``np.add.at``; no training hot path produces them.
    """
    if indices.size and int(indices.min()) < 0:
        # bincount rejects negative ids; wrap them exactly like numpy
        # indexing does (any index the forward accepted is in [-n, n)).
        indices = indices % target.shape[0]
    if values.ndim == 2 and target.ndim == 2:
        num_rows, num_features = target.shape
        flat_ids = indices[:, None] * num_features + np.arange(num_features, dtype=np.int64)
        target += np.bincount(
            flat_ids.ravel(), weights=values.ravel(), minlength=num_rows * num_features
        ).reshape(num_rows, num_features)
    elif values.ndim == 1 and target.ndim == 1:
        target += np.bincount(indices, weights=values, minlength=target.shape[0])
    else:  # pragma: no cover - no hot path reaches this
        np.add.at(target, indices, values)
    return target


def _is_basic_index(key) -> bool:
    """True for keys that select a *region* (no duplicates possible).

    Basic numpy indexing — integers, slices, ``None``/``Ellipsis`` and
    tuples thereof — addresses each output element exactly once, so the
    gradient can accumulate with a plain in-place ``+=`` on the parent's
    gradient region instead of a scatter-add.
    """
    basic_types = (int, np.integer, slice, type(None), type(Ellipsis))
    if isinstance(key, tuple):
        return all(isinstance(part, basic_types) for part in key)
    return isinstance(key, basic_types)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Attributes:
        data: The underlying ``numpy.ndarray`` (always ``float64`` for
            differentiable tensors).
        grad: Accumulated gradient, populated by :meth:`backward`.  The
            array is a per-tensor buffer *reused across backward passes*
            (``zero_grad`` keeps it): a later backward on the same tensor
            overwrites it in place, so snapshot with ``grad.copy()`` when
            keeping gradients across steps.
        requires_grad: Whether gradients should flow into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name", "_grad_buffer")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data, dtype=np.float64)
        self.data: np.ndarray = array
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name
        # Preallocated gradient buffer, reused across backward passes for
        # long-lived tensors (parameters): zero_grad() drops self.grad but
        # keeps the buffer, so the next backward writes into the same
        # allocation instead of re-allocating per step.
        self._grad_buffer: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Basic properties.
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        """Returns the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Returns the underlying numpy array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Returns a tensor sharing data but cut off from the autodiff graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clears the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    # ------------------------------------------------------------------ #
    # Graph construction helpers.
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires_grad = _GRAD_ENABLED and any(parent.requires_grad for parent in parents)
        result = Tensor(data, requires_grad=requires_grad)
        if requires_grad:
            result._parents = tuple(parents)
            result._backward = backward
        return result

    def _accumulate(self, gradient: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            buffer = self._grad_buffer
            if buffer is not None and buffer.shape == np.shape(gradient):
                np.copyto(buffer, gradient)
                self.grad = buffer
            else:
                self.grad = np.array(gradient, dtype=np.float64, copy=True)
                self._grad_buffer = self.grad
        else:
            self.grad += gradient

    def _ensure_grad(self) -> np.ndarray:
        """Returns ``self.grad``, allocating (or reusing) a zeroed buffer.

        Used by backwards that accumulate *into a region* of the gradient
        (slice and scatter backwards) rather than adding a full-size array;
        they need the full-shape gradient to exist first.
        """
        if self.grad is None:
            buffer = self._grad_buffer
            if buffer is not None and buffer.shape == self.data.shape:
                buffer.fill(0.0)
            else:
                buffer = np.zeros(self.data.shape, dtype=np.float64)
                self._grad_buffer = buffer
            self.grad = buffer
        return self.grad

    def backward(self, gradient: Optional[np.ndarray] = None) -> None:
        """Backpropagates from this tensor to all ancestors.

        Args:
            gradient: Gradient of the final objective with respect to this
                tensor.  Defaults to ones, which is the usual choice when
                this tensor is a scalar loss.
        """
        if gradient is None:
            gradient = np.ones_like(self.data)
        else:
            gradient = np.asarray(gradient, dtype=np.float64)

        # Topological order via iterative depth-first search.
        order: List[Tensor] = []
        visited: set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(gradient)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic.
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data + other.data

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(_unbroadcast(gradient, self.shape))
            other._accumulate(_unbroadcast(gradient, other.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(-gradient)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data * other.data

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(_unbroadcast(gradient * other.data, self.shape))
            other._accumulate(_unbroadcast(gradient * self.data, other.shape))

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data / other.data

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(_unbroadcast(gradient / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-gradient * self.data / (other.data ** 2), other.shape)
            )

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        data = self.data ** exponent

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Matrix operations and shape manipulation.
    # ------------------------------------------------------------------ #
    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product ``self @ other`` for 2-D (or batched) operands."""
        other = as_tensor(other)
        data = self.data @ other.data

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(_unbroadcast(gradient @ np.swapaxes(other.data, -1, -2), self.shape))
            other._accumulate(_unbroadcast(np.swapaxes(self.data, -1, -2) @ gradient, other.shape))

        return Tensor._make(data, (self, other), backward)

    __matmul__ = matmul

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        """Permutes the axes of the tensor."""
        data = np.transpose(self.data, axes)

        def backward(gradient: np.ndarray) -> None:
            if axes is None:
                self._accumulate(np.transpose(gradient))
            else:
                inverse = np.argsort(axes)
                self._accumulate(np.transpose(gradient, inverse))

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        """Reshapes the tensor."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.shape
        data = self.data.reshape(shape)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient.reshape(original_shape))

        return Tensor._make(data, (self,), backward)

    def concatenate(self, others: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        """Concatenates ``[self, *others]`` along ``axis``."""
        tensors = [self] + [as_tensor(other) for other in others]
        data = np.concatenate([tensor.data for tensor in tensors], axis=axis)
        sizes = [tensor.data.shape[axis] for tensor in tensors]

        def backward(gradient: np.ndarray) -> None:
            offsets = np.cumsum([0] + sizes)
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                slices = [slice(None)] * gradient.ndim
                slices[axis] = slice(start, stop)
                tensor._accumulate(gradient[tuple(slices)])

        return Tensor._make(data, tuple(tensors), backward)

    def __getitem__(self, key) -> "Tensor":
        data = self.data[key]
        basic = _is_basic_index(key)
        fused = _FUSED_OPS_ENABLED

        def backward(gradient: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if basic and fused:
                # Region accumulate: basic indexing cannot alias, so add the
                # gradient straight into the parent's gradient slice instead
                # of materialising a full-size zeros array per time step.
                self._ensure_grad()[key] += gradient
                return
            if (
                fused
                and isinstance(key, np.ndarray)
                and key.ndim == 1
                and key.dtype.kind in "iu"
                and self.data.ndim <= 2
            ):
                _row_scatter_add(self._ensure_grad(), key, np.asarray(gradient))
                return
            full = np.zeros_like(self.data)
            np.add.at(full, key, gradient)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions.
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sums over ``axis`` (all elements by default)."""
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(gradient: np.ndarray) -> None:
            grad = np.asarray(gradient)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis`` (all elements by default)."""
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; gradient flows to the arg-max entries."""
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(gradient: np.ndarray) -> None:
            grad = np.asarray(gradient)
            expanded = data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
                expanded = np.expand_dims(data, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * grad)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise non-linearities.
    # ------------------------------------------------------------------ #
    def relu(self) -> "Tensor":
        """Rectified linear unit."""
        data = np.maximum(self.data, 0.0)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient * (self.data > 0.0))

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient * 0.5 / np.maximum(data, 1e-12))

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        """Absolute value; the gradient at zero is defined as zero."""
        data = np.abs(self.data)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient * np.sign(self.data))

        return Tensor._make(data, (self,), backward)

    def softplus(self) -> "Tensor":
        """Numerically stable ``log(1 + exp(x))``."""
        data = np.logaddexp(0.0, self.data)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient / (1.0 + np.exp(-self.data)))

        return Tensor._make(data, (self,), backward)

    def clip(self, minimum: float, maximum: float) -> "Tensor":
        """Clamps values; gradient is passed through inside the range only."""
        data = np.clip(self.data, minimum, maximum)

        def backward(gradient: np.ndarray) -> None:
            mask = (self.data >= minimum) & (self.data <= maximum)
            self._accumulate(gradient * mask)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Gather / scatter operations used by embeddings and graph networks.
    # ------------------------------------------------------------------ #
    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Selects rows by integer index (embedding lookup).

        Args:
            indices: Integer array of row indices; output row ``i`` is
                ``self[indices[i]]``.
        """
        indices = np.asarray(indices, dtype=np.int64)
        data = self.data[indices]
        fused = _FUSED_OPS_ENABLED

        def backward(gradient: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if fused and self.data.ndim <= 2:
                # O(N) bincount scatter-add into the (reused) grad buffer
                # instead of np.add.at on a fresh full-size zeros array.
                gradient = np.asarray(gradient)
                if self.data.ndim == 2:
                    gradient = gradient.reshape(-1, self.data.shape[1])
                else:
                    gradient = gradient.reshape(-1)
                _row_scatter_add(self._ensure_grad(), indices.reshape(-1), gradient)
                return
            full = np.zeros_like(self.data)
            np.add.at(full, indices, gradient)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    def scatter_rows(self, indices: np.ndarray, num_rows: int) -> "Tensor":
        """Writes row ``i`` of this tensor to row ``indices[i]`` of a zeros
        output with ``num_rows`` rows (the inverse of :meth:`gather_rows`).

        ``indices`` must be unique — each output row is written at most once;
        rows never referenced stay zero.  The backward is an O(N) gather,
        which is what makes this the scatter primitive for re-packing padded
        batches (see ``IthemalModel.embed_batch``), replacing a quadratic
        permutation-matrix matmul.
        """
        indices = np.asarray(indices, dtype=np.int64)
        output_shape = (num_rows,) + self.data.shape[1:]
        data = np.zeros(output_shape, dtype=np.float64)
        data[indices] = self.data

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient[indices])

        return Tensor._make(data, (self,), backward)

    def segment_sum(self, segment_ids: np.ndarray, num_segments: int) -> "Tensor":
        """Sums rows into ``num_segments`` buckets (scatter-add).

        This is the aggregation primitive of the graph network: edge features
        are summed per receiving node, node features are summed per graph.
        The forward runs on flattened ``np.bincount`` (see
        :func:`_row_scatter_add`); ``use_fused_ops(False)`` restores the
        original ``np.add.at`` scatter.
        """
        segment_ids = np.asarray(segment_ids, dtype=np.int64)
        output_shape = (num_segments,) + self.data.shape[1:]
        data = np.zeros(output_shape, dtype=np.float64)
        if _FUSED_OPS_ENABLED and self.data.ndim <= 2:
            _row_scatter_add(data, segment_ids, self.data)
        else:
            np.add.at(data, segment_ids, self.data)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient[segment_ids])

        return Tensor._make(data, (self,), backward)

    def segment_mean(self, segment_ids: np.ndarray, num_segments: int) -> "Tensor":
        """Averages rows per segment; empty segments produce zeros."""
        segment_ids = np.asarray(segment_ids, dtype=np.int64)
        counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
        counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (self.data.ndim - 1))
        summed = self.segment_sum(segment_ids, num_segments)
        return summed * Tensor(1.0 / counts)

    # ------------------------------------------------------------------ #
    # Comparisons (non-differentiable, return numpy arrays).
    # ------------------------------------------------------------------ #
    def greater(self, other: ArrayLike) -> np.ndarray:
        other = as_tensor(other)
        return self.data > other.data


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerces ``value`` to a :class:`Tensor` (no copy for tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stacks tensors along a new axis (raw numpy under :class:`no_grad`)."""
    if not any(isinstance(tensor, Tensor) for tensor in tensors):
        return np.stack([raw(tensor) for tensor in tensors], axis=axis)
    tensors = [as_tensor(tensor) for tensor in tensors]
    data = np.stack([tensor.data for tensor in tensors], axis=axis)

    def backward(gradient: np.ndarray) -> None:
        pieces = np.split(gradient, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tuple(tensors), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenates tensors along an existing axis (numpy under no_grad)."""
    if not any(isinstance(tensor, Tensor) for tensor in tensors):
        arrays = [raw(tensor) for tensor in tensors]
        return arrays[0] if len(arrays) == 1 else np.concatenate(arrays, axis=axis)
    tensors = [as_tensor(tensor) for tensor in tensors]
    if len(tensors) == 1:
        return tensors[0]
    return tensors[0].concatenate(tensors[1:], axis=axis)


def where(condition: np.ndarray, on_true: Tensor, on_false: Tensor) -> Tensor:
    """Elementwise selection; ``condition`` is a boolean numpy array."""
    condition = np.asarray(condition, dtype=bool)
    if not isinstance(on_true, Tensor) and not isinstance(on_false, Tensor):
        return np.where(condition, raw(on_true), raw(on_false))
    on_true = as_tensor(on_true)
    on_false = as_tensor(on_false)
    data = np.where(condition, on_true.data, on_false.data)

    def backward(gradient: np.ndarray) -> None:
        on_true._accumulate(_unbroadcast(gradient * condition, on_true.shape))
        on_false._accumulate(_unbroadcast(gradient * (~condition), on_false.shape))

    return Tensor._make(data, (on_true, on_false), backward)


# ---------------------------------------------------------------------- #
# Functional operations with a no-grad numpy fast path.
#
# Model code (layers, GN blocks, decoders) calls these instead of Tensor
# methods so that, under ``no_grad``, the whole forward pass runs on raw
# numpy arrays without allocating a Tensor wrapper per operation.
# ---------------------------------------------------------------------- #
def raw(value: ArrayLike) -> np.ndarray:
    """Unwraps ``value`` to a ``numpy.ndarray`` of the active compute dtype.

    Under the default ``float64`` compute dtype this is the identity for
    tensor data and float64 arrays; inside a ``compute_dtype("float32")``
    context it casts (once, at the fast path's entry points — the fast-path
    ops themselves preserve dtype, so whole forwards cast each input a
    single time).
    """
    dtype = _COMPUTE_DTYPE.value
    if isinstance(value, Tensor):
        data = value.data
    elif isinstance(value, np.ndarray):
        data = value
    else:
        return np.asarray(value, dtype=dtype)
    if data.dtype == dtype:
        return data
    return data.astype(dtype)


def matmul(left: ArrayLike, right: ArrayLike) -> Tensor:
    """Matrix product; runs on raw numpy when neither operand is a Tensor."""
    if not isinstance(left, Tensor) and not isinstance(right, Tensor):
        return raw(left) @ raw(right)
    return as_tensor(left) @ as_tensor(right)


def gather_rows(values: ArrayLike, indices: np.ndarray) -> Tensor:
    """Row gather (embedding lookup) with a raw-numpy fast path."""
    if not isinstance(values, Tensor):
        return raw(values)[np.asarray(indices, dtype=np.int64)]
    return values.gather_rows(indices)


def scatter_rows(values: ArrayLike, indices: np.ndarray, num_rows: int) -> Tensor:
    """Inverse row gather: ``out[indices[i]] = values[i]`` into ``num_rows`` rows.

    ``indices`` must be unique; unreferenced rows stay zero.  Raw-numpy fast
    path under ``no_grad``; on the tape the backward is an O(N) gather (see
    :meth:`Tensor.scatter_rows`).
    """
    if not isinstance(values, Tensor):
        array = raw(values)
        indices = np.asarray(indices, dtype=np.int64)
        output = np.zeros((num_rows,) + array.shape[1:], dtype=array.dtype)
        output[indices] = array
        return output
    return values.scatter_rows(indices, num_rows)


def segment_sum(values: ArrayLike, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Scatter-add of rows into segments with a raw-numpy fast path.

    The fast path uses a flattened ``np.bincount`` instead of ``np.add.at``,
    which is ~2.5x faster for the 2-D feature matrices the graph network
    aggregates (``add.at`` falls back to a slow element-wise ufunc loop).
    ``bincount`` accumulates in float64 whatever the compute dtype, so the
    float32 inference mode keeps full-precision sums and only the stored
    result is cast back.
    """
    if not isinstance(values, Tensor):
        array = raw(values)
        segment_ids = np.asarray(segment_ids, dtype=np.int64)
        if array.ndim == 2:
            num_features = array.shape[1]
            flat_ids = segment_ids[:, None] * num_features + np.arange(num_features, dtype=np.int64)
            summed = np.bincount(
                flat_ids.ravel(),
                weights=array.ravel(),
                minlength=num_segments * num_features,
            ).reshape(num_segments, num_features)
            return summed.astype(array.dtype, copy=False)
        if array.ndim == 1:
            summed = np.bincount(segment_ids, weights=array, minlength=num_segments)
            return summed.astype(array.dtype, copy=False)
        output = np.zeros((num_segments,) + array.shape[1:], dtype=np.float64)
        np.add.at(output, segment_ids, array)
        return output.astype(array.dtype, copy=False)
    return values.segment_sum(segment_ids, num_segments)


def segment_mean(values: ArrayLike, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Per-segment mean of rows with a raw-numpy fast path."""
    if not isinstance(values, Tensor):
        segment_ids = np.asarray(segment_ids, dtype=np.int64)
        summed = segment_sum(values, segment_ids, num_segments)
        counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
        counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (summed.ndim - 1))
        summed /= counts
        return summed
    return values.segment_mean(segment_ids, num_segments)


def relu(value: ArrayLike) -> Tensor:
    """Rectified linear unit with a raw-numpy fast path."""
    if not isinstance(value, Tensor):
        return np.maximum(raw(value), 0.0)
    return value.relu()


def tanh(value: ArrayLike) -> Tensor:
    """Hyperbolic tangent with a raw-numpy fast path."""
    if not isinstance(value, Tensor):
        return np.tanh(raw(value))
    return value.tanh()


def sigmoid(value: ArrayLike) -> Tensor:
    """Logistic sigmoid with a raw-numpy fast path."""
    if not isinstance(value, Tensor):
        array = raw(value)
        return 1.0 / (1.0 + np.exp(-array))
    return value.sigmoid()
