"""Batched prediction serving.

This subpackage is the seed of the production serving story: a
:class:`PredictionService` that accepts heterogeneous prediction requests,
coalesces them into size-bounded micro-batches, optionally shards the
micro-batches across a pool of warm worker processes, and reassembles
per-request responses.  It builds on the no-grad inference fast path in
:mod:`repro.nn.tensor` and the batched :meth:`ThroughputModel.predict` API.
"""

from repro.serve.batching import (
    MicroBatch,
    PredictionRequest,
    PredictionResponse,
    coalesce_requests,
)
from repro.serve.service import PredictionService, ServiceConfig, ServiceStats

__all__ = [
    "MicroBatch",
    "PredictionRequest",
    "PredictionResponse",
    "coalesce_requests",
    "PredictionService",
    "ServiceConfig",
    "ServiceStats",
]
