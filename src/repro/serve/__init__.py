"""Batched prediction serving.

This subpackage is the production serving story of the reproduction, in two
layers:

* the synchronous :class:`PredictionService`: heterogeneous requests are
  coalesced into size-bounded micro-batches, optionally sharded across an
  *elastic* pool of warm worker processes via a consistent hash ring over
  each block's text (cache affinity, health checks, automatic respawn,
  runtime ``scale_workers`` with ~1/N cache movement per resize), and
  reassembled into per-request responses;
* the async :class:`AsyncPredictionService` front end: producers enqueue
  requests into a bounded priority queue with back-pressure and get
  futures (cancellable while queued, with optional per-request deadlines);
  a dispatcher thread flushes micro-batches on ``max_batch_size`` OR a
  latency deadline governed by a static or load-adaptive
  :mod:`~repro.serve.flush` policy, and an autoscale monitor feeds queue
  depth into the pool's elasticity bounds.

Both build on the no-grad inference fast path in :mod:`repro.nn.tensor`
and the batched :meth:`ThroughputModel.predict` API.
"""

from repro.serve.async_service import (
    AsyncPredictionService,
    AsyncServiceConfig,
    AsyncServiceStats,
)
from repro.serve.batching import (
    MicroBatch,
    PredictionRequest,
    PredictionResponse,
    coalesce_requests,
    coalesce_requests_by_ring,
    coalesce_requests_by_shard,
    shard_key,
)
from repro.serve.flush import (
    FLUSH_POLICIES,
    AdaptiveFlushController,
    FlushController,
    StaticFlushController,
    create_flush_controller,
    default_flush_policy,
)
from repro.serve.queue import (
    Priority,
    QueuedRequest,
    QueueFullError,
    RequestExpiredError,
    RequestQueue,
)
from repro.serve.ring import HashRing
from repro.serve.service import PredictionService, ServiceConfig, ServiceStats
from repro.serve.workers import (
    PoolAutoscaler,
    ShardedWorkerPool,
    WorkerCrashError,
)

__all__ = [
    "MicroBatch",
    "PredictionRequest",
    "PredictionResponse",
    "coalesce_requests",
    "coalesce_requests_by_ring",
    "coalesce_requests_by_shard",
    "shard_key",
    "PredictionService",
    "ServiceConfig",
    "ServiceStats",
    "AsyncPredictionService",
    "AsyncServiceConfig",
    "AsyncServiceStats",
    "FLUSH_POLICIES",
    "AdaptiveFlushController",
    "FlushController",
    "StaticFlushController",
    "create_flush_controller",
    "default_flush_policy",
    "HashRing",
    "Priority",
    "QueuedRequest",
    "QueueFullError",
    "RequestExpiredError",
    "RequestQueue",
    "PoolAutoscaler",
    "ShardedWorkerPool",
    "WorkerCrashError",
]
