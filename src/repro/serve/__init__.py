"""Batched prediction serving.

This subpackage is the production serving story of the reproduction, in two
layers:

* the synchronous :class:`PredictionService`: heterogeneous requests are
  coalesced into size-bounded micro-batches, optionally sharded across a
  pool of warm worker processes by a stable hash of each block's text
  (cache affinity, health checks, automatic respawn), and reassembled into
  per-request responses;
* the async :class:`AsyncPredictionService` front end: producers enqueue
  requests into a bounded priority queue with back-pressure and get
  futures; a dispatcher thread flushes micro-batches on ``max_batch_size``
  OR a ``max_latency_ms`` deadline, whichever fires first.

Both build on the no-grad inference fast path in :mod:`repro.nn.tensor`
and the batched :meth:`ThroughputModel.predict` API.
"""

from repro.serve.async_service import (
    AsyncPredictionService,
    AsyncServiceConfig,
    AsyncServiceStats,
)
from repro.serve.batching import (
    MicroBatch,
    PredictionRequest,
    PredictionResponse,
    coalesce_requests,
    coalesce_requests_by_shard,
    shard_key,
)
from repro.serve.queue import (
    Priority,
    QueuedRequest,
    QueueFullError,
    RequestQueue,
)
from repro.serve.service import PredictionService, ServiceConfig, ServiceStats
from repro.serve.workers import ShardedWorkerPool, WorkerCrashError

__all__ = [
    "MicroBatch",
    "PredictionRequest",
    "PredictionResponse",
    "coalesce_requests",
    "coalesce_requests_by_shard",
    "shard_key",
    "PredictionService",
    "ServiceConfig",
    "ServiceStats",
    "AsyncPredictionService",
    "AsyncServiceConfig",
    "AsyncServiceStats",
    "Priority",
    "QueuedRequest",
    "QueueFullError",
    "RequestQueue",
    "ShardedWorkerPool",
    "WorkerCrashError",
]
