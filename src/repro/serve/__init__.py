"""Batched prediction serving, from micro-batches to the network.

This subpackage is the production serving story of the reproduction, in
three layers:

* the synchronous :class:`PredictionService`: heterogeneous requests are
  coalesced into size-bounded micro-batches, optionally sharded across an
  *elastic* pool of warm worker processes via a consistent hash ring over
  each block's text (cache affinity, health checks, automatic respawn,
  runtime ``scale_workers`` with ~1/N cache movement per resize), and
  reassembled into per-request responses;
* the async :class:`AsyncPredictionService` front end: producers enqueue
  requests into a bounded priority queue with back-pressure and get
  futures (cancellable while queued, with optional per-request deadlines);
  a dispatcher thread flushes micro-batches on ``max_batch_size`` OR a
  latency deadline governed by a static or load-adaptive
  :mod:`~repro.serve.flush` policy, and an autoscale monitor feeds queue
  depth into the pool's elasticity bounds;
* the network layer: a :class:`ModelRegistry` hosts many named model
  variants (family × uarch × dtype) with lazy load/unload, checkpoint
  warm-start and per-tenant request accounting, and
  :class:`PredictionHttpServer` exposes it over HTTP/1.1 + JSON (stdlib
  asyncio only) with API-key tenancy via :class:`TenantDirectory`.

All of it builds on the no-grad inference fast path in
:mod:`repro.nn.tensor` and the batched ``ThroughputModel.predict`` API.

Configuration is layered the same way: :class:`ServiceConfig` describes
one served model variant end to end, carrying the queueing/flushing knobs
as a nested :class:`AsyncOptions`.  (The historical
:class:`AsyncServiceConfig` spelling still works and converts.)

Error taxonomy
--------------

Everything the stack can refuse raises a :class:`ServeError` carrying a
machine-readable :class:`ReasonCode` (``queue_full``,
``deadline_expired``, ``service_closed``, ``unknown_model``,
``unauthenticated``, ``forbidden``, ``invalid_request``), so transports
map outcomes to their status space without string matching — the HTTP
front end's ``STATUS_BY_REASON`` table is exactly that mapping.  Each
error also inherits the builtin its pre-taxonomy ancestor did
(:class:`QueueFullError` is a ``RuntimeError``, etc.), so existing
``except`` clauses keep working.

Stats schema
------------

Introspection is typed (:mod:`repro.serve.stats`); JSON stats responses
serialize these exact dataclasses, so the wire schema cannot drift from
the in-process one:

* ``PredictionService.snapshot()`` -> :class:`ModelStats` — aggregate
  request/block/batch/latency counters of one service, its worker-pool
  respawn/resize counters, and (in-process mode) a :class:`CacheStats`
  section with encode/prediction/parse cache hit rates;
* ``PredictionService.worker_stats()`` -> list of :class:`WorkerStats` —
  per-replica identity (``worker_id``, ``spawn_count``), hash-ring share,
  dtype, job errors and a nested :class:`CacheStats`;
* ``AsyncPredictionService.snapshot()`` -> :class:`ServiceSnapshot` with
  sections ``queue`` (:class:`QueueStats`: depth, capacity, back-pressure
  policy, admission/drop counters), ``flush`` (:class:`FlushStats`:
  flush-trigger counters plus realized wait/deadline percentiles),
  ``model`` (the :class:`ModelStats` above), the flush controller's raw
  ``controller`` state dict, and ``autoscale_errors``;
* ``GET /v1/models/{model}/stats`` -> a serialized
  :class:`~repro.serve.registry.ModelReport`: ``info`` (a
  :class:`~repro.serve.registry.ModelInfo` with the per-tenant request
  counters), ``snapshot`` (:class:`ServiceSnapshot`, ``null`` while the
  variant is cold) and ``workers`` (list of :class:`WorkerStats`).

Every stats dataclass also supports the historical flat-dict reads
(``snapshot["flush_wait_p99_ms"]``); new code should prefer attribute
access (``snapshot.flush.wait_p99_ms``).  Latency percentiles are NaN —
never 0.0 — while their sample window is empty, and serialize to JSON
``null``.

Tail-latency harness
--------------------

:mod:`repro.serve.replay` closes the SLO loop: capture live traffic with
:class:`TraceRecorder` (the HTTP server's ``recorder`` hook) or
synthesize Zipf-skewed bursty traces with :func:`synthesize_trace`, drive
them through :class:`TraceReplayer` at recorded or time-scaled pacing,
and judge the realized p50/p99/p99.9 against an :class:`SloPolicy`.  The
tail-attacking machinery lives alongside: hedged requests
(``AsyncOptions.hedge_enabled`` — duplicate a request once it outlives
the observed latency quantile, first result wins, the loser is
cancelled), hot-key replication (``ServiceConfig.hot_key_replicas`` —
:class:`HotKeyRouter` spreads Zipf-head keys read-any across their ring
replica sets), and a latency-fed autoscaler.

Fault injection and self-healing
--------------------------------

:mod:`repro.serve.faults` is a deterministic chaos plane: a
:class:`FaultPlan` (seeded, JSON-serializable, loadable from the
``REPRO_FAULT_PLAN`` environment variable) selects faults — worker
crashes, hangs, slow or corrupted replies, queue saturation, checkpoint
write failures — by content hash, so every chaos run is bit-reproducible.
:mod:`repro.serve.resilience` is the machinery it validates:
:class:`RetryPolicy` (capped, seeded exponential backoff behind
``AsyncOptions.retry_policy``, bounded by a sliding-window retry budget),
a per-worker :class:`CircuitBreaker` (``ServiceConfig.breaker_policy``)
whose open workers the hash ring routes around, a respawn governor that
backs off crash-storming replicas, and a stale prediction cache serving
``degraded=True`` responses when the backend keeps failing
(``AsyncOptions.degraded_mode``).  ``GET /readyz`` exposes the aggregate:
``ready``/``degraded`` answer 200, ``unready`` answers 503 with
``Retry-After``.
"""

from repro.serve.async_service import (
    AsyncPredictionService,
    AsyncServiceStats,
)
from repro.serve.auth import ANONYMOUS, Tenant, TenantDirectory
from repro.serve.batching import (
    MicroBatch,
    coalesce_requests,
    coalesce_requests_by_ring,
    coalesce_requests_by_router,
    coalesce_requests_by_shard,
    shard_key,
)
from repro.serve.config import (
    AsyncOptions,
    AsyncServiceConfig,
    ServiceConfig,
)
from repro.serve.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    load_fault_plan_from_env,
)
from repro.serve.flush import (
    FLUSH_POLICIES,
    AdaptiveFlushController,
    FlushController,
    HedgeController,
    StaticFlushController,
    create_flush_controller,
    default_flush_policy,
)
from repro.serve.http import (
    STATUS_BY_REASON,
    HttpServerConfig,
    PredictionHttpServer,
)
from repro.serve.queue import (
    Priority,
    QueuedRequest,
    RequestQueue,
)
from repro.serve.registry import (
    ModelInfo,
    ModelRegistry,
    ModelReport,
    ModelVariant,
)
from repro.serve.resilience import (
    BreakerPolicy,
    BreakerRing,
    CircuitBreaker,
    RespawnGovernor,
    RespawnPolicy,
    RetryBudget,
    RetryPolicy,
    StalePredictionCache,
    run_with_retries,
)
from repro.serve.replay import (
    ReplayReport,
    SloPolicy,
    SloVerdict,
    Trace,
    TraceRecorder,
    TraceReplayer,
    TraceRequest,
    synthesize_trace,
)
from repro.serve.ring import HashRing, HotKeyRouter, HotKeyTracker
from repro.serve.service import PredictionService, ServiceStats
from repro.serve.stats import (
    CacheStats,
    FlushStats,
    HedgeStats,
    ModelStats,
    QueueStats,
    ResilienceStats,
    ServiceSnapshot,
    StatsStruct,
    WorkerStats,
    latency_percentile,
)
from repro.serve.types import (
    AuthenticationError,
    AuthorizationError,
    InvalidRequestError,
    PredictionRequest,
    PredictionResponse,
    QueueFullError,
    ReasonCode,
    RequestExpiredError,
    ServeError,
    ServiceClosedError,
    UnknownModelError,
)
from repro.serve.workers import (
    PoolAutoscaler,
    ShardedWorkerPool,
    WorkerCrashError,
)

__all__ = [
    # Envelopes and batching.
    "MicroBatch",
    "PredictionRequest",
    "PredictionResponse",
    "coalesce_requests",
    "coalesce_requests_by_ring",
    "coalesce_requests_by_router",
    "coalesce_requests_by_shard",
    "shard_key",
    # Services and configuration.
    "PredictionService",
    "ServiceConfig",
    "ServiceStats",
    "AsyncPredictionService",
    "AsyncOptions",
    "AsyncServiceConfig",
    "AsyncServiceStats",
    # Flush and hedge policies.
    "FLUSH_POLICIES",
    "AdaptiveFlushController",
    "FlushController",
    "HedgeController",
    "StaticFlushController",
    "create_flush_controller",
    "default_flush_policy",
    # Queueing and routing.
    "HashRing",
    "HotKeyRouter",
    "HotKeyTracker",
    "Priority",
    "QueuedRequest",
    "RequestQueue",
    # Worker pool.
    "PoolAutoscaler",
    "ShardedWorkerPool",
    "WorkerCrashError",
    # Fault injection and self-healing.
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "load_fault_plan_from_env",
    "RetryPolicy",
    "RetryBudget",
    "run_with_retries",
    "BreakerPolicy",
    "CircuitBreaker",
    "BreakerRing",
    "RespawnPolicy",
    "RespawnGovernor",
    "StalePredictionCache",
    # Error taxonomy.
    "ReasonCode",
    "ServeError",
    "QueueFullError",
    "RequestExpiredError",
    "ServiceClosedError",
    "UnknownModelError",
    "AuthenticationError",
    "AuthorizationError",
    "InvalidRequestError",
    # Typed stats schema.
    "StatsStruct",
    "CacheStats",
    "WorkerStats",
    "QueueStats",
    "FlushStats",
    "HedgeStats",
    "ModelStats",
    "ResilienceStats",
    "ServiceSnapshot",
    "latency_percentile",
    # Tail-latency SLO harness.
    "Trace",
    "TraceRequest",
    "TraceRecorder",
    "TraceReplayer",
    "ReplayReport",
    "SloPolicy",
    "SloVerdict",
    "synthesize_trace",
    # Tenancy.
    "Tenant",
    "TenantDirectory",
    "ANONYMOUS",
    # Registry and network front end.
    "ModelVariant",
    "ModelInfo",
    "ModelReport",
    "ModelRegistry",
    "HttpServerConfig",
    "PredictionHttpServer",
    "STATUS_BY_REASON",
]
