"""The async serving front end: queued, latency-bounded micro-batching.

:class:`~repro.serve.service.PredictionService` is synchronous — every
``submit`` call coalesces and flushes on its own, so concurrent clients
never share a batch and there is no queueing, no latency/throughput knob
and no back-pressure.  :class:`AsyncPredictionService` adds all three in
front of it:

* producers :meth:`~AsyncPredictionService.submit` individual requests and
  immediately receive a :class:`concurrent.futures.Future`;
* a dispatcher thread drains the shared :class:`~repro.serve.queue.RequestQueue`
  into micro-batch flushes, each flush triggered by ``max_batch_size``
  pending blocks OR a latency deadline on the oldest request — whichever
  fires first;
* every flush is one synchronous ``PredictionService.submit`` call, so the
  async front end composes unchanged with the in-process model or the
  hash-sharded worker pool behind it — including that service's
  ``inference_dtype``: put the queue in front of a float32 service config
  and every flush runs mixed-precision across the whole sharded pool.

The flush deadline itself is governed by a pluggable policy
(:mod:`repro.serve.flush`): ``flush_policy="static"`` keeps the fixed
``max_latency_ms`` deadline, ``"adaptive"`` scales it with the observed
load between ``min_latency_ms`` (idle — flush a lone request fast, nobody
else is coming) and ``max_latency_ms`` (busy — let batches pack densely).

Requests can leave the queue without being served: clients may ``cancel()``
their future while it is queued (the entry is discarded eagerly, before it
can occupy a micro-batch) and requests submitted with a ``deadline_ms``
budget resolve with :class:`~repro.serve.queue.RequestExpiredError` when
the budget runs out.  Both drop classes are counted and reported by
:meth:`AsyncPredictionService.snapshot`, alongside the controller state,
queue depth and realized flush-wait percentiles.

When the underlying service declares elastic worker bounds
(``ServiceConfig(min_workers=..., max_workers=...)``), the front end also
runs a small monitor thread that feeds the live queue depth into
``PredictionService.maybe_autoscale`` — queue pressure grows the pool,
sustained idleness shrinks it, and the consistent hash ring keeps cache
movement to ~1/N per resize.
"""

from __future__ import annotations

import functools
import math
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.serve.config import AsyncOptions, AsyncServiceConfig
from repro.serve.faults import FaultInjector
from repro.serve.flush import (
    FlushController,
    HedgeController,
    create_flush_controller,
)
from repro.serve.queue import (
    Priority,
    QueuedRequest,
    QueueFullError,
    RequestExpiredError,
    RequestQueue,
)
from repro.serve.resilience import StalePredictionCache, run_with_retries
from repro.serve.service import PredictionService, ServiceConfig
from repro.serve.stats import (
    FlushStats,
    HedgeStats,
    QueueStats,
    ResilienceStats,
    ServiceSnapshot,
    latency_percentile,
)
from repro.serve.types import (
    PredictionRequest,
    PredictionResponse,
    ServiceClosedError,
)

# AsyncServiceConfig moved to repro.serve.config (deprecated in favour of
# ServiceConfig.async_options / AsyncOptions); re-exported here so the
# historical import path keeps working.
__all__ = ["AsyncServiceConfig", "AsyncServiceStats", "AsyncPredictionService"]


@dataclass
class AsyncServiceStats:
    """Counters and flush-latency samples of one async front end."""

    requests: int = 0
    blocks: int = 0
    flushes: int = 0
    size_flushes: int = 0
    deadline_flushes: int = 0
    close_flushes: int = 0
    flushed_blocks: int = 0
    #: Entries dropped at flush time because their future was already
    #: cancelled (eagerly-discarded queue entries are counted by the queue).
    cancelled_drops: int = 0
    #: Entries dropped at flush time because their deadline had passed
    #: (queue-side expiries are counted by the queue).
    expired_drops: int = 0
    #: Wait of each flush's *oldest* request, enqueue -> dispatch, seconds.
    #: Bounded so a long-lived service cannot grow without limit.  A biased
    #: request-latency estimate by construction (one sample per flush, the
    #: worst-waiting request only) — per-request latency lives in
    #: ``request_latencies``.
    flush_waits: Deque[float] = field(default_factory=lambda: deque(maxlen=8192))
    #: Flush deadline (ms) in effect at each flush — how benchmarks watch
    #: the adaptive controller act.  Bounded like ``flush_waits``.
    flush_deadlines_ms: Deque[float] = field(
        default_factory=lambda: deque(maxlen=8192)
    )
    #: Queue depth (pending blocks) right after each flush was drained.
    queue_depths: Deque[int] = field(default_factory=lambda: deque(maxlen=8192))
    #: Per-request enqueue -> completion latency, seconds (bounded
    #: reservoir).  Every served queue entry contributes one sample — the
    #: whole distribution, not just each flush's oldest request — so these
    #: percentiles are what clients actually experienced, including the
    #: model call itself.  Under hedging, winning and losing attempts both
    #: contribute (the straggling loser keeps the tail honest, which also
    #: keeps the hedge deadline from chasing its own improvement).
    request_latencies: Deque[float] = field(
        default_factory=lambda: deque(maxlen=8192)
    )
    #: Wall time of each flush's ``PredictionService.submit`` call, seconds
    #: — the per-batch service latency the autoscaler uses to estimate
    #: drain time.
    flush_service_s: Deque[float] = field(
        default_factory=lambda: deque(maxlen=8192)
    )
    #: Queue entries resolved with a response / with a service error.
    requests_completed: int = 0
    request_errors: int = 0
    #: Hedge duplicates submitted / that answered the client first / that
    #: were cancelled while still queued.
    hedges_issued: int = 0
    hedges_won: int = 0
    hedges_cancelled: int = 0
    #: Backoff retries the dispatcher actually took / submissions that
    #: still failed after the last attempt.
    retries: int = 0
    retries_exhausted: int = 0
    #: Requests answered from the stale prediction cache (``degraded=True``).
    degraded_responses: int = 0
    #: Submissions rejected by an armed queue-saturation fault.
    injected_queue_rejections: int = 0

    @property
    def mean_flush_blocks(self) -> float:
        return self.flushed_blocks / self.flushes if self.flushes else 0.0

    def flush_wait_percentile(self, quantile: float) -> float:
        """The ``quantile`` (0..1) of recorded flush waits, in seconds.

        NaN while no flush has been recorded: an empty window must never
        read as 0.0, or SLO checks and the autoscaler would mistake "no
        samples yet" for "zero latency".
        """
        return latency_percentile(self.flush_waits, quantile)

    def flush_deadline_percentile(self, quantile: float) -> float:
        """The ``quantile`` (0..1) of realized flush deadlines, in ms.

        NaN for an empty window, like :meth:`flush_wait_percentile`.
        """
        return latency_percentile(self.flush_deadlines_ms, quantile)

    def request_latency_percentile(self, quantile: float) -> float:
        """The ``quantile`` (0..1) of per-request latencies, in seconds.

        NaN for an empty window, like :meth:`flush_wait_percentile`.
        """
        return latency_percentile(self.request_latencies, quantile)


class _HedgedCall:
    """Mutable race state of one client request (primary vs. hedge attempt).

    Plain data plus a leaf lock: every transition happens inside
    ``AsyncPredictionService`` methods under :attr:`lock`, which is never
    held while resolving or cancelling a future (done callbacks run
    synchronously and re-enter these methods).
    """

    __slots__ = (
        "request",
        "priority",
        "deadline_s",
        "enqueued_at",
        "client",
        "lock",
        "attempts",
        "outstanding",
        "hedged",
        "finished",
        "first_error",
    )

    def __init__(
        self,
        request: PredictionRequest,
        priority: int,
        deadline_s: Optional[float],
        enqueued_at: float,
    ) -> None:
        self.request = request
        self.priority = priority
        self.deadline_s = deadline_s
        self.enqueued_at = enqueued_at
        #: The future handed to the client; resolved exactly once by the
        #: first attempt to finish (set_running_or_notify_cancel guards the
        #: client-cancelled race).
        self.client: Future = Future()
        self.lock = threading.Lock()
        #: Queue entries issued for this call (primary first).
        self.attempts: List[QueuedRequest] = []
        self.outstanding = 0
        self.hedged = False
        self.finished = False
        #: First attempt error, so a later loser's cancellation/expiry
        #: cannot shadow the informative failure.
        self.first_error: Optional[BaseException] = None


class AsyncPredictionService:
    """Queued prediction front end with latency-bounded micro-batching.

    Args:
        config: Flush/queue knobs: an :class:`~repro.serve.AsyncOptions`
            (preferred), a legacy ``AsyncServiceConfig``, or ``None`` to
            inherit the service config's ``async_options`` (and its
            ``max_batch_size`` as the size-flush bound).
        service: The synchronous service to flush into.  When ``None``, one
            is built from ``service_config`` (or its defaults) and owned —
            i.e. closed — by this front end; a caller-provided service is
            left open on :meth:`close` so it can be shared.
        service_config: Configuration of the owned service (mutually
            exclusive with ``service``).
    """

    def __init__(
        self,
        config: Union[AsyncServiceConfig, AsyncOptions, None] = None,
        service: Optional[PredictionService] = None,
        service_config: Optional[ServiceConfig] = None,
    ) -> None:
        if service is not None and service_config is not None:
            raise ValueError("pass either a service or a service_config, not both")
        self._owns_service = service is None
        self.service = service or PredictionService(service_config)
        if config is None:
            options = self.service.config.async_options
            max_batch_size = self.service.config.max_batch_size
        elif isinstance(config, AsyncOptions):
            options = config
            max_batch_size = self.service.config.max_batch_size
        else:
            options = config.options
            max_batch_size = config.max_batch_size
        #: The async layer's own knobs (the preferred spelling).
        self.options = options
        #: Normalized legacy view (``options`` + the size-flush bound);
        #: kept so existing ``front_end.config.max_batch_size`` reads work.
        self.config = AsyncServiceConfig.from_options(options, max_batch_size)
        self.queue = RequestQueue(
            max_blocks=options.max_queue_blocks,
            policy=options.backpressure,
        )
        self.controller: FlushController = create_flush_controller(
            options.flush_policy,
            options.max_latency_ms / 1e3,
            options.min_latency_ms / 1e3,
            max_batch_size,
            options.controller_window_ms / 1e3,
        )
        self.stats = AsyncServiceStats()
        # Guards the producer-side counters: submit() runs from many client
        # threads, and `+=` on shared attributes is not atomic.
        self._stats_lock = threading.Lock()
        # Serializes start/close transitions against each other (close is
        # documented idempotent, which includes concurrent callers).
        self._lifecycle_lock = threading.Lock()
        self._dispatcher: Optional[threading.Thread] = None
        self._autoscale_monitor: Optional[threading.Thread] = None
        self._hedge_monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        #: Autoscale attempts that raised (e.g. a worker spawn failing
        #: under resource pressure); the monitor retries on the next poll.
        self.autoscale_errors = 0
        # Concurrent flush dispatch: >1 hands flushes to this pool so a
        # straggling batch cannot head-of-line-block the batches (and
        # hedges) behind it.  The semaphore bounds in-flight flushes and
        # doubles as the dispatcher's drain barrier.
        if options.max_concurrent_flushes > 1:
            self._flush_pool: Optional[ThreadPoolExecutor] = ThreadPoolExecutor(
                max_workers=options.max_concurrent_flushes,
                thread_name_prefix="repro-serve-flush",
            )
            self._flush_slots: Optional[threading.Semaphore] = threading.Semaphore(
                options.max_concurrent_flushes
            )
        else:
            self._flush_pool = None
            self._flush_slots = None
        # Hedging: the monitor re-submits calls that outlive the deadline
        # derived from observed request latencies.
        self._hedge_controller = HedgeController(
            quantile=options.hedge_quantile,
            min_samples=options.hedge_min_samples,
            min_s=options.hedge_min_ms / 1e3,
            max_s=None if options.hedge_max_ms is None else options.hedge_max_ms / 1e3,
        )
        self._hedge_lock = threading.Lock()
        self._hedge_calls: set = set()
        # Self-healing: the sanctioned retry loop around failed flush
        # submissions, the stale cache backing graceful degradation, and
        # the event-scoped fault injector (queue saturation), all optional.
        self._retry_policy = options.retry_policy
        self._retry_budget = (
            options.retry_policy.make_budget()
            if options.retry_policy is not None
            else None
        )
        self._stale_cache = (
            StalePredictionCache(options.stale_cache_size)
            if options.degraded_mode
            else None
        )
        fault_plan = getattr(self.service.config, "fault_plan", None)
        self._fault_injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self._closed = False

    @property
    def inference_dtype(self) -> str:
        """Compute dtype of the service this front end flushes into."""
        return self.service.inference_dtype

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #
    def start(self) -> "AsyncPredictionService":
        """Warm-starts the underlying service and the dispatcher thread.

        The service is warmed in the caller's thread (worker processes must
        not be forked from the dispatcher), then the dispatcher starts
        draining.  Requests submitted before ``start`` simply wait in the
        queue.  When the service has elastic worker bounds, an autoscale
        monitor thread starts too.  Idempotent while running.
        """
        with self._lifecycle_lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            if self._dispatcher is None:
                self.service.warm_start()
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    name="repro-serve-dispatcher",
                    daemon=True,
                )
                self._dispatcher.start()
            if (
                self._autoscale_monitor is None
                and self.service.autoscaling_enabled
            ):
                self._autoscale_monitor = threading.Thread(
                    target=self._autoscale_loop,
                    name="repro-serve-autoscaler",
                    daemon=True,
                )
                self._autoscale_monitor.start()
            if self._hedge_monitor is None and self.options.hedge_enabled:
                self._hedge_monitor = threading.Thread(
                    target=self._hedge_loop,
                    name="repro-serve-hedger",
                    daemon=True,
                )
                self._hedge_monitor.start()
        return self

    def close(self) -> None:
        """Drains the queue, resolves every pending future, stops (idempotent).

        Already-admitted requests are still flushed and answered; new
        submissions fail immediately.  The underlying service is closed only
        if this front end built it.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            dispatcher, self._dispatcher = self._dispatcher, None
            monitor, self._autoscale_monitor = self._autoscale_monitor, None
            hedger, self._hedge_monitor = self._hedge_monitor, None
        self._monitor_stop.set()
        if monitor is not None:
            monitor.join()
        if hedger is not None:
            hedger.join()
        self.queue.close()
        if dispatcher is not None:
            dispatcher.join()
        else:
            # Never started: resolve whatever was queued ourselves.
            self._drain_queue(max_wait_s=0.0)
        # The dispatcher's drain barrier already waited for in-flight
        # flushes; shutting down afterwards just retires the idle threads.
        if self._flush_pool is not None:
            self._flush_pool.shutdown(wait=True)
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "AsyncPredictionService":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Producer API.
    # ------------------------------------------------------------------ #
    def submit(
        self,
        request: PredictionRequest,
        priority: int = Priority.NORMAL,
        timeout: Optional[float] = None,
        deadline_ms: Optional[float] = None,
    ) -> "Future":
        """Enqueues one request; returns the future of its response.

        Args:
            request: The request to serve.
            priority: Scheduling class (:class:`~repro.serve.queue.Priority`
                or any int; lower drains first).
            timeout: With the ``block`` back-pressure policy, how long to
                wait for queue space before giving up (``None`` = forever).
            deadline_ms: Optional per-request latency budget measured from
                admission.  A request still queued when it runs out is
                dropped — before it can occupy a micro-batch — and its
                future resolves with
                :class:`~repro.serve.queue.RequestExpiredError`.

        The returned future supports ``cancel()`` while the request is
        queued: a cancelled entry is discarded eagerly (its blocks free up
        queue capacity immediately) and never reaches a worker.  With
        ``hedge_enabled`` the future is a wrapper racing the primary queue
        entry against a possible hedge duplicate — first result wins,
        cancelling it cancels every attempt.

        Raises:
            QueueFullError: The queue is full (``reject`` policy) or the
                wait for space timed out (``block`` policy).
        """
        if self._fault_injector is not None and self._fault_injector.on_submit():
            with self._stats_lock:
                self.stats.injected_queue_rejections += 1
            raise QueueFullError("injected queue-saturation fault")
        deadline_s = None if deadline_ms is None else deadline_ms / 1e3
        entry = self.queue.put(
            request,
            priority=priority,
            timeout=timeout,
            deadline_s=deadline_s,
        )
        client: Future = entry.future
        if self.options.hedge_enabled:
            call = _HedgedCall(request, int(priority), deadline_s, entry.enqueued_at)
            with self._hedge_lock:
                self._hedge_calls.add(call)
            self._attach_attempt(call, entry, is_hedge=False)
            call.client.add_done_callback(
                functools.partial(self._on_client_done, call)
            )
            client = call.client
        self.controller.observe_arrival(request.num_blocks)
        with self._stats_lock:
            self.stats.requests += 1
            self.stats.blocks += request.num_blocks
        return client

    def predict_blocks(
        self,
        blocks: Sequence[Union[BasicBlock, str]],
        priority: int = Priority.INTERACTIVE,
        timeout: Optional[float] = None,
    ) -> Dict[str, np.ndarray]:
        """Synchronous convenience: submit one request, wait for its arrays.

        Defaults to :attr:`~repro.serve.queue.Priority.INTERACTIVE` since
        the caller is, by construction, blocked on the answer.  ``timeout``
        bounds each of the two waits (admission under the ``block``
        back-pressure policy, then the result), so the call cannot hang
        un-bounded on a full queue.
        """
        future = self.submit(
            PredictionRequest.of(blocks), priority=priority, timeout=timeout
        )
        return future.result(timeout).predictions

    # ------------------------------------------------------------------ #
    # Hedging.
    # ------------------------------------------------------------------ #
    def _attach_attempt(
        self, call: _HedgedCall, entry: QueuedRequest, is_hedge: bool
    ) -> None:
        with call.lock:
            call.attempts.append(entry)
            call.outstanding += 1
        # Outside call.lock: an already-resolved entry runs the callback
        # synchronously, and the callback re-acquires call.lock.
        entry.future.add_done_callback(
            functools.partial(self._on_attempt_done, call, is_hedge)
        )

    def _on_client_done(self, call: _HedgedCall, future: Future) -> None:
        if not future.cancelled():
            return
        with call.lock:
            attempts = list(call.attempts)
        for entry in attempts:
            entry.future.cancel()

    def _on_attempt_done(
        self, call: _HedgedCall, is_hedge: bool, future: Future
    ) -> None:
        """Settles the race when an attempt resolves (first result wins).

        Runs as a done callback — synchronously inside whatever resolved
        the attempt (flush thread, queue expiry, a cancel) — so it must
        not block and must release ``call.lock`` before touching any
        future.
        """
        deliver = None  # ("result", response) | ("error", exc) | ("cancelled",)
        with call.lock:
            call.outstanding -= 1
            last = call.outstanding == 0
            if not call.finished:
                if future.cancelled():
                    if last:
                        call.finished = True
                        deliver = (
                            ("error", call.first_error)
                            if call.first_error is not None
                            else ("cancelled",)
                        )
                else:
                    error = future.exception()
                    if error is None:
                        call.finished = True
                        deliver = ("result", future.result())
                    else:
                        if call.first_error is None:
                            call.first_error = error
                        if last:
                            call.finished = True
                            deliver = ("error", call.first_error)
            losers = (
                [e for e in call.attempts if e.future is not future]
                if deliver is not None and deliver[0] == "result"
                else []
            )
        if deliver is not None:
            if deliver[0] == "result":
                # set_running_or_notify_cancel returns False iff the client
                # cancelled the wrapper — then the result is discarded (the
                # loser entries were already cancelled by _on_client_done).
                delivered = call.client.set_running_or_notify_cancel()
                if delivered:
                    call.client.set_result(deliver[1])
                losers_cancelled = sum(
                    1 for entry in losers if entry.future.cancel()
                )
                with self._stats_lock:
                    if delivered and is_hedge:
                        self.stats.hedges_won += 1
                    self.stats.hedges_cancelled += losers_cancelled
            elif deliver[0] == "error":
                if call.client.set_running_or_notify_cancel():
                    call.client.set_exception(deliver[1])
            else:
                # Every attempt was cancelled without a result or error —
                # normally because the client cancelled the wrapper first,
                # in which case this is a no-op.
                call.client.cancel()
        if last:
            with self._hedge_lock:
                self._hedge_calls.discard(call)

    def _hedge_loop(self) -> None:
        interval = self.options.hedge_poll_ms / 1e3
        while not self._monitor_stop.wait(interval):
            deadline_s = self._hedge_deadline_s()
            if math.isnan(deadline_s):
                continue  # under-sampled: hedging stays dormant
            now = time.monotonic()
            with self._hedge_lock:
                calls = list(self._hedge_calls)
            for call in calls:
                with call.lock:
                    due = (
                        not call.hedged
                        and not call.finished
                        and now - call.enqueued_at >= deadline_s
                    )
                    if due:
                        call.hedged = True
                if due:
                    self._issue_hedge(call)

    def _hedge_deadline_s(self) -> float:
        """The age (seconds) past which an in-flight call gets hedged."""
        with self._stats_lock:
            samples = list(self.stats.request_latencies)
        return self._hedge_controller.deadline_s(samples)

    def _issue_hedge(self, call: _HedgedCall) -> None:
        deadline_s = None
        if call.deadline_s is not None:
            deadline_s = call.deadline_s - (time.monotonic() - call.enqueued_at)
            if deadline_s <= 0:
                return  # the primary is about to expire; don't pile on
        try:
            # timeout=0: the hedge monitor must never park on a full queue
            # (a hedge that has to wait for capacity would arrive too late
            # to beat anything anyway).
            entry = self.queue.put(
                call.request,
                priority=call.priority,
                timeout=0.0,
                deadline_s=deadline_s,
            )
        except (QueueFullError, ServiceClosedError):
            with call.lock:
                call.hedged = False  # no capacity now; re-candidate next poll
            return
        self.controller.observe_arrival(call.request.num_blocks)
        with self._stats_lock:
            self.stats.hedges_issued += 1
        self._attach_attempt(call, entry, is_hedge=True)

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    def snapshot(self) -> ServiceSnapshot:
        """A point-in-time typed view of the serving stack.

        Returns a :class:`~repro.serve.stats.ServiceSnapshot` combining the
        queue section (admission state and drop counters — queue-side eager
        discards plus dispatcher-side flush-time drops), the flush section
        (counters, realized wait/deadline percentiles, the controller's
        current deadline), the underlying service's
        :class:`~repro.serve.stats.ModelStats`, and the flush controller's
        raw state dict.  Historical flat keys
        (``snapshot["flush_wait_p99_ms"]`` etc.) still resolve.
        """
        # Controller and queue take their own locks; read them before
        # entering the stats critical section to keep it a leaf lock.
        # (peek, not deadline_s: observers must not overwrite the
        # controller's last dispatcher decision, which the per-flush
        # deadline history records.)
        current_deadline_ms = (
            self.controller.peek_deadline_s(self.queue.pending_blocks) * 1e3
        )
        # Counters are mutated by client threads (submit), the dispatcher
        # (_flush) and the autoscale monitor — read them under the same
        # lock so the snapshot is internally consistent.
        with self._stats_lock:
            stats = self.stats
            submitted_requests = stats.requests
            submitted_blocks = stats.blocks
            flush = FlushStats(
                policy=self.controller.policy,
                current_deadline_ms=current_deadline_ms,
                flushes=stats.flushes,
                size_flushes=stats.size_flushes,
                deadline_flushes=stats.deadline_flushes,
                close_flushes=stats.close_flushes,
                flushed_blocks=stats.flushed_blocks,
                mean_flush_blocks=stats.mean_flush_blocks,
                wait_p50_ms=stats.flush_wait_percentile(0.50) * 1e3,
                wait_p99_ms=stats.flush_wait_percentile(0.99) * 1e3,
                deadline_p50_ms=stats.flush_deadline_percentile(0.50),
                deadline_p99_ms=stats.flush_deadline_percentile(0.99),
                request_p50_ms=stats.request_latency_percentile(0.50) * 1e3,
                request_p99_ms=stats.request_latency_percentile(0.99) * 1e3,
                request_p999_ms=stats.request_latency_percentile(0.999) * 1e3,
                requests_completed=stats.requests_completed,
                request_errors=stats.request_errors,
            )
            dispatcher_cancelled = stats.cancelled_drops
            dispatcher_expired = stats.expired_drops
            autoscale_errors = self.autoscale_errors
            hedge_samples = list(stats.request_latencies)
            hedges_issued = stats.hedges_issued
            hedges_won = stats.hedges_won
            hedges_cancelled = stats.hedges_cancelled
            retries = stats.retries
            retries_exhausted = stats.retries_exhausted
            degraded_responses = stats.degraded_responses
            injected_queue_rejections = stats.injected_queue_rejections
        with self._hedge_lock:
            hedge_inflight = len(self._hedge_calls)
        hedge = HedgeStats(
            enabled=self.options.hedge_enabled,
            issued=hedges_issued,
            won=hedges_won,
            losers_cancelled=hedges_cancelled,
            deadline_ms=self._hedge_controller.deadline_s(hedge_samples) * 1e3,
            inflight=hedge_inflight,
        )
        queue = QueueStats(
            depth_blocks=self.queue.pending_blocks,
            depth_requests=len(self.queue),
            max_blocks=self.queue.max_blocks,
            backpressure=self.queue.policy,
            submitted_requests=submitted_requests,
            submitted_blocks=submitted_blocks,
            rejected=self.queue.rejected,
            cancelled_drops=self.queue.cancelled + dispatcher_cancelled,
            expired_drops=self.queue.expired + dispatcher_expired,
        )
        resilience = ResilienceStats(
            retries=retries,
            retries_exhausted=retries_exhausted,
            retry_budget_denied=(
                self._retry_budget.denied if self._retry_budget is not None else 0
            ),
            degraded_responses=degraded_responses,
            stale_cache_entries=(
                len(self._stale_cache) if self._stale_cache is not None else 0
            ),
            injected_queue_rejections=injected_queue_rejections,
        )
        return ServiceSnapshot(
            queue=queue,
            flush=flush,
            model=self.service.snapshot(),
            hedge=hedge,
            controller=self.controller.state(),
            autoscale_errors=autoscale_errors,
            resilience=resilience,
        )

    # ------------------------------------------------------------------ #
    # Dispatcher.
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        # The controller runs inside the queue's flush-wait loop (under the
        # queue lock), which is why it receives the pending-block count as
        # an argument instead of reading the queue itself.
        self._drain_queue(self.controller.deadline_s)

    def _autoscale_loop(self) -> None:
        interval = self.config.autoscale_poll_ms / 1e3
        # The wait budget the realized-latency signals are judged against:
        # twice the flush-deadline ceiling.  Waits below it are the
        # batching policy working as configured; sustained p99 beyond it
        # means the pool drains slower than the deadline assumes.
        wait_budget_s = 2.0 * self.options.max_latency_ms / 1e3
        flushes_seen = 0
        while not self._monitor_stop.wait(interval):
            with self._stats_lock:
                # Only the waits of flushes completed since the previous
                # poll: a percentile over any fixed-size window would keep
                # reporting a long-gone burst forever once traffic stops,
                # pinning the pool at its burst size.  No new flushes ->
                # NaN -> the autoscaler sees no wait signal and the idle
                # shrink path works exactly as before.
                new_flushes = min(
                    self.stats.flushes - flushes_seen, len(self.stats.flush_waits)
                )
                flushes_seen = self.stats.flushes
                fresh_waits = (
                    list(self.stats.flush_waits)[-new_flushes:]
                    if new_flushes > 0
                    else []
                )
                wait_p99_s = latency_percentile(fresh_waits, 0.99)
                # Service time per flush barely drifts, so staleness is
                # harmless here (and drain pressure already vanishes with
                # an empty queue: it scales with pending_blocks).
                batch_latency_s = latency_percentile(
                    list(self.stats.flush_service_s)[-64:], 0.50
                )
            try:
                self.service.maybe_autoscale(
                    self.queue.pending_blocks,
                    flush_wait_p99_s=wait_p99_s,
                    batch_latency_s=batch_latency_s,
                    wait_budget_s=wait_budget_s,
                )
            except RuntimeError:
                return  # the service closed under us; nothing left to scale
            except Exception:
                # A transient failure (e.g. OSError spawning a replica under
                # fd/memory pressure) must not kill the monitor and silently
                # disable elasticity for the rest of the service's life:
                # count it and retry on the next poll.
                with self._stats_lock:
                    self.autoscale_errors += 1

    def _drain_queue(self, max_wait_s) -> None:
        """Flushes batches until the queue reports closed-and-empty.

        ``max_wait_s`` is a float or a ``pending_blocks -> seconds``
        callable, passed straight through to ``RequestQueue.take_batch``.
        With ``max_concurrent_flushes > 1`` each flush is handed to the
        flush pool (bounded by the slot semaphore) so the next batch can
        dispatch while a straggler is still in the service.
        """
        pool, slots = self._flush_pool, self._flush_slots
        try:
            while True:
                entries, reason = self.queue.take_batch(
                    self.config.max_batch_size, max_wait_s
                )
                if not entries:
                    return  # closed and fully drained
                if pool is None:
                    self._flush(entries, reason)
                else:
                    slots.acquire()
                    pool.submit(self._flush_and_release, entries, reason)
        finally:
            if slots is not None:
                # Drain barrier: owning every slot proves no flush is in
                # flight, so close() can resolve "drained" truthfully.
                for _ in range(self.options.max_concurrent_flushes):
                    slots.acquire()
                for _ in range(self.options.max_concurrent_flushes):
                    slots.release()

    def _flush_and_release(self, entries, reason: str) -> None:
        try:
            self._flush(entries, reason)
        finally:
            self._flush_slots.release()

    def _flush(self, entries, reason: str) -> None:
        now = time.monotonic()
        # Drop dead entries *before* coalescing, so abandoned or expired
        # requests never consume worker time.  Cancelled futures must never
        # see set_result/set_exception (InvalidStateError would kill the
        # dispatcher thread and strand every later request) — a False
        # set_running_or_notify_cancel() return means the client cancelled
        # while queued.
        kept = []
        expired_drops = 0
        cancelled_drops = 0
        for entry in entries:
            if entry.deadline_at is not None and now >= entry.deadline_at:
                if entry.future.set_running_or_notify_cancel():
                    entry.future.set_exception(
                        RequestExpiredError(
                            f"request {entry.request.request_id!r} expired "
                            f"after waiting {now - entry.enqueued_at:.3f}s"
                        )
                    )
                    expired_drops += 1
                else:
                    cancelled_drops += 1
            elif entry.future.set_running_or_notify_cancel():
                kept.append(entry)
            else:
                cancelled_drops += 1
        entries = kept
        if not entries:
            with self._stats_lock:
                self.stats.expired_drops += expired_drops
                self.stats.cancelled_drops += cancelled_drops
            return
        # Controller and queue take their own locks; read them before
        # entering the stats critical section to keep it a leaf lock.
        deadline_ms = float(self.controller.state()["deadline_ms"])
        queue_depth = self.queue.pending_blocks
        with self._stats_lock:
            self.stats.expired_drops += expired_drops
            self.stats.cancelled_drops += cancelled_drops
            self.stats.flushes += 1
            self.stats.flushed_blocks += sum(e.request.num_blocks for e in entries)
            self.stats.flush_waits.append(now - min(e.enqueued_at for e in entries))
            self.stats.flush_deadlines_ms.append(deadline_ms)
            self.stats.queue_depths.append(queue_depth)
            if reason == "size":
                self.stats.size_flushes += 1
            elif reason == "deadline":
                self.stats.deadline_flushes += 1
            else:
                self.stats.close_flushes += 1
        service_started = time.monotonic()
        try:
            responses = self._submit_with_retries(entries)
        except Exception as error:
            served, failed = self._degraded_responses(entries)
            done_at = time.monotonic()
            with self._stats_lock:
                self.stats.degraded_responses += len(served)
                self.stats.requests_completed += len(served)
                for entry, _ in served:
                    self.stats.request_latencies.append(done_at - entry.enqueued_at)
                self.stats.request_errors += len(failed)
            for entry, response in served:
                entry.future.set_result(response)
            for entry in failed:
                entry.future.set_exception(error)
            return
        service_s = time.monotonic() - service_started
        if self._stale_cache is not None:
            for entry, response in zip(entries, responses):
                self._stale_cache.record(
                    entry.request.block_texts, response.predictions
                )
        # Record latencies *before* resolving the futures: a client (or the
        # hedge monitor) reacting to a result must never observe stats that
        # don't include it yet.
        done_at = time.monotonic()
        with self._stats_lock:
            self.stats.flush_service_s.append(service_s)
            for entry in entries:
                self.stats.request_latencies.append(done_at - entry.enqueued_at)
            self.stats.requests_completed += len(entries)
        for entry, response in zip(entries, responses):
            entry.future.set_result(response)

    # ------------------------------------------------------------------ #
    # Self-healing.
    # ------------------------------------------------------------------ #
    @staticmethod
    def _retryable(error: BaseException) -> bool:
        """Transient failures retry; client errors and closure never do.

        Worker crashes, hang timeouts and fd pressure all surface as
        ``RuntimeError``/``OSError``/``TimeoutError`` from the sync layer.
        ``ServiceClosedError`` subclasses ``RuntimeError`` but retrying a
        closed service can only fail again, so it is excluded explicitly.
        """
        if isinstance(error, ServiceClosedError):
            return False
        return isinstance(error, (RuntimeError, OSError, TimeoutError))

    def _submit_with_retries(self, entries) -> list:
        requests = [entry.request for entry in entries]
        if self._retry_policy is None:
            return self.service.submit(requests)

        def on_retry(attempt: int, delay_s: float, error: BaseException) -> None:
            with self._stats_lock:
                self.stats.retries += 1

        try:
            return run_with_retries(
                lambda: self.service.submit(requests),
                self._retry_policy,
                budget=self._retry_budget,
                retryable=self._retryable,
                on_retry=on_retry,
                token=entries[0].request.request_id,
            )
        except Exception:
            with self._stats_lock:
                self.stats.retries_exhausted += 1
            raise

    def _degraded_responses(self, entries) -> tuple:
        """Splits a failed batch into stale-servable and truly failed entries.

        Returns ``(served, failed)`` where ``served`` pairs each entry with
        a ``degraded=True`` response built from the stale prediction cache.
        Entries already past their deadline are never served stale — the
        client stopped waiting for an answer, fresh or not.
        """
        if self._stale_cache is None:
            return [], list(entries)
        now = time.monotonic()
        served, failed = [], []
        for entry in entries:
            if entry.deadline_at is not None and now >= entry.deadline_at:
                failed.append(entry)
                continue
            request = entry.request
            payload = self._stale_cache.lookup(request.block_texts, request.tasks)
            if payload is None:
                failed.append(entry)
                continue
            served.append(
                (
                    entry,
                    PredictionResponse(
                        request_id=request.request_id,
                        predictions=payload,
                        num_blocks=request.num_blocks,
                        seconds=0.0,
                        degraded=True,
                    ),
                )
            )
        return served, failed
