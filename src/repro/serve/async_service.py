"""The async serving front end: queued, latency-bounded micro-batching.

:class:`~repro.serve.service.PredictionService` is synchronous — every
``submit`` call coalesces and flushes on its own, so concurrent clients
never share a batch and there is no queueing, no latency/throughput knob
and no back-pressure.  :class:`AsyncPredictionService` adds all three in
front of it:

* producers :meth:`~AsyncPredictionService.submit` individual requests and
  immediately receive a :class:`concurrent.futures.Future`;
* a dispatcher thread drains the shared :class:`~repro.serve.queue.RequestQueue`
  into micro-batch flushes, each flush triggered by ``max_batch_size``
  pending blocks OR the ``max_latency_ms`` deadline of the oldest request —
  whichever fires first;
* every flush is one synchronous ``PredictionService.submit`` call, so the
  async front end composes unchanged with the in-process model or the
  hash-sharded worker pool behind it — including that service's
  ``inference_dtype``: put the queue in front of a float32 service config
  and every flush runs mixed-precision across the whole sharded pool.

Flush-wait latencies (enqueue of the flush's oldest request to dispatch)
are recorded in :class:`AsyncServiceStats`, whose percentiles are how the
sustained-traffic benchmark checks the deadline is actually honored.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Sequence, Union

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.serve.batching import PredictionRequest
from repro.serve.queue import Priority, RequestQueue
from repro.serve.service import PredictionService, ServiceConfig

__all__ = ["AsyncServiceConfig", "AsyncServiceStats", "AsyncPredictionService"]


@dataclass(frozen=True)
class AsyncServiceConfig:
    """Queueing and flushing knobs of an :class:`AsyncPredictionService`.

    Attributes:
        max_batch_size: Flush as soon as this many blocks are pending.
        max_latency_ms: Flush the oldest pending request after at most this
            long, however few blocks have accumulated (the latency bound of
            the latency/throughput trade-off).
        max_queue_blocks: Admission bound of the queue, in blocks.
        backpressure: ``"block"`` (producers wait for space) or
            ``"reject"`` (producers get :class:`~repro.serve.queue.QueueFullError`).
    """

    max_batch_size: int = 64
    max_latency_ms: float = 10.0
    max_queue_blocks: int = 4096
    backpressure: str = "block"

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if self.max_latency_ms < 0:
            raise ValueError("max_latency_ms must be >= 0")
        # max_queue_blocks and backpressure are validated by RequestQueue.


@dataclass
class AsyncServiceStats:
    """Counters and flush-latency samples of one async front end."""

    requests: int = 0
    blocks: int = 0
    flushes: int = 0
    size_flushes: int = 0
    deadline_flushes: int = 0
    close_flushes: int = 0
    flushed_blocks: int = 0
    #: Wait of each flush's *oldest* request, enqueue -> dispatch, seconds.
    #: Bounded so a long-lived service cannot grow without limit.
    flush_waits: Deque[float] = field(default_factory=lambda: deque(maxlen=8192))

    @property
    def mean_flush_blocks(self) -> float:
        return self.flushed_blocks / self.flushes if self.flushes else 0.0

    def flush_wait_percentile(self, quantile: float) -> float:
        """The ``quantile`` (0..1) of recorded flush waits, in seconds."""
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        # list(deque) is a single C-level copy, so it cannot interleave with
        # the dispatcher thread appending mid-iteration (np.asarray on the
        # live deque could).
        samples = list(self.flush_waits)
        if not samples:
            return 0.0
        return float(np.quantile(np.asarray(samples), quantile))


class AsyncPredictionService:
    """Queued prediction front end with latency-bounded micro-batching.

    Args:
        config: Flush/queue knobs; defaults are sensible for tests.
        service: The synchronous service to flush into.  When ``None``, one
            is built from ``service_config`` (or its defaults) and owned —
            i.e. closed — by this front end; a caller-provided service is
            left open on :meth:`close` so it can be shared.
        service_config: Configuration of the owned service (mutually
            exclusive with ``service``).
    """

    def __init__(
        self,
        config: Optional[AsyncServiceConfig] = None,
        service: Optional[PredictionService] = None,
        service_config: Optional[ServiceConfig] = None,
    ) -> None:
        if service is not None and service_config is not None:
            raise ValueError("pass either a service or a service_config, not both")
        self.config = config or AsyncServiceConfig()
        self._owns_service = service is None
        self.service = service or PredictionService(service_config)
        self.queue = RequestQueue(
            max_blocks=self.config.max_queue_blocks,
            policy=self.config.backpressure,
        )
        self.stats = AsyncServiceStats()
        # Guards the producer-side counters: submit() runs from many client
        # threads, and `+=` on shared attributes is not atomic.
        self._stats_lock = threading.Lock()
        # Serializes start/close transitions against each other (close is
        # documented idempotent, which includes concurrent callers).
        self._lifecycle_lock = threading.Lock()
        self._dispatcher: Optional[threading.Thread] = None
        self._closed = False

    @property
    def inference_dtype(self) -> str:
        """Compute dtype of the service this front end flushes into."""
        return self.service.inference_dtype

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #
    def start(self) -> "AsyncPredictionService":
        """Warm-starts the underlying service and the dispatcher thread.

        The service is warmed in the caller's thread (worker processes must
        not be forked from the dispatcher), then the dispatcher starts
        draining.  Requests submitted before ``start`` simply wait in the
        queue.  Idempotent while running.
        """
        with self._lifecycle_lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._dispatcher is None:
                self.service.warm_start()
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    name="repro-serve-dispatcher",
                    daemon=True,
                )
                self._dispatcher.start()
        return self

    def close(self) -> None:
        """Drains the queue, resolves every pending future, stops (idempotent).

        Already-admitted requests are still flushed and answered; new
        submissions fail immediately.  The underlying service is closed only
        if this front end built it.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            dispatcher, self._dispatcher = self._dispatcher, None
        self.queue.close()
        if dispatcher is not None:
            dispatcher.join()
        else:
            # Never started: resolve whatever was queued ourselves.
            self._drain_queue(max_wait_s=0.0)
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "AsyncPredictionService":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Producer API.
    # ------------------------------------------------------------------ #
    def submit(
        self,
        request: PredictionRequest,
        priority: int = Priority.NORMAL,
        timeout: Optional[float] = None,
    ) -> "Future":
        """Enqueues one request; returns the future of its response.

        Args:
            request: The request to serve.
            priority: Scheduling class (:class:`~repro.serve.queue.Priority`
                or any int; lower drains first).
            timeout: With the ``block`` back-pressure policy, how long to
                wait for queue space before giving up (``None`` = forever).

        Raises:
            QueueFullError: The queue is full (``reject`` policy) or the
                wait for space timed out (``block`` policy).
        """
        entry = self.queue.put(request, priority=priority, timeout=timeout)
        with self._stats_lock:
            self.stats.requests += 1
            self.stats.blocks += request.num_blocks
        return entry.future

    def predict_blocks(
        self,
        blocks: Sequence[Union[BasicBlock, str]],
        priority: int = Priority.INTERACTIVE,
        timeout: Optional[float] = None,
    ) -> Dict[str, np.ndarray]:
        """Synchronous convenience: submit one request, wait for its arrays.

        Defaults to :attr:`~repro.serve.queue.Priority.INTERACTIVE` since
        the caller is, by construction, blocked on the answer.  ``timeout``
        bounds each of the two waits (admission under the ``block``
        back-pressure policy, then the result), so the call cannot hang
        un-bounded on a full queue.
        """
        future = self.submit(
            PredictionRequest.of(blocks), priority=priority, timeout=timeout
        )
        return future.result(timeout).predictions

    # ------------------------------------------------------------------ #
    # Dispatcher.
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        self._drain_queue(self.config.max_latency_ms / 1000.0)

    def _drain_queue(self, max_wait_s: float) -> None:
        """Flushes batches until the queue reports closed-and-empty."""
        while True:
            entries, reason = self.queue.take_batch(
                self.config.max_batch_size, max_wait_s
            )
            if not entries:
                return  # closed and fully drained
            self._flush(entries, reason)

    def _flush(self, entries, reason: str) -> None:
        now = time.monotonic()
        # Transition every future to running; a False return means the
        # client cancelled while queued — drop the entry, and never call
        # set_result/set_exception on it (InvalidStateError would kill the
        # dispatcher thread and strand every later request).
        entries = [
            entry for entry in entries if entry.future.set_running_or_notify_cancel()
        ]
        if not entries:
            return
        self.stats.flushes += 1
        self.stats.flushed_blocks += sum(e.request.num_blocks for e in entries)
        self.stats.flush_waits.append(
            now - min(entry.enqueued_at for entry in entries)
        )
        if reason == "size":
            self.stats.size_flushes += 1
        elif reason == "deadline":
            self.stats.deadline_flushes += 1
        else:
            self.stats.close_flushes += 1
        try:
            responses = self.service.submit([entry.request for entry in entries])
        except Exception as error:
            for entry in entries:
                entry.future.set_exception(error)
            return
        for entry, response in zip(entries, responses):
            entry.future.set_result(response)
