"""The async serving front end: queued, latency-bounded micro-batching.

:class:`~repro.serve.service.PredictionService` is synchronous — every
``submit`` call coalesces and flushes on its own, so concurrent clients
never share a batch and there is no queueing, no latency/throughput knob
and no back-pressure.  :class:`AsyncPredictionService` adds all three in
front of it:

* producers :meth:`~AsyncPredictionService.submit` individual requests and
  immediately receive a :class:`concurrent.futures.Future`;
* a dispatcher thread drains the shared :class:`~repro.serve.queue.RequestQueue`
  into micro-batch flushes, each flush triggered by ``max_batch_size``
  pending blocks OR a latency deadline on the oldest request — whichever
  fires first;
* every flush is one synchronous ``PredictionService.submit`` call, so the
  async front end composes unchanged with the in-process model or the
  hash-sharded worker pool behind it — including that service's
  ``inference_dtype``: put the queue in front of a float32 service config
  and every flush runs mixed-precision across the whole sharded pool.

The flush deadline itself is governed by a pluggable policy
(:mod:`repro.serve.flush`): ``flush_policy="static"`` keeps the fixed
``max_latency_ms`` deadline, ``"adaptive"`` scales it with the observed
load between ``min_latency_ms`` (idle — flush a lone request fast, nobody
else is coming) and ``max_latency_ms`` (busy — let batches pack densely).

Requests can leave the queue without being served: clients may ``cancel()``
their future while it is queued (the entry is discarded eagerly, before it
can occupy a micro-batch) and requests submitted with a ``deadline_ms``
budget resolve with :class:`~repro.serve.queue.RequestExpiredError` when
the budget runs out.  Both drop classes are counted and reported by
:meth:`AsyncPredictionService.snapshot`, alongside the controller state,
queue depth and realized flush-wait percentiles.

When the underlying service declares elastic worker bounds
(``ServiceConfig(min_workers=..., max_workers=...)``), the front end also
runs a small monitor thread that feeds the live queue depth into
``PredictionService.maybe_autoscale`` — queue pressure grows the pool,
sustained idleness shrinks it, and the consistent hash ring keeps cache
movement to ~1/N per resize.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Sequence, Union

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.serve.config import AsyncOptions, AsyncServiceConfig
from repro.serve.flush import FlushController, create_flush_controller
from repro.serve.queue import (
    Priority,
    RequestExpiredError,
    RequestQueue,
)
from repro.serve.service import PredictionService, ServiceConfig
from repro.serve.stats import FlushStats, QueueStats, ServiceSnapshot
from repro.serve.types import PredictionRequest, ServiceClosedError

# AsyncServiceConfig moved to repro.serve.config (deprecated in favour of
# ServiceConfig.async_options / AsyncOptions); re-exported here so the
# historical import path keeps working.
__all__ = ["AsyncServiceConfig", "AsyncServiceStats", "AsyncPredictionService"]


@dataclass
class AsyncServiceStats:
    """Counters and flush-latency samples of one async front end."""

    requests: int = 0
    blocks: int = 0
    flushes: int = 0
    size_flushes: int = 0
    deadline_flushes: int = 0
    close_flushes: int = 0
    flushed_blocks: int = 0
    #: Entries dropped at flush time because their future was already
    #: cancelled (eagerly-discarded queue entries are counted by the queue).
    cancelled_drops: int = 0
    #: Entries dropped at flush time because their deadline had passed
    #: (queue-side expiries are counted by the queue).
    expired_drops: int = 0
    #: Wait of each flush's *oldest* request, enqueue -> dispatch, seconds.
    #: Bounded so a long-lived service cannot grow without limit.
    flush_waits: Deque[float] = field(default_factory=lambda: deque(maxlen=8192))
    #: Flush deadline (ms) in effect at each flush — how benchmarks watch
    #: the adaptive controller act.  Bounded like ``flush_waits``.
    flush_deadlines_ms: Deque[float] = field(
        default_factory=lambda: deque(maxlen=8192)
    )
    #: Queue depth (pending blocks) right after each flush was drained.
    queue_depths: Deque[int] = field(default_factory=lambda: deque(maxlen=8192))

    @property
    def mean_flush_blocks(self) -> float:
        return self.flushed_blocks / self.flushes if self.flushes else 0.0

    def flush_wait_percentile(self, quantile: float) -> float:
        """The ``quantile`` (0..1) of recorded flush waits, in seconds."""
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        # list(deque) is a single C-level copy, so it cannot interleave with
        # the dispatcher thread appending mid-iteration (np.asarray on the
        # live deque could).
        samples = list(self.flush_waits)
        if not samples:
            return 0.0
        return float(np.quantile(np.asarray(samples), quantile))

    def flush_deadline_percentile(self, quantile: float) -> float:
        """The ``quantile`` (0..1) of realized flush deadlines, in ms."""
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        samples = list(self.flush_deadlines_ms)
        if not samples:
            return 0.0
        return float(np.quantile(np.asarray(samples), quantile))


class AsyncPredictionService:
    """Queued prediction front end with latency-bounded micro-batching.

    Args:
        config: Flush/queue knobs: an :class:`~repro.serve.AsyncOptions`
            (preferred), a legacy ``AsyncServiceConfig``, or ``None`` to
            inherit the service config's ``async_options`` (and its
            ``max_batch_size`` as the size-flush bound).
        service: The synchronous service to flush into.  When ``None``, one
            is built from ``service_config`` (or its defaults) and owned —
            i.e. closed — by this front end; a caller-provided service is
            left open on :meth:`close` so it can be shared.
        service_config: Configuration of the owned service (mutually
            exclusive with ``service``).
    """

    def __init__(
        self,
        config: Union[AsyncServiceConfig, AsyncOptions, None] = None,
        service: Optional[PredictionService] = None,
        service_config: Optional[ServiceConfig] = None,
    ) -> None:
        if service is not None and service_config is not None:
            raise ValueError("pass either a service or a service_config, not both")
        self._owns_service = service is None
        self.service = service or PredictionService(service_config)
        if config is None:
            options = self.service.config.async_options
            max_batch_size = self.service.config.max_batch_size
        elif isinstance(config, AsyncOptions):
            options = config
            max_batch_size = self.service.config.max_batch_size
        else:
            options = config.options
            max_batch_size = config.max_batch_size
        #: The async layer's own knobs (the preferred spelling).
        self.options = options
        #: Normalized legacy view (``options`` + the size-flush bound);
        #: kept so existing ``front_end.config.max_batch_size`` reads work.
        self.config = AsyncServiceConfig.from_options(options, max_batch_size)
        self.queue = RequestQueue(
            max_blocks=options.max_queue_blocks,
            policy=options.backpressure,
        )
        self.controller: FlushController = create_flush_controller(
            options.flush_policy,
            options.max_latency_ms / 1e3,
            options.min_latency_ms / 1e3,
            max_batch_size,
            options.controller_window_ms / 1e3,
        )
        self.stats = AsyncServiceStats()
        # Guards the producer-side counters: submit() runs from many client
        # threads, and `+=` on shared attributes is not atomic.
        self._stats_lock = threading.Lock()
        # Serializes start/close transitions against each other (close is
        # documented idempotent, which includes concurrent callers).
        self._lifecycle_lock = threading.Lock()
        self._dispatcher: Optional[threading.Thread] = None
        self._autoscale_monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        #: Autoscale attempts that raised (e.g. a worker spawn failing
        #: under resource pressure); the monitor retries on the next poll.
        self.autoscale_errors = 0
        self._closed = False

    @property
    def inference_dtype(self) -> str:
        """Compute dtype of the service this front end flushes into."""
        return self.service.inference_dtype

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #
    def start(self) -> "AsyncPredictionService":
        """Warm-starts the underlying service and the dispatcher thread.

        The service is warmed in the caller's thread (worker processes must
        not be forked from the dispatcher), then the dispatcher starts
        draining.  Requests submitted before ``start`` simply wait in the
        queue.  When the service has elastic worker bounds, an autoscale
        monitor thread starts too.  Idempotent while running.
        """
        with self._lifecycle_lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            if self._dispatcher is None:
                self.service.warm_start()
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    name="repro-serve-dispatcher",
                    daemon=True,
                )
                self._dispatcher.start()
            if (
                self._autoscale_monitor is None
                and self.service.autoscaling_enabled
            ):
                self._autoscale_monitor = threading.Thread(
                    target=self._autoscale_loop,
                    name="repro-serve-autoscaler",
                    daemon=True,
                )
                self._autoscale_monitor.start()
        return self

    def close(self) -> None:
        """Drains the queue, resolves every pending future, stops (idempotent).

        Already-admitted requests are still flushed and answered; new
        submissions fail immediately.  The underlying service is closed only
        if this front end built it.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            dispatcher, self._dispatcher = self._dispatcher, None
            monitor, self._autoscale_monitor = self._autoscale_monitor, None
        self._monitor_stop.set()
        if monitor is not None:
            monitor.join()
        self.queue.close()
        if dispatcher is not None:
            dispatcher.join()
        else:
            # Never started: resolve whatever was queued ourselves.
            self._drain_queue(max_wait_s=0.0)
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "AsyncPredictionService":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Producer API.
    # ------------------------------------------------------------------ #
    def submit(
        self,
        request: PredictionRequest,
        priority: int = Priority.NORMAL,
        timeout: Optional[float] = None,
        deadline_ms: Optional[float] = None,
    ) -> "Future":
        """Enqueues one request; returns the future of its response.

        Args:
            request: The request to serve.
            priority: Scheduling class (:class:`~repro.serve.queue.Priority`
                or any int; lower drains first).
            timeout: With the ``block`` back-pressure policy, how long to
                wait for queue space before giving up (``None`` = forever).
            deadline_ms: Optional per-request latency budget measured from
                admission.  A request still queued when it runs out is
                dropped — before it can occupy a micro-batch — and its
                future resolves with
                :class:`~repro.serve.queue.RequestExpiredError`.

        The returned future supports ``cancel()`` while the request is
        queued: a cancelled entry is discarded eagerly (its blocks free up
        queue capacity immediately) and never reaches a worker.

        Raises:
            QueueFullError: The queue is full (``reject`` policy) or the
                wait for space timed out (``block`` policy).
        """
        entry = self.queue.put(
            request,
            priority=priority,
            timeout=timeout,
            deadline_s=None if deadline_ms is None else deadline_ms / 1e3,
        )
        self.controller.observe_arrival(request.num_blocks)
        with self._stats_lock:
            self.stats.requests += 1
            self.stats.blocks += request.num_blocks
        return entry.future

    def predict_blocks(
        self,
        blocks: Sequence[Union[BasicBlock, str]],
        priority: int = Priority.INTERACTIVE,
        timeout: Optional[float] = None,
    ) -> Dict[str, np.ndarray]:
        """Synchronous convenience: submit one request, wait for its arrays.

        Defaults to :attr:`~repro.serve.queue.Priority.INTERACTIVE` since
        the caller is, by construction, blocked on the answer.  ``timeout``
        bounds each of the two waits (admission under the ``block``
        back-pressure policy, then the result), so the call cannot hang
        un-bounded on a full queue.
        """
        future = self.submit(
            PredictionRequest.of(blocks), priority=priority, timeout=timeout
        )
        return future.result(timeout).predictions

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    def snapshot(self) -> ServiceSnapshot:
        """A point-in-time typed view of the serving stack.

        Returns a :class:`~repro.serve.stats.ServiceSnapshot` combining the
        queue section (admission state and drop counters — queue-side eager
        discards plus dispatcher-side flush-time drops), the flush section
        (counters, realized wait/deadline percentiles, the controller's
        current deadline), the underlying service's
        :class:`~repro.serve.stats.ModelStats`, and the flush controller's
        raw state dict.  Historical flat keys
        (``snapshot["flush_wait_p99_ms"]`` etc.) still resolve.
        """
        # Controller and queue take their own locks; read them before
        # entering the stats critical section to keep it a leaf lock.
        # (peek, not deadline_s: observers must not overwrite the
        # controller's last dispatcher decision, which the per-flush
        # deadline history records.)
        current_deadline_ms = (
            self.controller.peek_deadline_s(self.queue.pending_blocks) * 1e3
        )
        # Counters are mutated by client threads (submit), the dispatcher
        # (_flush) and the autoscale monitor — read them under the same
        # lock so the snapshot is internally consistent.
        with self._stats_lock:
            stats = self.stats
            submitted_requests = stats.requests
            submitted_blocks = stats.blocks
            flush = FlushStats(
                policy=self.controller.policy,
                current_deadline_ms=current_deadline_ms,
                flushes=stats.flushes,
                size_flushes=stats.size_flushes,
                deadline_flushes=stats.deadline_flushes,
                close_flushes=stats.close_flushes,
                flushed_blocks=stats.flushed_blocks,
                mean_flush_blocks=stats.mean_flush_blocks,
                wait_p50_ms=stats.flush_wait_percentile(0.50) * 1e3,
                wait_p99_ms=stats.flush_wait_percentile(0.99) * 1e3,
                deadline_p50_ms=stats.flush_deadline_percentile(0.50),
                deadline_p99_ms=stats.flush_deadline_percentile(0.99),
            )
            dispatcher_cancelled = stats.cancelled_drops
            dispatcher_expired = stats.expired_drops
            autoscale_errors = self.autoscale_errors
        queue = QueueStats(
            depth_blocks=self.queue.pending_blocks,
            depth_requests=len(self.queue),
            max_blocks=self.queue.max_blocks,
            backpressure=self.queue.policy,
            submitted_requests=submitted_requests,
            submitted_blocks=submitted_blocks,
            rejected=self.queue.rejected,
            cancelled_drops=self.queue.cancelled + dispatcher_cancelled,
            expired_drops=self.queue.expired + dispatcher_expired,
        )
        return ServiceSnapshot(
            queue=queue,
            flush=flush,
            model=self.service.snapshot(),
            controller=self.controller.state(),
            autoscale_errors=autoscale_errors,
        )

    # ------------------------------------------------------------------ #
    # Dispatcher.
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        # The controller runs inside the queue's flush-wait loop (under the
        # queue lock), which is why it receives the pending-block count as
        # an argument instead of reading the queue itself.
        self._drain_queue(self.controller.deadline_s)

    def _autoscale_loop(self) -> None:
        interval = self.config.autoscale_poll_ms / 1e3
        while not self._monitor_stop.wait(interval):
            try:
                self.service.maybe_autoscale(self.queue.pending_blocks)
            except RuntimeError:
                return  # the service closed under us; nothing left to scale
            except Exception:
                # A transient failure (e.g. OSError spawning a replica under
                # fd/memory pressure) must not kill the monitor and silently
                # disable elasticity for the rest of the service's life:
                # count it and retry on the next poll.
                with self._stats_lock:
                    self.autoscale_errors += 1

    def _drain_queue(self, max_wait_s) -> None:
        """Flushes batches until the queue reports closed-and-empty.

        ``max_wait_s`` is a float or a ``pending_blocks -> seconds``
        callable, passed straight through to ``RequestQueue.take_batch``.
        """
        while True:
            entries, reason = self.queue.take_batch(
                self.config.max_batch_size, max_wait_s
            )
            if not entries:
                return  # closed and fully drained
            self._flush(entries, reason)

    def _flush(self, entries, reason: str) -> None:
        now = time.monotonic()
        # Drop dead entries *before* coalescing, so abandoned or expired
        # requests never consume worker time.  Cancelled futures must never
        # see set_result/set_exception (InvalidStateError would kill the
        # dispatcher thread and strand every later request) — a False
        # set_running_or_notify_cancel() return means the client cancelled
        # while queued.
        kept = []
        expired_drops = 0
        cancelled_drops = 0
        for entry in entries:
            if entry.deadline_at is not None and now >= entry.deadline_at:
                if entry.future.set_running_or_notify_cancel():
                    entry.future.set_exception(
                        RequestExpiredError(
                            f"request {entry.request.request_id!r} expired "
                            f"after waiting {now - entry.enqueued_at:.3f}s"
                        )
                    )
                    expired_drops += 1
                else:
                    cancelled_drops += 1
            elif entry.future.set_running_or_notify_cancel():
                kept.append(entry)
            else:
                cancelled_drops += 1
        entries = kept
        if not entries:
            with self._stats_lock:
                self.stats.expired_drops += expired_drops
                self.stats.cancelled_drops += cancelled_drops
            return
        # Controller and queue take their own locks; read them before
        # entering the stats critical section to keep it a leaf lock.
        deadline_ms = float(self.controller.state()["deadline_ms"])
        queue_depth = self.queue.pending_blocks
        with self._stats_lock:
            self.stats.expired_drops += expired_drops
            self.stats.cancelled_drops += cancelled_drops
            self.stats.flushes += 1
            self.stats.flushed_blocks += sum(e.request.num_blocks for e in entries)
            self.stats.flush_waits.append(now - min(e.enqueued_at for e in entries))
            self.stats.flush_deadlines_ms.append(deadline_ms)
            self.stats.queue_depths.append(queue_depth)
            if reason == "size":
                self.stats.size_flushes += 1
            elif reason == "deadline":
                self.stats.deadline_flushes += 1
            else:
                self.stats.close_flushes += 1
        try:
            responses = self.service.submit([entry.request for entry in entries])
        except Exception as error:
            for entry in entries:
                entry.future.set_exception(error)
            return
        for entry, response in zip(entries, responses):
            entry.future.set_result(response)
