"""Tenant authentication and per-model authorization for the registry.

Multi-tenant serving needs two small decisions made consistently at every
front door: *who* is calling (an API key names a :class:`Tenant`) and
*what* they may call (each tenant can be restricted to an allow-list of
registry model names).  :class:`TenantDirectory` makes both, raising the
reason-coded errors of :mod:`repro.serve.types` so transports map denials
to their own status space (HTTP: 401 / 403) without string matching.

The directory is deliberately minimal — static keys, exact-match
allow-lists — because it sits in the request hot path; anything richer
(key rotation, scopes, rate limits) belongs in a layer that *produces*
a directory, not in the lookup itself.  Key comparison uses
:func:`hmac.compare_digest`, so a lookup's timing does not leak how much
of a guessed key matched.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.serve.types import AuthenticationError, AuthorizationError

__all__ = ["Tenant", "TenantDirectory", "ANONYMOUS"]


@dataclass(frozen=True)
class Tenant:
    """One tenant of a multi-tenant serving process.

    Attributes:
        name: Stable tenant identifier (what per-tenant request counters
            and logs are keyed by).
        api_key: The tenant's secret key; ``None`` only for the built-in
            :data:`ANONYMOUS` tenant.
        allowed_models: Registry model names this tenant may call;
            ``None`` means every model.
    """

    name: str
    api_key: Optional[str] = None
    allowed_models: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tenant needs a non-empty name")

    def may_use(self, model_name: str) -> bool:
        return self.allowed_models is None or model_name in self.allowed_models


#: The tenant unauthenticated traffic runs as when anonymity is allowed.
ANONYMOUS = Tenant(name="anonymous")


class TenantDirectory:
    """Immutable API-key -> tenant lookup with per-model allow-lists.

    Args:
        tenants: The known tenants (each needs an ``api_key``).
        allow_anonymous: Whether keyless requests are served (as
            :data:`ANONYMOUS`).  Defaults to ``True`` when no tenants are
            configured — a directory nobody configured must not lock the
            single-user dev loop out — and ``False`` otherwise.
    """

    def __init__(
        self,
        tenants: Sequence[Tenant] = (),
        allow_anonymous: Optional[bool] = None,
    ) -> None:
        self.tenants: Tuple[Tenant, ...] = tuple(tenants)
        for tenant in self.tenants:
            if tenant.api_key is None:
                raise ValueError(
                    f"tenant {tenant.name!r} has no api_key; keyless access "
                    f"is configured via allow_anonymous instead"
                )
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {sorted(names)}")
        self.allow_anonymous = (
            not self.tenants if allow_anonymous is None else bool(allow_anonymous)
        )

    def authenticate(self, api_key: Optional[str]) -> Tenant:
        """Resolves ``api_key`` to its tenant.

        Raises:
            AuthenticationError: No key was given and anonymity is off, or
                the key matches no tenant.
        """
        if api_key is None or api_key == "":
            if self.allow_anonymous:
                return ANONYMOUS
            raise AuthenticationError("an API key is required")
        # Constant-time scan over every tenant: neither the timing of a
        # miss nor of a hit reveals which prefix of which key matched.
        found: Optional[Tenant] = None
        for tenant in self.tenants:
            if hmac.compare_digest(tenant.api_key, api_key):
                found = tenant
        if found is None:
            raise AuthenticationError("unrecognised API key")
        return found

    def authorize(self, tenant: Tenant, model_name: str) -> None:
        """Checks that ``tenant`` may call ``model_name``.

        Raises:
            AuthorizationError: The model is not on the tenant's allow-list.
        """
        if not tenant.may_use(model_name):
            raise AuthorizationError(
                f"tenant {tenant.name!r} may not use model {model_name!r}"
            )
