"""Request/response types and micro-batch coalescing.

The serving layer speaks *canonical block text* rather than in-memory
:class:`~repro.isa.basic_block.BasicBlock` objects: text is what a compiler
autotuner or a network client naturally sends, it is cheap to ship across
process boundaries, and it doubles as the cache key of the models' encode
caches.

Coalescing merges the blocks of many heterogeneous requests into a stream of
size-bounded micro-batches.  A request with 100 blocks and three requests
with one block each become, at ``max_batch_size=64``, two batches of 64 and
39 blocks — each batch remembers which (request, position) every block came
from so responses can be reassembled exactly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

# The envelope types moved to repro.serve.types (shared with the network
# front end); re-exported here so historical import paths keep working.
from repro.serve.types import PredictionRequest, PredictionResponse

__all__ = [
    "PredictionRequest",
    "PredictionResponse",
    "MicroBatch",
    "coalesce_requests",
    "coalesce_requests_by_ring",
    "coalesce_requests_by_router",
    "coalesce_requests_by_shard",
    "shard_key",
]


@dataclass(frozen=True)
class MicroBatch:
    """A size-bounded batch of blocks drawn from one or more requests.

    Attributes:
        block_texts: The blocks of this batch, in batch order.
        origins: ``(request_index, position)`` of every block, aligned with
            ``block_texts``; ``request_index`` refers to the submission's
            request list and ``position`` to the block's index within that
            request.
    """

    block_texts: Tuple[str, ...]
    origins: Tuple[Tuple[int, int], ...]

    @property
    def num_blocks(self) -> int:
        return len(self.block_texts)


def coalesce_requests(
    requests: Sequence[PredictionRequest], max_batch_size: int
) -> List[MicroBatch]:
    """Merges the blocks of ``requests`` into size-bounded micro-batches.

    Blocks keep their submission order (request order, then block order), so
    small requests arriving together share batches and large requests are
    split.  Empty requests contribute nothing.

    Args:
        requests: The requests of one submission.
        max_batch_size: Upper bound on the blocks per micro-batch.

    Returns:
        Micro-batches covering every block exactly once.
    """
    if max_batch_size < 1:
        raise ValueError("max_batch_size must be positive")
    texts: List[str] = []
    origins: List[Tuple[int, int]] = []
    for request_index, request in enumerate(requests):
        for position, text in enumerate(request.block_texts):
            texts.append(text)
            origins.append((request_index, position))
    batches: List[MicroBatch] = []
    for start in range(0, len(texts), max_batch_size):
        stop = start + max_batch_size
        batches.append(
            MicroBatch(
                block_texts=tuple(texts[start:stop]),
                origins=tuple(origins[start:stop]),
            )
        )
    return batches


def shard_key(block_text: str) -> int:
    """Stable shard key of a block's canonical text.

    CRC32 rather than :func:`hash`: Python's string hash is salted per
    process, so it would scatter the same block to different workers across
    service restarts (and between the parent and respawned workers).  The
    key only has to be stable and well-mixed, not cryptographic.
    """
    return zlib.crc32(block_text.encode("utf-8"))


def _coalesce_by_owner(
    requests: Sequence[PredictionRequest],
    max_batch_size: int,
    owner_of,
) -> List[Tuple[int, MicroBatch]]:
    """Groups every block by ``owner_of(text)``, then chunks per owner.

    The shared core of the sharded coalescing strategies: blocks keep
    their submission order within each owner, and each owner's run is
    split into micro-batches of at most ``max_batch_size``.  Owners with
    no blocks contribute no pairs; pairs come out in ascending owner
    order.
    """
    if max_batch_size < 1:
        raise ValueError("max_batch_size must be positive")
    owner_texts: Dict[int, List[str]] = {}
    owner_origins: Dict[int, List[Tuple[int, int]]] = {}
    for request_index, request in enumerate(requests):
        for position, text in enumerate(request.block_texts):
            owner = owner_of(text)
            owner_texts.setdefault(owner, []).append(text)
            owner_origins.setdefault(owner, []).append((request_index, position))
    assignments: List[Tuple[int, MicroBatch]] = []
    for owner in sorted(owner_texts):
        texts, origins = owner_texts[owner], owner_origins[owner]
        for start in range(0, len(texts), max_batch_size):
            stop = start + max_batch_size
            assignments.append(
                (
                    owner,
                    MicroBatch(
                        block_texts=tuple(texts[start:stop]),
                        origins=tuple(origins[start:stop]),
                    ),
                )
            )
    return assignments


def coalesce_requests_by_shard(
    requests: Sequence[PredictionRequest],
    max_batch_size: int,
    num_shards: int,
) -> List[Tuple[int, MicroBatch]]:
    """Merges requests into per-shard size-bounded micro-batches.

    Every block is routed to shard ``shard_key(text) % num_shards``, so a
    given block text always lands on the same shard no matter which request
    carries it or how traffic is sliced.  This is the fixed-pool routing
    (kept for comparison; the elastic pool routes with
    :func:`coalesce_requests_by_ring` instead): cache affinity is perfect
    while ``num_shards`` never changes, but changing it remaps almost every
    key.

    Args:
        requests: The requests of one submission.
        max_batch_size: Upper bound on the blocks per micro-batch.
        num_shards: Number of shards (worker replicas).

    Returns:
        ``(shard_index, micro_batch)`` pairs covering every block exactly
        once; shards with no blocks contribute no pairs.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    return _coalesce_by_owner(
        requests, max_batch_size, lambda text: shard_key(text) % num_shards
    )


def coalesce_requests_by_ring(
    requests: Sequence[PredictionRequest],
    max_batch_size: int,
    ring,
) -> List[Tuple[int, MicroBatch]]:
    """Merges requests into per-worker micro-batches routed by a hash ring.

    The elastic variant of :func:`coalesce_requests_by_shard`: every block
    is routed to ``ring.owner(shard_key(text))`` — a
    :class:`repro.serve.ring.HashRing` over the pool's live worker ids —
    instead of a fixed ``% num_shards``.  Routing still depends only on the
    block text and the ring topology, so cache affinity is preserved while
    the worker count stays put, and only ~1/N of the key space moves when
    it changes.

    Args:
        requests: The requests of one submission.
        max_batch_size: Upper bound on the blocks per micro-batch.
        ring: The pool's consistent hash ring (must have at least one node).

    Returns:
        ``(worker_id, micro_batch)`` pairs covering every block exactly
        once, grouped per worker in ascending worker-id order; workers with
        no blocks contribute no pairs.
    """
    if not len(ring):
        raise ValueError("the ring has no workers to route to")
    return _coalesce_by_owner(
        requests, max_batch_size, lambda text: ring.owner(shard_key(text))
    )


def coalesce_requests_by_router(
    requests: Sequence[PredictionRequest],
    max_batch_size: int,
    router,
) -> List[Tuple[int, MicroBatch]]:
    """Like :func:`coalesce_requests_by_ring`, but hot keys spread out.

    Routes every block through a
    :class:`repro.serve.ring.HotKeyRouter`: cold keys go to their single
    ring owner exactly as before, while keys the router's tracker has
    classified hot round-robin across their replica set.  The router
    observes every block it routes, so hotness tracking needs no separate
    pass over the traffic.

    Args:
        requests: The requests of one submission.
        max_batch_size: Upper bound on the blocks per micro-batch.
        router: The service's hot-key router (wraps the pool's live ring).

    Returns:
        ``(worker_id, micro_batch)`` pairs covering every block exactly
        once, grouped per worker in ascending worker-id order.
    """
    if not len(router.ring):
        raise ValueError("the ring has no workers to route to")
    return _coalesce_by_owner(requests, max_batch_size, router.route_text)
