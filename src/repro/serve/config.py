"""Layered serving configuration.

One service, one config: :class:`ServiceConfig` describes everything about
a served model variant — the model itself (family, tasks, dtype, seed,
checkpoint), the synchronous batching/sharding front end, and, nested as
:attr:`ServiceConfig.async_options`, the queueing/flushing knobs of the
async front end.  :class:`AsyncOptions` holds only what is *specific* to
the async layer; the batch-size bound it flushes at is the service's own
``max_batch_size``, so the historical duplication between the two config
classes is gone.

:class:`AsyncServiceConfig` remains as a **deprecated but fully working
alias**: every old field keeps its old name, default and validation, and
``AsyncPredictionService`` still accepts it.  New code should pass an
:class:`AsyncOptions` (or nothing, inheriting the service config's
options) instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.models.config import default_inference_dtype
from repro.nn.tensor import SUPPORTED_DTYPES
from repro.serve.faults import FaultPlan, default_fault_plan
from repro.serve.flush import FLUSH_POLICIES, default_flush_policy
from repro.serve.queue import BACKPRESSURE_POLICIES
from repro.serve.resilience import BreakerPolicy, RespawnPolicy, RetryPolicy

__all__ = [
    "AsyncOptions",
    "AsyncServiceConfig",
    "ServiceConfig",
    "SHARDING_MODES",
]

#: Worker-sharding strategies accepted by :class:`ServiceConfig`.
SHARDING_MODES = ("hash", "round_robin")


@dataclass(frozen=True)
class AsyncOptions:
    """Queueing and flushing knobs of the async front end.

    Everything here is specific to the async layer; the size-flush bound is
    the owning :class:`ServiceConfig`'s ``max_batch_size`` (one batch-size
    knob for the whole stack).

    Attributes:
        max_latency_ms: Flush the oldest pending request after at most this
            long, however few blocks have accumulated (the latency bound of
            the latency/throughput trade-off, and the adaptive policy's
            deadline ceiling).
        flush_policy: ``"static"`` (always ``max_latency_ms``) or
            ``"adaptive"`` (deadline scales with observed load between
            ``min_latency_ms`` and ``max_latency_ms``).  The default
            honours the ``REPRO_FLUSH_POLICY`` environment variable.
        min_latency_ms: The adaptive policy's deadline floor (ignored by
            ``static``).
        controller_window_ms: Sliding arrival window of the adaptive
            controller's load estimate.
        autoscale_poll_ms: How often the elasticity monitor feeds queue
            depth into the service's autoscaler (only runs when the
            service has elastic worker bounds).
        max_queue_blocks: Admission bound of the queue, in blocks.
        backpressure: ``"block"`` (producers wait for space) or
            ``"reject"`` (producers get
            :class:`~repro.serve.types.QueueFullError`).
        max_concurrent_flushes: Micro-batch flushes allowed in flight at
            once.  1 (default) keeps the historical serial dispatcher; >1
            hands flushes to a small thread pool so one straggling batch
            cannot head-of-line-block every batch behind it (a
            prerequisite for hedging to beat a straggler at all).
        hedge_enabled: Re-submit requests that outlive the observed
            request-latency hedge deadline as a duplicate queue entry;
            first result wins, the loser is cancelled (or its result
            discarded).  Requires no cooperation from the service behind
            the queue.
        hedge_quantile: The request-latency quantile used as the hedge
            deadline (a request older than this is duplicated).
        hedge_min_ms: Deadline floor — never hedge faster than this, so
            cache-warm microsecond traffic cannot trigger hedge storms.
        hedge_max_ms: Optional deadline cap.  Under a straggler regime the
            observed p99 itself inflates toward the straggler latency;
            capping keeps hedges firing within the latency budget the
            operator actually cares about.  ``None`` = uncapped.
        hedge_min_samples: Observed request latencies required before any
            hedge fires (the deadline is NaN — and hedging dormant —
            until then).
        hedge_poll_ms: How often the hedge monitor scans in-flight
            requests for deadline overruns.
        retry_policy: Optional :class:`~repro.serve.resilience.RetryPolicy`
            applied to failed flush submissions.  ``None`` (default) keeps
            the historical fail-fast behaviour; a policy makes the
            dispatcher retry transient backend failures with capped,
            seeded exponential backoff, bounded by the policy's budget.
        degraded_mode: Serve stale prediction-cache entries (flagged
            ``degraded=True``) when the backend keeps failing after
            retries, instead of erroring the request.  Only requests whose
            every block (and task) has a last-known-good value degrade;
            the rest still fail.
        stale_cache_size: Entry bound of the last-known-good prediction
            cache backing ``degraded_mode`` (0 disables recording).
    """

    max_latency_ms: float = 10.0
    flush_policy: str = field(default_factory=default_flush_policy)
    min_latency_ms: float = 1.0
    controller_window_ms: float = 250.0
    autoscale_poll_ms: float = 50.0
    max_queue_blocks: int = 4096
    backpressure: str = "block"
    max_concurrent_flushes: int = 1
    hedge_enabled: bool = False
    hedge_quantile: float = 0.99
    hedge_min_ms: float = 1.0
    hedge_max_ms: Optional[float] = None
    hedge_min_samples: int = 32
    hedge_poll_ms: float = 2.0
    retry_policy: Optional[RetryPolicy] = None
    degraded_mode: bool = False
    stale_cache_size: int = 4096

    def __post_init__(self) -> None:
        if self.max_latency_ms < 0:
            raise ValueError("max_latency_ms must be >= 0")
        if self.flush_policy not in FLUSH_POLICIES:
            raise ValueError(
                f"unknown flush policy {self.flush_policy!r}; "
                f"expected one of {FLUSH_POLICIES}"
            )
        if self.min_latency_ms < 0:
            raise ValueError("min_latency_ms must be >= 0")
        # The floor only exists for the adaptive policy; a static config
        # with a sub-floor (or zero) deadline stays valid, as before.
        if (
            self.flush_policy == "adaptive"
            and self.min_latency_ms > self.max_latency_ms
        ):
            raise ValueError("need min_latency_ms <= max_latency_ms")
        if self.controller_window_ms <= 0:
            raise ValueError("controller_window_ms must be positive")
        if self.autoscale_poll_ms <= 0:
            raise ValueError("autoscale_poll_ms must be positive")
        if self.max_queue_blocks < 1:
            raise ValueError("max_queue_blocks must be positive")
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown back-pressure policy {self.backpressure!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        if self.max_concurrent_flushes < 1:
            raise ValueError("max_concurrent_flushes must be >= 1")
        if not 0.0 < self.hedge_quantile <= 1.0:
            raise ValueError("hedge_quantile must be in (0, 1]")
        if self.hedge_min_ms < 0:
            raise ValueError("hedge_min_ms must be >= 0")
        if self.hedge_max_ms is not None and self.hedge_max_ms < self.hedge_min_ms:
            raise ValueError("need hedge_min_ms <= hedge_max_ms")
        if self.hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be >= 1")
        if self.hedge_poll_ms <= 0:
            raise ValueError("hedge_poll_ms must be positive")
        if self.retry_policy is not None and not isinstance(self.retry_policy, RetryPolicy):
            raise ValueError("retry_policy must be a RetryPolicy (or None)")
        if self.stale_cache_size < 0:
            raise ValueError("stale_cache_size must be >= 0")


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of a served model variant (sync and async layers).

    Attributes:
        model_name: ``"granite"``, ``"ithemal"`` or ``"ithemal+"``.
        tasks: Microarchitecture heads of the served model; ``None`` uses
            the model family's default heads.
        small_model: Serve the reduced CPU-friendly configuration.
        seed: Weight initialisation seed (all worker replicas share it, so
            they are numerically identical).
        checkpoint_path: Optional ``.npz`` checkpoint restored into every
            replica at warm-start (the trained weights to serve).
        max_batch_size: Upper bound on blocks per micro-batch — the one
            batch-size knob of the whole stack (the async front end's size
            flush uses it too).
        num_workers: Worker processes; 0 serves in-process.  In sharded
            mode this is the *initial* pool size; see ``min_workers`` /
            ``max_workers`` for elasticity.
        min_workers: Lower bound for elastic scaling (``None`` =
            ``num_workers``, i.e. never scale below the initial size).
        max_workers: Upper bound for elastic scaling (``None`` =
            ``num_workers``, i.e. a fixed pool).  Autoscaling is active
            exactly when the ``[min_workers, max_workers]`` interval allows
            a size other than ``num_workers``; manual
            ``PredictionService.scale_workers`` calls work regardless.
        scale_cooldown_s: Minimum seconds between autoscaler resizes.
        sharding: ``"hash"`` routes every block through a consistent hash
            ring over the live worker ids (stable cache affinity, and only
            ~1/N of the key space moves when the pool resizes);
            ``"round_robin"`` deals micro-batches out cyclically.
        hot_key_replicas: Replication factor for Zipf-head block keys
            under ``"hash"`` sharding.  1 (default) keeps the pure ring
            (every key has exactly one owner); >= 2 routes the hottest
            keys read-any across that many distinct ring successors, so a
            single scorching key no longer serializes on one worker.  Only
            meaningful with ``num_workers >= 2``.
        hot_key_count: How many keys may be classified hot at once.
        inference_dtype: Compute dtype of every replica's no-grad inference
            fast path (``"float64"`` default, ``"float32"`` for
            mixed-precision serving).  Propagated to all worker processes —
            a whole hash-sharded pool runs float32 behind the same queue —
            and into the replicas' prediction-cache keys, so float32 and
            float64 services never alias cached values.  The default
            honours the ``INFERENCE_DTYPE`` environment variable.
        async_options: Queueing/flushing knobs applied when an
            ``AsyncPredictionService`` (or the HTTP front end / model
            registry) is put in front of this service.
        worker_job_timeout_s: Per-job watchdog of the sharded pool: an
            in-flight worker job older than this is treated as a crash
            (the worker is killed and respawned, the job re-queued), so a
            hung replica cannot stall the batch forever.  ``None``
            (default) keeps the historical wait-forever behaviour.
        breaker_policy: Optional per-worker circuit-breaker tuning.
            ``None`` disables circuit breaking; a
            :class:`~repro.serve.resilience.BreakerPolicy` makes hash
            routing walk past workers whose breaker is open.
        respawn_policy: Respawn rate limits of the sharded pool (always
            on; the defaults are generous enough that a healthy pool
            never notices them).
        fault_plan: Optional deterministic chaos schedule
            (:class:`~repro.serve.faults.FaultPlan`) shipped to every
            worker replica and the async front end.  The default honours
            the ``REPRO_FAULT_PLAN`` environment variable and is normally
            None.
    """

    model_name: str = "granite"
    tasks: Optional[Tuple[str, ...]] = None
    small_model: bool = True
    seed: int = 0
    checkpoint_path: Optional[str] = None
    max_batch_size: int = 64
    num_workers: int = 0
    min_workers: Optional[int] = None
    max_workers: Optional[int] = None
    scale_cooldown_s: float = 2.0
    sharding: str = "hash"
    hot_key_replicas: int = 1
    hot_key_count: int = 8
    inference_dtype: str = field(default_factory=default_inference_dtype)
    async_options: AsyncOptions = field(default_factory=AsyncOptions)
    worker_job_timeout_s: Optional[float] = None
    breaker_policy: Optional[BreakerPolicy] = None
    respawn_policy: RespawnPolicy = field(default_factory=RespawnPolicy)
    fault_plan: Optional[FaultPlan] = field(default_factory=default_fault_plan)

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if self.min_workers is not None or self.max_workers is not None:
            if self.num_workers < 1:
                raise ValueError(
                    "elastic worker bounds need a sharded service "
                    "(num_workers >= 1)"
                )
            low = self.num_workers if self.min_workers is None else self.min_workers
            high = self.num_workers if self.max_workers is None else self.max_workers
            if low < 1:
                raise ValueError("min_workers must be >= 1")
            if not low <= self.num_workers <= high:
                raise ValueError(
                    f"need min_workers <= num_workers <= max_workers, got "
                    f"{low} / {self.num_workers} / {high}"
                )
        if self.scale_cooldown_s < 0:
            raise ValueError("scale_cooldown_s must be >= 0")
        if self.sharding not in SHARDING_MODES:
            raise ValueError(
                f"unknown sharding mode {self.sharding!r}; "
                f"expected one of {SHARDING_MODES}"
            )
        if self.hot_key_replicas < 1:
            raise ValueError("hot_key_replicas must be >= 1")
        if self.hot_key_replicas > 1 and self.sharding != "hash":
            raise ValueError("hot_key_replicas > 1 requires sharding='hash'")
        if self.hot_key_count < 1:
            raise ValueError("hot_key_count must be >= 1")
        if self.inference_dtype not in SUPPORTED_DTYPES:
            raise ValueError(
                f"inference_dtype must be one of {SUPPORTED_DTYPES}, "
                f"got {self.inference_dtype!r}"
            )
        if self.worker_job_timeout_s is not None and self.worker_job_timeout_s <= 0:
            raise ValueError("worker_job_timeout_s must be positive (or None)")
        if self.breaker_policy is not None and not isinstance(self.breaker_policy, BreakerPolicy):
            raise ValueError("breaker_policy must be a BreakerPolicy (or None)")
        if not isinstance(self.respawn_policy, RespawnPolicy):
            raise ValueError("respawn_policy must be a RespawnPolicy")
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise ValueError("fault_plan must be a FaultPlan (or None)")


@dataclass(frozen=True)
class AsyncServiceConfig:
    """Deprecated flat spelling of ``max_batch_size`` + :class:`AsyncOptions`.

    .. deprecated::
        Use ``ServiceConfig(max_batch_size=..., async_options=
        AsyncOptions(...))`` — or pass an :class:`AsyncOptions` directly to
        ``AsyncPredictionService`` — instead.  Every old field keeps its
        old name, default and validation, so existing constructor calls
        build an equivalent service; this class is kept only so they keep
        working.
    """

    max_batch_size: int = 64
    max_latency_ms: float = 10.0
    flush_policy: str = field(default_factory=default_flush_policy)
    min_latency_ms: float = 1.0
    controller_window_ms: float = 250.0
    autoscale_poll_ms: float = 50.0
    max_queue_blocks: int = 4096
    backpressure: str = "block"
    max_concurrent_flushes: int = 1
    hedge_enabled: bool = False
    hedge_quantile: float = 0.99
    hedge_min_ms: float = 1.0
    hedge_max_ms: Optional[float] = None
    hedge_min_samples: int = 32
    hedge_poll_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        # Everything else is the AsyncOptions contract; build one so the
        # validation lives in exactly one place.
        _ = self.options

    @property
    def options(self) -> AsyncOptions:
        """The :class:`AsyncOptions` equivalent of this config."""
        return AsyncOptions(
            max_latency_ms=self.max_latency_ms,
            flush_policy=self.flush_policy,
            min_latency_ms=self.min_latency_ms,
            controller_window_ms=self.controller_window_ms,
            autoscale_poll_ms=self.autoscale_poll_ms,
            max_queue_blocks=self.max_queue_blocks,
            backpressure=self.backpressure,
            max_concurrent_flushes=self.max_concurrent_flushes,
            hedge_enabled=self.hedge_enabled,
            hedge_quantile=self.hedge_quantile,
            hedge_min_ms=self.hedge_min_ms,
            hedge_max_ms=self.hedge_max_ms,
            hedge_min_samples=self.hedge_min_samples,
            hedge_poll_ms=self.hedge_poll_ms,
        )

    @classmethod
    def from_options(
        cls, options: AsyncOptions, max_batch_size: int = 64
    ) -> "AsyncServiceConfig":
        """Builds the flat spelling from ``options`` + a batch-size bound."""
        return cls(
            max_batch_size=max_batch_size,
            max_latency_ms=options.max_latency_ms,
            flush_policy=options.flush_policy,
            min_latency_ms=options.min_latency_ms,
            controller_window_ms=options.controller_window_ms,
            autoscale_poll_ms=options.autoscale_poll_ms,
            max_queue_blocks=options.max_queue_blocks,
            backpressure=options.backpressure,
            max_concurrent_flushes=options.max_concurrent_flushes,
            hedge_enabled=options.hedge_enabled,
            hedge_quantile=options.hedge_quantile,
            hedge_min_ms=options.hedge_min_ms,
            hedge_max_ms=options.hedge_max_ms,
            hedge_min_samples=options.hedge_min_samples,
            hedge_poll_ms=options.hedge_poll_ms,
        )
