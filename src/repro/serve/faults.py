"""Deterministic, seedable fault injection for the serving stack.

Chaos testing is only useful when a failing run can be replayed exactly, so
every fault here is selected by *pure functions of the plan seed and the
request content* — no wall clock, no global RNG:

- **Content-scoped faults** (``crash``, ``hang``, ``slow_reply``,
  ``corrupt_reply``) fire on blocks whose canonical text hashes into the
  fault's probability band (``crc32(f"{seed}:{kind}:{text}")``), exactly the
  way :class:`~repro.serve.ring.HashRing` places keys.  The set of *prone*
  texts is therefore a property of the plan alone: two processes with the
  same plan agree on it without communicating, and a benchmark can compute
  it up front with :meth:`FaultPlan.prone_texts`.
- **Event-scoped faults** (``queue_saturation``, ``checkpoint_write_failure``)
  fire on a window of event *indices* (the Nth submission, the Nth checkpoint
  write) counted by the injector, which is equally reproducible under a
  deterministic driver such as :class:`~repro.serve.replay.TraceReplayer`.

A :class:`FaultPlan` is the frozen description (seed + specs); a
:class:`FaultInjector` is the per-process runtime that consults the plan and
tracks first-occurrence / incarnation gating:

- Content faults fire at most **once per text per injector** (``_seen``
  sets), so a retried request observes the fault exactly once and then
  succeeds — the self-healing path is exercised, not starved.
- Worker-side faults are additionally gated on the worker's **incarnation**
  (its spawn generation): a replica respawned after an injected crash does
  not re-crash on the same key.  ``max_incarnation`` bounds which
  generations misbehave.

The plan rides into worker processes as part of the pickled
:class:`~repro.serve.config.ServiceConfig`; set the ``REPRO_FAULT_PLAN``
environment variable to a JSON file path (or inline JSON) to arm a plan
without touching code.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "load_fault_plan_from_env",
    "default_fault_plan",
]

#: Every fault kind the injector understands, in worker-side priority order
#: (a text prone to several kinds observes only the first).
FAULT_KINDS = (
    "crash",
    "hang",
    "slow_reply",
    "corrupt_reply",
    "queue_saturation",
    "checkpoint_write_failure",
)

#: Fault kinds selected by content hash (per-block-text probability band).
CONTENT_KINDS = ("crash", "hang", "slow_reply", "corrupt_reply")

#: Fault kinds selected by event index window.
EVENT_KINDS = ("queue_saturation", "checkpoint_write_failure")

#: Resolution of the probability band; crc32 buckets are compared against
#: ``probability * _BAND``.
_BAND = 1_000_000

#: Environment variable naming a fault-plan JSON file (or holding inline JSON).
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"


@dataclass(frozen=True)
class FaultSpec:
    """One fault in a plan.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        probability: For content-scoped kinds, the fraction of the text
            universe that is prone (selected by content hash, so the same
            texts are prone in every run).
        delay_ms: Sleep injected by ``hang`` / ``slow_reply`` faults.  A
            hang should exceed the pool's ``worker_job_timeout_s`` so the
            watchdog fires; a slow reply should stay under it.
        max_incarnation: Worker-side faults only fire in worker processes
            whose spawn generation is ``<= max_incarnation`` — the replica
            respawned after an injected crash is healthy by construction.
        start_after_events: For event-scoped kinds, the event index at which
            the fault window opens.
        duration_events: For event-scoped kinds, how many consecutive events
            fall inside the window.
    """

    kind: str
    probability: float = 0.0
    delay_ms: float = 0.0
    max_incarnation: int = 1
    start_after_events: int = 0
    duration_events: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.delay_ms < 0.0:
            raise ValueError("delay_ms must be non-negative")
        if self.max_incarnation < 1:
            raise ValueError("max_incarnation must be at least 1")
        if self.start_after_events < 0 or self.duration_events < 0:
            raise ValueError("event window bounds must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, seedable chaos schedule.

    The plan is pure data: whether a given text is prone to a given kind is
    a function of ``(seed, kind, text)`` only, so replaying a trace under
    the same plan produces bit-identical fault selection.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        kinds = [spec.kind for spec in self.specs]
        if len(kinds) != len(set(kinds)):
            raise ValueError("fault plan lists a kind more than once")

    def spec(self, kind: str) -> Optional[FaultSpec]:
        """Returns the spec for ``kind``, or None when the plan omits it."""
        for candidate in self.specs:
            if candidate.kind == kind:
                return candidate
        return None

    def is_prone(self, kind: str, text: str) -> bool:
        """True when ``text`` hashes into the probability band of ``kind``."""
        spec = self.spec(kind)
        if spec is None or spec.probability <= 0.0 or kind not in CONTENT_KINDS:
            return False
        bucket = zlib.crc32(f"{self.seed}:{kind}:{text}".encode("utf-8")) % _BAND
        return bucket < int(spec.probability * _BAND)

    def prone_texts(self, kind: str, texts: Iterable[str]) -> Tuple[str, ...]:
        """The subset of ``texts`` prone to ``kind`` (deterministic)."""
        return tuple(text for text in texts if self.is_prone(kind, text))

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "specs": [
                {
                    "kind": spec.kind,
                    "probability": spec.probability,
                    "delay_ms": spec.delay_ms,
                    "max_incarnation": spec.max_incarnation,
                    "start_after_events": spec.start_after_events,
                    "duration_events": spec.duration_events,
                }
                for spec in self.specs
            ],
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "FaultPlan":
        specs = tuple(
            FaultSpec(**dict(raw)) for raw in payload.get("specs", ())  # type: ignore[arg-type]
        )
        return FaultPlan(seed=int(payload.get("seed", 0)), specs=specs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        return FaultPlan.from_dict(json.loads(text))


def load_fault_plan_from_env(variable: str = FAULT_PLAN_ENV_VAR) -> Optional[FaultPlan]:
    """Loads a plan from ``$REPRO_FAULT_PLAN`` (file path or inline JSON).

    Returns None when the variable is unset or empty, so the default
    configuration carries no fault plane at all.
    """
    raw = os.environ.get(variable, "").strip()
    if not raw:
        return None
    if raw.lstrip().startswith("{"):
        return FaultPlan.from_json(raw)
    with open(raw, "r", encoding="utf-8") as handle:
        return FaultPlan.from_json(handle.read())


def default_fault_plan() -> Optional[FaultPlan]:
    """Config-field default: the environment plan, usually None."""
    return load_fault_plan_from_env()


class FaultInjector:
    """Per-process runtime that consults a :class:`FaultPlan`.

    One injector lives in each worker process (built by ``_worker_main``
    with that worker's incarnation) and one in the async front end (for
    event-scoped faults).  All mutable state — first-occurrence sets, event
    counters, fired tallies — is guarded by an internal lock so dispatcher
    and flush threads can share the front-end injector.
    """

    def __init__(self, plan: FaultPlan, incarnation: int = 1) -> None:
        self.plan = plan
        self.incarnation = int(incarnation)
        self._lock = threading.Lock()
        # First-occurrence gating per content kind.  # guarded-by: _lock
        self._seen: Dict[str, set] = {kind: set() for kind in CONTENT_KINDS}
        # Event indices consumed per event kind.  # guarded-by: _lock
        self._events: Dict[str, int] = {kind: 0 for kind in EVENT_KINDS}
        # Faults actually fired, per kind.  # guarded-by: _lock
        self._fired: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def counters(self) -> Dict[str, int]:
        """Snapshot of faults fired so far, keyed by kind."""
        with self._lock:
            return dict(self._fired)

    def worker_fault(self, texts: Sequence[str]) -> Optional[Tuple[str, float]]:
        """Returns the worker-side fault due for this predict job, if any.

        Checks every text against the content kinds in priority order and
        fires the first (kind, text) pair not yet seen by this injector
        whose incarnation gate admits it.  Returns ``(kind, delay_seconds)``
        or None.
        """
        with self._lock:
            for kind in CONTENT_KINDS:
                spec = self.plan.spec(kind)
                if spec is None or self.incarnation > spec.max_incarnation:
                    continue
                for text in texts:
                    if text in self._seen[kind]:
                        continue
                    if not self.plan.is_prone(kind, text):
                        continue
                    self._seen[kind].add(text)
                    self._fired[kind] += 1
                    return kind, spec.delay_ms / 1000.0
        return None

    def corrupt(self, predictions: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Returns a corrupted copy of a predict payload (all-NaN arrays)."""
        return {
            task: np.full_like(np.asarray(values), np.nan)
            for task, values in predictions.items()
        }

    def _event_fault(self, kind: str) -> bool:
        spec = self.plan.spec(kind)
        with self._lock:
            index = self._events[kind]
            self._events[kind] += 1
            if spec is None or spec.duration_events <= 0:
                return False
            if spec.start_after_events <= index < spec.start_after_events + spec.duration_events:
                self._fired[kind] += 1
                return True
        return False

    def on_submit(self) -> bool:
        """Counts one submission; True when it falls in a saturation window."""
        return self._event_fault("queue_saturation")

    def on_checkpoint_write(self) -> bool:
        """Counts one checkpoint write; True when the write should fail."""
        return self._event_fault("checkpoint_write_failure")
