"""Flush-deadline control policies for the async dispatcher.

The async front end flushes a micro-batch when ``max_batch_size`` blocks
are pending OR the oldest request has waited out a deadline.  A *static*
deadline is the wrong constant at both ends of the load curve:

* **idle** — arrivals are sparse, so nobody else is coming: holding a lone
  request for the full ``max_latency_ms`` buys no extra batching, it is
  pure added latency;
* **saturated** — the size trigger fires long before any deadline, and
  when the offered load hovers just below the batch-fill rate a *longer*
  deadline packs visibly denser batches.

:class:`AdaptiveFlushController` therefore scales the deadline with the
observed load: it tracks block arrivals over a short sliding window,
combines the arrival rate with the current queue depth into a load
estimate in ``[0, 1]`` (1.0 = a batch is expected to fill within
``max_latency_ms`` on its own), and interpolates the deadline between
``min_latency_ms`` (idle) and ``max_latency_ms`` (saturated).
:class:`StaticFlushController` keeps the pre-adaptive behaviour — always
``max_latency_ms`` — selectable and benchmarkable via
``AsyncServiceConfig(flush_policy="static")``.

Controllers are thread-safe: producers record arrivals from many client
threads while the dispatcher reads the deadline.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

__all__ = [
    "FLUSH_POLICIES",
    "FlushController",
    "StaticFlushController",
    "AdaptiveFlushController",
    "HedgeController",
    "create_flush_controller",
    "default_flush_policy",
]

#: Flush-deadline policies accepted by ``AsyncServiceConfig``.
FLUSH_POLICIES = ("static", "adaptive")


def default_flush_policy() -> str:
    """The process-wide default flush-deadline policy of the async service.

    ``static`` unless the ``REPRO_FLUSH_POLICY`` environment variable says
    otherwise — the same env-default pattern as
    :func:`repro.models.config.default_inference_dtype`, so a CI leg (or
    an operator) can flip the whole serving stack to adaptive flushing
    without touching any call site.  Validated by ``AsyncServiceConfig``
    against :data:`FLUSH_POLICIES`.
    """
    return os.environ.get("REPRO_FLUSH_POLICY", "static")


class FlushController:
    """Interface of a flush-deadline policy.

    ``deadline_s`` is called by the dispatcher (from inside the queue's
    flush-wait loop, so it must not touch the queue) and ``observe_arrival``
    by every producer thread on submit.
    """

    #: Policy name, matching the ``AsyncServiceConfig.flush_policy`` value.
    policy: str = "static"

    def observe_arrival(self, num_blocks: int, now: Optional[float] = None) -> None:
        """Records ``num_blocks`` arriving at ``now`` (``time.monotonic()``)."""

    def deadline_s(self, pending_blocks: int = 0, now: Optional[float] = None) -> float:
        """The flush deadline (seconds) to apply right now.

        May record the decision as the controller's "last" deadline (what
        :meth:`state` and the per-flush stats report), so only the
        dispatcher should call it; observers use :meth:`peek_deadline_s`.
        """
        raise NotImplementedError

    def peek_deadline_s(
        self, pending_blocks: int = 0, now: Optional[float] = None
    ) -> float:
        """Like :meth:`deadline_s` but side-effect-free, for observers."""
        return self.deadline_s(pending_blocks, now)

    def state(self) -> Dict[str, object]:
        """Introspection snapshot for service stats and benchmarks."""
        raise NotImplementedError


class StaticFlushController(FlushController):
    """The original fixed-deadline behaviour: always ``max_latency_s``."""

    policy = "static"

    def __init__(self, max_latency_s: float) -> None:
        if max_latency_s < 0:
            raise ValueError("max_latency_s must be >= 0")
        self.max_latency_s = float(max_latency_s)

    def deadline_s(self, pending_blocks: int = 0, now: Optional[float] = None) -> float:
        return self.max_latency_s

    def state(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "deadline_ms": self.max_latency_s * 1e3,
            "load": float("nan"),
            "arrival_rate_blocks_per_s": float("nan"),
        }


class AdaptiveFlushController(FlushController):
    """Load-adaptive deadline between a floor and ``max_latency_s``.

    The load estimate has two terms, either of which can saturate it:

    * ``arrival_rate / fill_rate`` — how fast blocks are arriving relative
      to the rate at which a ``max_batch_size`` batch would fill within
      ``max_latency_s`` (the rate at which waiting longer stops paying);
    * ``pending_blocks / max_batch_size`` — how full the queue already is
      (a deep queue means size flushes are imminent regardless of rate).

    Args:
        max_latency_s: Deadline ceiling (the configured ``max_latency_ms``).
        min_latency_s: Deadline floor applied when the queue is idle.
        max_batch_size: The dispatcher's size-flush threshold, in blocks.
        window_s: Length of the sliding arrival window.
    """

    policy = "adaptive"

    def __init__(
        self,
        max_latency_s: float,
        min_latency_s: float,
        max_batch_size: int,
        window_s: float = 0.25,
    ) -> None:
        if max_latency_s < 0:
            raise ValueError("max_latency_s must be >= 0")
        if not 0 <= min_latency_s <= max_latency_s:
            raise ValueError("need 0 <= min_latency_s <= max_latency_s")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.max_latency_s = float(max_latency_s)
        self.min_latency_s = float(min_latency_s)
        self.max_batch_size = int(max_batch_size)
        self.window_s = float(window_s)
        self._lock = threading.Lock()
        self._arrivals: Deque[Tuple[float, int]] = deque()
        self._window_blocks = 0
        #: The most recently computed deadline (what the stats report).
        self.last_deadline_s = max_latency_s
        self.last_load = 0.0

    def observe_arrival(self, num_blocks: int, now: Optional[float] = None) -> None:
        now = time.monotonic() if now is None else now
        with self._lock:
            self._arrivals.append((now, num_blocks))
            self._window_blocks += num_blocks
            self._evict_locked(now)

    def _evict_locked(self, now: float) -> None:
        horizon = now - self.window_s
        while self._arrivals and self._arrivals[0][0] < horizon:
            _, blocks = self._arrivals.popleft()
            self._window_blocks -= blocks

    def load(self, pending_blocks: int = 0, now: Optional[float] = None) -> float:
        """The current load estimate, clamped to ``[0, 1]``."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._evict_locked(now)
            arrival_rate = self._window_blocks / self.window_s
        if self.max_latency_s <= 0:
            return 1.0
        # The arrival rate at which a batch fills exactly at the deadline.
        fill_rate = self.max_batch_size / self.max_latency_s
        load = arrival_rate / fill_rate + pending_blocks / self.max_batch_size
        return min(1.0, load)

    def peek_deadline_s(
        self, pending_blocks: int = 0, now: Optional[float] = None
    ) -> float:
        load = self.load(pending_blocks, now)
        return self.min_latency_s + load * (self.max_latency_s - self.min_latency_s)

    def deadline_s(self, pending_blocks: int = 0, now: Optional[float] = None) -> float:
        load = self.load(pending_blocks, now)
        deadline = self.min_latency_s + load * (self.max_latency_s - self.min_latency_s)
        with self._lock:
            self.last_deadline_s = deadline
            self.last_load = load
        return deadline

    def state(self) -> Dict[str, object]:
        with self._lock:
            window_blocks = self._window_blocks
            deadline = self.last_deadline_s
            load = self.last_load
        return {
            "policy": self.policy,
            "deadline_ms": deadline * 1e3,
            "load": load,
            "arrival_rate_blocks_per_s": window_blocks / self.window_s,
            "window_blocks": float(window_blocks),
            "min_deadline_ms": self.min_latency_s * 1e3,
            "max_deadline_ms": self.max_latency_s * 1e3,
        }


class HedgeController:
    """Turns observed request latencies into a hedge deadline.

    The async front end re-submits a request once it has outlived this
    deadline (see ``AsyncOptions.hedge_*``).  The deadline is the
    ``quantile`` of the request-latency reservoir, clamped to
    ``[min_s, max_s]`` — the floor prevents hedge storms when the service
    is microsecond-fast, the cap keeps hedges firing within the
    operator's latency budget even when stragglers inflate the observed
    quantile itself.  Until ``min_samples`` latencies exist the deadline
    is NaN and callers must not hedge: a deadline guessed from nothing
    would either never fire or fire for everything.

    Stateless between calls, so it needs no lock; the caller passes a
    stable copy of the sample window.
    """

    def __init__(
        self,
        quantile: float = 0.99,
        min_samples: int = 32,
        min_s: float = 1e-3,
        max_s: Optional[float] = None,
    ) -> None:
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if min_s < 0:
            raise ValueError("min_s must be >= 0")
        if max_s is not None and max_s < min_s:
            raise ValueError("need min_s <= max_s")
        self.quantile = float(quantile)
        self.min_samples = int(min_samples)
        self.min_s = float(min_s)
        self.max_s = None if max_s is None else float(max_s)

    def deadline_s(self, latency_samples_s) -> float:
        """The hedge deadline (seconds), NaN while under-sampled."""
        # Imported here, not at module top: stats imports nothing from
        # flush, so the one-way dependency stays acyclic either way, but
        # the lazy import keeps this module import-light for config.py.
        from repro.serve.stats import latency_percentile

        samples = list(latency_samples_s)
        if len(samples) < self.min_samples:
            return float("nan")
        deadline = latency_percentile(samples, self.quantile)
        deadline = max(deadline, self.min_s)
        if self.max_s is not None:
            deadline = min(deadline, self.max_s)
        return deadline


def create_flush_controller(
    policy: str,
    max_latency_s: float,
    min_latency_s: float,
    max_batch_size: int,
    window_s: float = 0.25,
) -> FlushController:
    """Builds the controller named by ``policy`` (see :data:`FLUSH_POLICIES`)."""
    if policy == "static":
        return StaticFlushController(max_latency_s)
    if policy == "adaptive":
        return AdaptiveFlushController(
            max_latency_s, min_latency_s, max_batch_size, window_s
        )
    raise ValueError(
        f"unknown flush policy {policy!r}; expected one of {FLUSH_POLICIES}"
    )
