"""A network front end for the serving stack: HTTP/1.1 + JSON, stdlib only.

:class:`PredictionHttpServer` puts a small asyncio server in front of a
:class:`~repro.serve.registry.ModelRegistry`, so throughput predictions can
be consumed from any language with a socket.  The event loop runs on a
daemon thread; request admission goes through the registry's async
services, so all the existing machinery — bounded priority queues,
micro-batch coalescing, adaptive flushing, sharded worker pools — sits
unchanged behind the socket.

Routes
------

``GET /healthz``
    Liveness: uptime and request counters.  Never touches a model, never
    returns anything but 200 while the process serves at all.
``GET /readyz``
    Readiness: aggregates every loaded variant's resilience report
    (open circuit breakers, respawn backoff).  ``ready`` and ``degraded``
    answer 200; ``unready`` answers 503 with a ``Retry-After`` header so
    load balancers drain the instance instead of hammering it.
``GET /v1/models``
    The registry listing, filtered to the models the calling tenant may
    use.  Each entry is a serialized
    :class:`~repro.serve.registry.ModelInfo`.
``GET /v1/models/{model}/stats``
    A serialized :class:`~repro.serve.registry.ModelReport` — the typed
    stats schema of :mod:`repro.serve.stats`, verbatim.
``POST /v1/models/{model}/predict``
    Body: ``{"blocks": ["...asm..."], "priority": "interactive|normal|bulk",
    "deadline_ms": 50, "stream": false}`` (or a single ``"block"``).
    Unary mode answers one JSON object once every block is served.
    ``"stream": true`` switches to ``application/x-ndjson`` chunked
    transfer: the block list is split into micro-batch-sized chunks, each
    chunk is a separate queue request, and one JSON line is emitted per
    chunk *as its micro-batch flushes* — results arrive while later
    chunks are still queued — ending with a ``{"done": true}`` line.

A *record hook* (the ``recorder`` constructor argument, duck-typed to
:class:`repro.serve.replay.TraceRecorder`) observes every admitted predict
call — blocks, priority, deadline, arrival time — so live traffic can be
captured as a replayable trace for the tail-latency harness.

Authentication is an ``X-API-Key`` (or ``Authorization: Bearer``) header
resolved through a :class:`~repro.serve.auth.TenantDirectory`.  Outcomes
map to status codes purely via the reason codes of
:mod:`repro.serve.types` (:data:`STATUS_BY_REASON`): queue full -> 429,
deadline expired -> 408, closed -> 503, unknown model -> 404, missing or
bad key -> 401, model not on the tenant's allow-list -> 403, malformed
request -> 400.
"""

from __future__ import annotations

import asyncio
import functools
import json
import math
import re
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.serve.auth import TenantDirectory
from repro.serve.queue import Priority
from repro.serve.registry import ModelRegistry
from repro.serve.types import (
    InvalidRequestError,
    PredictionRequest,
    ReasonCode,
    ServeError,
    ServiceClosedError,
)

__all__ = ["HttpServerConfig", "PredictionHttpServer", "STATUS_BY_REASON"]

#: The one place outcomes become status codes — keyed by reason code, so
#: transports never match on error strings.
STATUS_BY_REASON: Dict[ReasonCode, int] = {
    ReasonCode.QUEUE_FULL: 429,
    ReasonCode.DEADLINE_EXPIRED: 408,
    ReasonCode.SERVICE_CLOSED: 503,
    ReasonCode.UNKNOWN_MODEL: 404,
    ReasonCode.UNAUTHENTICATED: 401,
    ReasonCode.FORBIDDEN: 403,
    ReasonCode.INVALID_REQUEST: 400,
    ReasonCode.INTERNAL: 500,
}

_REASON_PHRASES = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    408: "Request Timeout",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_PRIORITY_NAMES = {
    "interactive": Priority.INTERACTIVE,
    "normal": Priority.NORMAL,
    "bulk": Priority.BULK,
}

_PREDICT_PATH = re.compile(r"^/v1/models/([A-Za-z0-9._-]+)/predict$")
_STATS_PATH = re.compile(r"^/v1/models/([A-Za-z0-9._-]+)/stats$")


def _jsonable(value: Any) -> Any:
    """JSON-safe view: arrays to lists, non-finite floats to ``null``."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return _jsonable(value.item())
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


@dataclass(frozen=True)
class HttpServerConfig:
    """Transport knobs of :class:`PredictionHttpServer`.

    Attributes:
        host: Bind address.
        port: Bind port; ``0`` picks an ephemeral port (read it back from
            :attr:`PredictionHttpServer.port` after ``start()``).
        max_body_bytes: Reject request bodies larger than this (the block
            list of a predict call is the only large payload).
        max_header_bytes: Stream buffer limit while reading the head.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_body_bytes: int = 8 << 20
    max_header_bytes: int = 64 << 10

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError("port must be in [0, 65535]")
        if self.max_body_bytes < 1 or self.max_header_bytes < 1:
            raise ValueError("body/header limits must be positive")


@dataclass(frozen=True)
class _HttpRequest:
    """One parsed request (head + body) off a client connection."""

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes


class PredictionHttpServer:
    """Serves a :class:`~repro.serve.registry.ModelRegistry` over HTTP.

    Args:
        registry: The models to serve.  The server does not own it unless
            ``own_registry`` — closing the server then closes the registry.
        config: Transport configuration (defaults bind ``127.0.0.1:0``).
        auth: Tenant directory; the default allows anonymous access.
        own_registry: Close the registry when the server closes.
        recorder: Optional record hook (anything with the
            ``record(block_texts, priority=..., deadline_ms=..., model=...,
            stream=...)`` signature of
            :class:`repro.serve.replay.TraceRecorder`).  Called on the loop
            thread for every predict call that passes authentication and
            parsing, so captured traces contain exactly the traffic the
            queue saw.  Must be cheap and non-blocking.

    The event loop lives on a daemon thread; ``start()`` returns once the
    socket is bound (or raises what the bind raised).  Blocking work —
    queue admission under the ``block`` back-pressure policy — runs on the
    loop's default executor so slow admission on one model never stalls
    the accept loop.  Usable as a context manager.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: Optional[HttpServerConfig] = None,
        auth: Optional[TenantDirectory] = None,
        own_registry: bool = False,
        recorder: Optional[Any] = None,
    ) -> None:
        self.registry = registry
        self.config = config or HttpServerConfig()
        self.auth = auth or TenantDirectory()
        self.recorder = recorder
        self._own_registry = own_registry
        self._lifecycle_lock = threading.Lock()
        self._closed = False  # guarded-by: _lifecycle_lock
        self._thread: Optional[threading.Thread] = None  # guarded-by: _lifecycle_lock
        # Written by the loop thread only (no lock): the ready handshake
        # orders them before any reader in start()/close().
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._bound_port: Optional[int] = None
        self._startup_error: Optional[BaseException] = None
        self._ready = threading.Event()
        self._started_at = time.monotonic()
        # Loop-thread-only state: live connection handlers and counters.
        self._client_tasks: set = set()
        self._requests_handled = 0
        self._protocol_errors = 0
        self._internal_errors = 0
        self._requests_recorded = 0
        self._stream_disconnects = 0
        self._stream_cancelled_chunks = 0

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #
    def start(self) -> "PredictionHttpServer":
        """Binds the socket and starts serving; idempotent while running."""
        with self._lifecycle_lock:
            if self._closed:
                raise ServiceClosedError("http server is closed")
            if self._thread is not None:
                return self
            thread = threading.Thread(
                target=self._run_loop, name="repro-http-server", daemon=True
            )
            self._thread = thread
        self._started_at = time.monotonic()
        thread.start()
        self._ready.wait()
        error = self._startup_error
        if error is not None:
            thread.join()
            with self._lifecycle_lock:
                self._closed = True
                self._thread = None
            raise error
        return self

    def close(self) -> None:
        """Stops the server and joins its thread (idempotent).

        In-flight responses finish; the listening socket closes first, so
        no new connections are admitted while draining.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            thread, self._thread = self._thread, None
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None and thread is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                # The loop already finished (e.g. startup failed after
                # binding); there is nothing left to signal.
                pass
        if thread is not None:
            thread.join()
        if self._own_registry:
            self.registry.close()

    def __enter__(self) -> "PredictionHttpServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    @property
    def port(self) -> int:
        """The bound port (useful with the ephemeral ``port=0`` default)."""
        port = self._bound_port
        if port is None:
            raise RuntimeError("server is not running; call start() first")
        return port

    @property
    def address(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._serve_forever())
        except BaseException as exc:  # noqa: B036 - reported to start()
            self._startup_error = exc
            self._internal_errors += 1
        finally:
            self._ready.set()

    async def _serve_forever(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_client,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_header_bytes,
        )
        self._bound_port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            # Retire idle keep-alive connections ourselves: cancelling and
            # gathering here lets every handler run its close path before
            # asyncio.run tears the loop down.
            for task in list(self._client_tasks):
                task.cancel()
            if self._client_tasks:
                await asyncio.gather(*self._client_tasks, return_exceptions=True)

    # ------------------------------------------------------------------ #
    # Connection handling.
    # ------------------------------------------------------------------ #
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._dispatch(request, reader, writer)
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            # Server shutdown retired this (typically idle keep-alive)
            # connection mid-read; fall through and close it quietly.
            pass
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
            ValueError,
        ):
            # Malformed head, oversized head, or a peer that vanished:
            # count it and drop the connection — there is no usable
            # request to answer.
            self._protocol_errors += 1
        finally:
            if task is not None:
                self._client_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                # A cancelled task re-raises at the next await; the socket
                # is already closing either way.
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[_HttpRequest]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF between requests
            raise
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, _, rest = request_line.partition(" ")
        path, _, version = rest.rpartition(" ")
        if not method or not path.startswith("/") or not version.startswith("HTTP/"):
            raise ValueError(f"malformed request line: {request_line!r}")
        headers: Dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > self.config.max_body_bytes:
            raise ValueError(f"content-length {length} out of bounds")
        body = await reader.readexactly(length) if length else b""
        return _HttpRequest(method=method, path=path, headers=headers, body=body)

    async def _dispatch(
        self,
        request: _HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        self._requests_handled += 1
        keep_alive = request.headers.get("connection", "").lower() != "close"
        try:
            return await self._route(request, reader, writer, keep_alive)
        except ServeError as exc:
            status = STATUS_BY_REASON.get(exc.code, 500)
            await self._write_json(
                writer,
                status,
                {"error": {"code": exc.code.value, "message": str(exc)}},
                keep_alive,
                extra_headers={"Retry-After": "1"} if status == 503 else None,
            )
            return keep_alive
        except Exception as exc:  # noqa: BLE001 - counted and answered as 500
            self._internal_errors += 1
            await self._write_json(
                writer,
                500,
                {
                    "error": {
                        "code": ReasonCode.INTERNAL.value,
                        "message": f"{type(exc).__name__}: {exc}",
                    }
                },
                keep_alive=False,
            )
            return False

    async def _route(
        self,
        request: _HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> bool:
        if request.method == "GET" and request.path == "/healthz":
            await self._write_json(
                writer,
                200,
                {
                    "status": "ok",
                    "uptime_s": time.monotonic() - self._started_at,
                    "requests_handled": self._requests_handled,
                    "protocol_errors": self._protocol_errors,
                    "internal_errors": self._internal_errors,
                    "requests_recorded": self._requests_recorded,
                    "stream_disconnects": self._stream_disconnects,
                    "stream_cancelled_chunks": self._stream_cancelled_chunks,
                },
                keep_alive,
            )
            return keep_alive
        if request.method == "GET" and request.path == "/readyz":
            # Keyless like /healthz (probes rarely carry credentials), but
            # off-loop: the report takes per-service locks.
            loop = asyncio.get_running_loop()
            report = await loop.run_in_executor(None, self.registry.readiness)
            unready = report.get("status") == "unready"
            await self._write_json(
                writer,
                503 if unready else 200,
                report,
                keep_alive,
                extra_headers={"Retry-After": "1"} if unready else None,
            )
            return keep_alive
        if request.method == "GET" and request.path == "/v1/models":
            tenant = self._authenticate(request)
            infos = [
                info.to_dict()
                for info in self.registry.describe()
                if tenant.may_use(info.name)
            ]
            await self._write_json(writer, 200, {"models": infos}, keep_alive)
            return keep_alive
        match = _STATS_PATH.match(request.path)
        if request.method == "GET" and match:
            tenant = self._authenticate(request)
            name = match.group(1)
            self.auth.authorize(tenant, name)
            report = self.registry.stats(name)
            await self._write_json(writer, 200, report.to_dict(), keep_alive)
            return keep_alive
        match = _PREDICT_PATH.match(request.path)
        if request.method == "POST" and match:
            tenant = self._authenticate(request)
            name = match.group(1)
            blocks, priority, deadline_ms, stream = self._parse_predict(request)
            if self.recorder is not None:
                # After parsing, before admission: the trace captures every
                # well-formed call the queue is offered, including those the
                # queue then rejects (a replay must reproduce that load).
                self.recorder.record(
                    blocks,
                    priority=priority,
                    deadline_ms=deadline_ms,
                    model=name,
                    stream=stream,
                )
                self._requests_recorded += 1
            if stream:
                return await self._predict_stream(
                    reader, writer, name, tenant, blocks, priority, deadline_ms,
                    keep_alive,
                )
            await self._predict_unary(
                writer, name, tenant, blocks, priority, deadline_ms, keep_alive
            )
            return keep_alive
        raise InvalidRequestError(
            f"no route for {request.method} {request.path}"
        )

    # ------------------------------------------------------------------ #
    # Route implementations.
    # ------------------------------------------------------------------ #
    def _authenticate(self, request: _HttpRequest):
        api_key = request.headers.get("x-api-key")
        if api_key is None:
            bearer = request.headers.get("authorization", "")
            if bearer.lower().startswith("bearer "):
                api_key = bearer[len("bearer ") :].strip()
        return self.auth.authenticate(api_key)

    def _parse_predict(
        self, request: _HttpRequest
    ) -> Tuple[List[str], int, Optional[float], bool]:
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise InvalidRequestError(f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise InvalidRequestError("body must be a JSON object")
        if "block" in payload and "blocks" in payload:
            raise InvalidRequestError("pass either 'block' or 'blocks', not both")
        blocks = [payload["block"]] if "block" in payload else payload.get("blocks")
        if (
            not isinstance(blocks, list)
            or not blocks
            or not all(isinstance(block, str) and block.strip() for block in blocks)
        ):
            raise InvalidRequestError(
                "'blocks' must be a non-empty list of non-empty strings "
                "(or pass a single 'block')"
            )
        raw_priority = payload.get("priority", "normal")
        if isinstance(raw_priority, str):
            try:
                priority = _PRIORITY_NAMES[raw_priority.lower()]
            except KeyError:
                raise InvalidRequestError(
                    f"unknown priority {raw_priority!r}; "
                    f"use {sorted(_PRIORITY_NAMES)} or an integer"
                ) from None
        elif isinstance(raw_priority, int) and not isinstance(raw_priority, bool):
            priority = raw_priority
        else:
            raise InvalidRequestError("'priority' must be a name or an integer")
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) or isinstance(
                deadline_ms, bool
            ) or deadline_ms < 0:
                raise InvalidRequestError("'deadline_ms' must be a number >= 0")
            deadline_ms = float(deadline_ms)
        stream = payload.get("stream", False)
        if not isinstance(stream, bool):
            raise InvalidRequestError("'stream' must be a boolean")
        return list(blocks), priority, deadline_ms, stream

    async def _submit(
        self,
        name: str,
        tenant,
        blocks: List[str],
        priority: int,
        deadline_ms: Optional[float],
    ) -> "asyncio.Future":
        """Admits one request off-loop; returns an awaitable of its result.

        Admission may block (lazy model load, or queue space under the
        ``block`` policy), so it runs on the default executor; admission
        errors (unknown model, 429-reject, closed) surface right here.
        """
        loop = asyncio.get_running_loop()
        submit = functools.partial(
            self.registry.submit,
            name,
            PredictionRequest.of(blocks),
            tenant=tenant,
            priority=priority,
            deadline_ms=deadline_ms,
        )
        future = await loop.run_in_executor(None, submit)
        return asyncio.wrap_future(future)

    async def _predict_unary(
        self,
        writer: asyncio.StreamWriter,
        name: str,
        tenant,
        blocks: List[str],
        priority: int,
        deadline_ms: Optional[float],
        keep_alive: bool,
    ) -> None:
        response = await (
            await self._submit(name, tenant, blocks, priority, deadline_ms)
        )
        await self._write_json(
            writer,
            200,
            {
                "request_id": response.request_id,
                "model": name,
                "num_blocks": response.num_blocks,
                "seconds": response.seconds,
                "degraded": getattr(response, "degraded", False),
                "predictions": response.predictions,
            },
            keep_alive,
        )

    async def _predict_stream(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        name: str,
        tenant,
        blocks: List[str],
        priority: int,
        deadline_ms: Optional[float],
        keep_alive: bool,
    ) -> bool:
        """NDJSON streaming: one line per micro-batch-sized chunk.

        Every chunk is its own queue request, so lines appear as the
        dispatcher flushes each micro-batch — the client consumes early
        results while later chunks still queue.  All chunks are admitted
        *before* the response head is written: admission-time failures
        (unknown model, full queue) still map to proper status codes.
        Per-chunk failures after that (an expired deadline, a drained
        close) become ``"error"`` lines instead of poisoning the stream.

        A client that disconnects mid-stream is noticed within one poll
        interval (``reader.at_eof()`` flips as soon as the transport sees
        the FIN, whether or not anything is reading): every still-pending
        chunk future is cancelled, which propagates to the queue's eager
        cancel-discard and frees the abandoned blocks' capacity instead of
        predicting for nobody.  Returns whether the connection is reusable
        (always ``False`` after a disconnect).
        """
        chunk_size = self.registry.variant(name).config.max_batch_size
        pending: Dict["asyncio.Future", Tuple[int, int]] = {}
        for chunk_index, offset in enumerate(range(0, len(blocks), chunk_size)):
            chunk = blocks[offset : offset + chunk_size]
            awaitable = await self._submit(
                name, tenant, chunk, priority, deadline_ms
            )
            pending[awaitable] = (chunk_index, offset)
        total_chunks = len(pending)
        disconnected = False
        try:
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1"))
            await writer.drain()
            while pending:
                if reader.at_eof() or reader.exception() is not None:
                    disconnected = True
                    break
                done, _ = await asyncio.wait(
                    pending.keys(),
                    timeout=0.05,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for finished in done:
                    chunk_index, offset = pending.pop(finished)
                    line: Dict[str, Any] = {"chunk": chunk_index, "offset": offset}
                    try:
                        response = finished.result()
                        line.update(
                            request_id=response.request_id,
                            num_blocks=response.num_blocks,
                            seconds=response.seconds,
                            degraded=getattr(response, "degraded", False),
                            predictions=response.predictions,
                        )
                    except ServeError as exc:
                        line["error"] = {
                            "code": exc.code.value,
                            "message": str(exc),
                        }
                    await self._write_ndjson_line(writer, line)
            if not disconnected:
                await self._write_ndjson_line(
                    writer, {"done": True, "chunks": total_chunks}
                )
                writer.write(b"0\r\n\r\n")
                await writer.drain()
        except (ConnectionError, OSError):
            # The peer vanished between the at_eof poll and a write; same
            # cleanup as a detected disconnect.
            disconnected = True
        finally:
            if pending:
                # Cancelling the asyncio wrapper chains to the underlying
                # queue future; chunks still queued are dropped and their
                # blocks freed, chunks already mid-flush finish unobserved.
                self._stream_cancelled_chunks += sum(
                    1 for future in pending if future.cancel()
                )
            if disconnected:
                self._stream_disconnects += 1
        return keep_alive and not disconnected

    # ------------------------------------------------------------------ #
    # Wire helpers.
    # ------------------------------------------------------------------ #
    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        keep_alive: bool,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(_jsonable(payload)).encode("utf-8")
        extras = "".join(
            f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_REASON_PHRASES.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extras}"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _write_ndjson_line(
        self, writer: asyncio.StreamWriter, payload: Dict[str, Any]
    ) -> None:
        data = json.dumps(_jsonable(payload)).encode("utf-8") + b"\n"
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        await writer.drain()
