"""Bounded priority request queue with latency-deadline flushing.

This is the producer/consumer core of the async serving front end
(:class:`repro.serve.async_service.AsyncPredictionService`).  Producers
:meth:`~RequestQueue.put` requests and immediately get a
:class:`concurrent.futures.Future`; a single dispatcher thread calls
:meth:`~RequestQueue.take_batch`, which blocks until a flush is due and
returns the batch to predict.  The flush rule is the classic
latency/throughput trade-off knob:

* **size** — enough blocks are pending to fill ``max_batch_size``; flush
  now, the batch is as dense as it gets;
* **deadline** — the *oldest* pending request has waited ``max_wait_s``;
  flush whatever is there, a straggler must not wait forever for company;
* **close** — the queue is shutting down; flush the remainder so every
  accepted request still gets an answer.

Requests carry a :class:`Priority`: the flush drains strictly in priority
order (ties broken by arrival), so an interactive autotuner request jumps
ahead of queued bulk-eval traffic without any extra machinery.

Admission is bounded in *blocks*, not requests — a thousand one-block
requests and one thousand-block request cost the model the same.  When the
queue is full, the configured back-pressure policy decides: ``"block"``
makes ``put`` wait (optionally with a timeout) for the dispatcher to drain,
``"reject"`` raises :class:`QueueFullError` immediately so the client can
shed load itself.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional, Tuple

from repro.serve.batching import PredictionRequest

__all__ = [
    "BACKPRESSURE_POLICIES",
    "Priority",
    "QueueFullError",
    "QueuedRequest",
    "RequestQueue",
]

#: Admission policies when the queue is at capacity.
BACKPRESSURE_POLICIES = ("block", "reject")


class Priority(IntEnum):
    """Scheduling class of a request; lower values are served first.

    The gap between the levels is deliberate: callers with finer needs can
    pass any int in between (e.g. ``Priority.BULK - 1`` for "bulk but ahead
    of the backfill job").
    """

    #: A caller is blocked on the answer (e.g. a compiler autotuner's inner
    #: loop); jumps ahead of any queued bulk traffic.
    INTERACTIVE = 0
    #: Default traffic.
    NORMAL = 10
    #: Throughput-oriented batch evaluation; yields to everything else.
    BULK = 20


class QueueFullError(RuntimeError):
    """The queue is at capacity and the back-pressure policy rejected."""


@dataclass
class QueuedRequest:
    """One admitted request together with its delivery machinery.

    Attributes:
        request: The client's prediction request.
        priority: Scheduling class (lower drains first).
        sequence: Admission order, the tie-breaker within a priority.
        enqueued_at: ``time.monotonic()`` of admission; deadline flushing
            and the wait-latency stats are measured from here.
        future: Resolves to the :class:`~repro.serve.batching.PredictionResponse`
            (or the submission's exception).
    """

    request: PredictionRequest
    priority: int
    sequence: int
    enqueued_at: float
    future: Future = field(default_factory=Future)


class RequestQueue:
    """Thread-safe bounded priority queue of prediction requests.

    Args:
        max_blocks: Admission bound in blocks (not requests).
        policy: ``"block"`` or ``"reject"`` (see module docstring).
    """

    def __init__(self, max_blocks: int = 4096, policy: str = "block") -> None:
        if max_blocks < 1:
            raise ValueError("max_blocks must be positive")
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown back-pressure policy {policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        self.max_blocks = int(max_blocks)
        self.policy = policy
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._work = threading.Condition(self._lock)
        self._heap: List[Tuple[int, int, QueuedRequest]] = []
        self._by_arrival: "OrderedDict[int, QueuedRequest]" = OrderedDict()
        self._sequence = itertools.count()
        self._pending_blocks = 0
        self._closed = False
        #: Requests turned away (reject policy or block-policy timeout).
        self.rejected = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_arrival)

    @property
    def pending_blocks(self) -> int:
        """Blocks currently admitted and not yet drained."""
        with self._lock:
            return self._pending_blocks

    # ------------------------------------------------------------------ #
    # Producer side.
    # ------------------------------------------------------------------ #
    def put(
        self,
        request: PredictionRequest,
        priority: int = Priority.NORMAL,
        timeout: Optional[float] = None,
    ) -> QueuedRequest:
        """Admits ``request``, returning its queue entry (with the future).

        Raises:
            QueueFullError: Capacity exceeded and the policy is ``reject``,
                the ``block`` wait timed out, or the request alone exceeds
                ``max_blocks`` (it could never be admitted).
            RuntimeError: The queue is closed.
        """
        blocks = request.num_blocks
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is closed")
            if blocks > self.max_blocks:
                self.rejected += 1
                raise QueueFullError(
                    f"request {request.request_id!r} has {blocks} blocks, more "
                    f"than the queue's total capacity of {self.max_blocks}"
                )
            if self._pending_blocks + blocks > self.max_blocks:
                if self.policy == "reject":
                    self.rejected += 1
                    raise QueueFullError(
                        f"queue full ({self._pending_blocks}/{self.max_blocks} "
                        f"blocks); request {request.request_id!r} rejected"
                    )
                deadline = None if timeout is None else time.monotonic() + timeout
                while self._pending_blocks + blocks > self.max_blocks:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        self.rejected += 1
                        raise QueueFullError(
                            f"timed out after {timeout:.3f}s waiting for queue "
                            f"space for request {request.request_id!r}"
                        )
                    self._not_full.wait(remaining)
                    if self._closed:
                        raise RuntimeError("queue closed while waiting for space")
            sequence = next(self._sequence)
            entry = QueuedRequest(
                request=request,
                priority=int(priority),
                sequence=sequence,
                enqueued_at=time.monotonic(),
            )
            heapq.heappush(self._heap, (entry.priority, sequence, entry))
            self._by_arrival[sequence] = entry
            self._pending_blocks += blocks
            self._work.notify_all()
            return entry

    # ------------------------------------------------------------------ #
    # Consumer (dispatcher) side.
    # ------------------------------------------------------------------ #
    def take_batch(
        self, max_blocks: int, max_wait_s: float
    ) -> Tuple[List[QueuedRequest], str]:
        """Blocks until a flush is due, then drains and returns one batch.

        Returns ``(entries, reason)`` with ``reason`` one of ``"size"``,
        ``"deadline"`` or ``"close"``.  Entries come out in priority order
        (ties by arrival) and cover at most ``max_blocks`` blocks, with two
        deliberate exceptions: the arrival-oldest entry is always included
        (sustained high-priority traffic must not starve it past its
        deadline), and an over-sized request rides along uncut (the
        prediction service splits it into micro-batches anyway).  An empty
        list (reason ``"close"``) means the queue was closed and fully
        drained: the dispatcher should exit.
        """
        if max_blocks < 1:
            raise ValueError("max_blocks must be positive")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        with self._lock:
            while True:
                if not self._by_arrival:
                    if self._closed:
                        return [], "close"
                    self._work.wait()
                    continue
                oldest = next(iter(self._by_arrival.values()))
                age = time.monotonic() - oldest.enqueued_at
                if self._pending_blocks >= max_blocks:
                    reason = "size"
                elif self._closed:
                    reason = "close"
                elif age >= max_wait_s:
                    reason = "deadline"
                else:
                    self._work.wait(timeout=max_wait_s - age)
                    continue
                return self._drain_locked(max_blocks), reason

    def _drain_locked(self, max_blocks: int) -> List[QueuedRequest]:
        # Anti-starvation: the arrival-oldest entry — whose age is what
        # drives the deadline trigger — is always part of the flush,
        # whatever its priority.  Otherwise sustained high-priority traffic
        # filling every batch would leave an old bulk request (and every
        # flush's "deadline" attribution) stuck behind it forever.
        oldest_sequence, oldest_entry = next(iter(self._by_arrival.items()))
        del self._by_arrival[oldest_sequence]
        taken: List[QueuedRequest] = [oldest_entry]
        total = oldest_entry.request.num_blocks
        while self._heap:
            _, sequence, entry = self._heap[0]
            if sequence not in self._by_arrival:
                heapq.heappop(self._heap)  # already drained (the oldest)
                continue
            if total + entry.request.num_blocks > max_blocks:
                break
            heapq.heappop(self._heap)
            del self._by_arrival[sequence]
            taken.append(entry)
            total += entry.request.num_blocks
        # The batch itself still leads with the highest-priority entries.
        taken.sort(key=lambda entry: (entry.priority, entry.sequence))
        self._pending_blocks -= total
        self._not_full.notify_all()
        return taken

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stops admissions; pending entries remain drainable (idempotent).

        Producers blocked in ``put`` are woken and fail; the dispatcher
        keeps receiving batches (reason ``"close"``) until the queue is
        empty, so nothing already admitted is dropped.
        """
        with self._lock:
            self._closed = True
            self._work.notify_all()
            self._not_full.notify_all()
