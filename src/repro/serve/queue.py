"""Bounded priority request queue with latency-deadline flushing.

This is the producer/consumer core of the async serving front end
(:class:`repro.serve.async_service.AsyncPredictionService`).  Producers
:meth:`~RequestQueue.put` requests and immediately get a
:class:`concurrent.futures.Future`; a single dispatcher thread calls
:meth:`~RequestQueue.take_batch`, which blocks until a flush is due and
returns the batch to predict.  The flush rule is the classic
latency/throughput trade-off knob:

* **size** — enough blocks are pending to fill ``max_batch_size``; flush
  now, the batch is as dense as it gets;
* **deadline** — the *oldest* pending request has waited ``max_wait_s``;
  flush whatever is there, a straggler must not wait forever for company;
* **close** — the queue is shutting down; flush the remainder so every
  accepted request still gets an answer.

Requests carry a :class:`Priority`: the flush drains strictly in priority
order (ties broken by arrival), so an interactive autotuner request jumps
ahead of queued bulk-eval traffic without any extra machinery.

Admission is bounded in *blocks*, not requests — a thousand one-block
requests and one thousand-block request cost the model the same.  When the
queue is full, the configured back-pressure policy decides: ``"block"``
makes ``put`` wait (optionally with a timeout) for the dispatcher to drain,
``"reject"`` raises :class:`QueueFullError` immediately so the client can
shed load itself.

Admitted requests can still leave the queue without being served:

* **cancellation** — a client calling ``entry.future.cancel()`` while the
  request is queued discards it *eagerly*: its blocks stop counting against
  the admission bound and the flush budget immediately, so an abandoned
  autotuner candidate never reaches a worker;
* **expiry** — a request admitted with a ``deadline_s`` budget that the
  dispatcher cannot meet resolves with :class:`RequestExpiredError` instead
  of occupying a micro-batch slot.

Both are counted (:attr:`RequestQueue.cancelled`,
:attr:`RequestQueue.expired`) so the serving stats can report drop rates.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, List, Optional, Tuple, Union

from repro.serve.types import (
    PredictionRequest,
    QueueFullError,
    RequestExpiredError,
    ServiceClosedError,
)

__all__ = [
    "BACKPRESSURE_POLICIES",
    "Priority",
    "QueueFullError",
    "QueuedRequest",
    "RequestExpiredError",
    "RequestQueue",
]

#: Admission policies when the queue is at capacity.
BACKPRESSURE_POLICIES = ("block", "reject")


class Priority(IntEnum):
    """Scheduling class of a request; lower values are served first.

    The gap between the levels is deliberate: callers with finer needs can
    pass any int in between (e.g. ``Priority.BULK - 1`` for "bulk but ahead
    of the backfill job").
    """

    #: A caller is blocked on the answer (e.g. a compiler autotuner's inner
    #: loop); jumps ahead of any queued bulk traffic.
    INTERACTIVE = 0
    #: Default traffic.
    NORMAL = 10
    #: Throughput-oriented batch evaluation; yields to everything else.
    BULK = 20


@dataclass
class QueuedRequest:
    """One admitted request together with its delivery machinery.

    Attributes:
        request: The client's prediction request.
        priority: Scheduling class (lower drains first).
        sequence: Admission order, the tie-breaker within a priority.
        enqueued_at: ``time.monotonic()`` of admission; deadline flushing
            and the wait-latency stats are measured from here.
        deadline_at: Optional ``time.monotonic()`` instant after which the
            request is dropped with :class:`RequestExpiredError` instead of
            being dispatched (``None`` = never expires).
        future: Resolves to the :class:`~repro.serve.batching.PredictionResponse`
            (or the submission's exception).
    """

    request: PredictionRequest
    priority: int
    sequence: int
    enqueued_at: float
    deadline_at: Optional[float] = None
    future: Future = field(default_factory=Future)


class RequestQueue:
    """Thread-safe bounded priority queue of prediction requests.

    Args:
        max_blocks: Admission bound in blocks (not requests).
        policy: ``"block"`` or ``"reject"`` (see module docstring).
    """

    def __init__(self, max_blocks: int = 4096, policy: str = "block") -> None:
        if max_blocks < 1:
            raise ValueError("max_blocks must be positive")
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown back-pressure policy {policy!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        self.max_blocks = int(max_blocks)
        self.policy = policy
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._work = threading.Condition(self._lock)
        self._heap: List[Tuple[int, int, QueuedRequest]] = []
        self._by_arrival: "OrderedDict[int, QueuedRequest]" = OrderedDict()
        self._sequence = itertools.count()
        self._pending_blocks = 0
        #: Live entries carrying a deadline; gates the expiry machinery so
        #: deadline-free traffic pays nothing for the feature.
        self._deadline_entries = 0
        #: Min-heap of ``(deadline_at, sequence)`` for O(log n) expiry —
        #: lazily deleted like ``_heap`` (entries that left the queue some
        #: other way are skipped when they surface).
        self._deadline_heap: List[Tuple[float, int]] = []
        self._closed = False
        #: Requests turned away (reject policy or block-policy timeout).
        self.rejected = 0
        #: Requests discarded because their future was cancelled in-queue.
        self.cancelled = 0
        #: Requests dropped (``RequestExpiredError``) past their deadline.
        self.expired = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_arrival)

    @property
    def pending_blocks(self) -> int:
        """Blocks currently admitted and not yet drained."""
        with self._lock:
            return self._pending_blocks

    # ------------------------------------------------------------------ #
    # Producer side.
    # ------------------------------------------------------------------ #
    def put(
        self,
        request: PredictionRequest,
        priority: int = Priority.NORMAL,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ) -> QueuedRequest:
        """Admits ``request``, returning its queue entry (with the future).

        Args:
            request: The request to admit.
            priority: Scheduling class (lower drains first).
            timeout: With the ``block`` policy, how long to wait for space.
            deadline_s: Optional per-request latency budget, measured from
                admission; once it passes, the request is dropped with
                :class:`RequestExpiredError` instead of being dispatched.

        Raises:
            QueueFullError: Capacity exceeded and the policy is ``reject``,
                the ``block`` wait timed out, or the request alone exceeds
                ``max_blocks`` (it could never be admitted).
            ServiceClosedError: The queue is closed (a ``RuntimeError``
                subclass, so historical handlers still catch it).
        """
        if deadline_s is not None and deadline_s < 0:
            raise ValueError("deadline_s must be >= 0")
        blocks = request.num_blocks
        with self._lock:
            if self._closed:
                raise ServiceClosedError("queue is closed")
            if blocks > self.max_blocks:
                self.rejected += 1
                raise QueueFullError(
                    f"request {request.request_id!r} has {blocks} blocks, more "
                    f"than the queue's total capacity of {self.max_blocks}"
                )
            if self._pending_blocks + blocks > self.max_blocks:
                if self.policy == "reject":
                    self.rejected += 1
                    raise QueueFullError(
                        f"queue full ({self._pending_blocks}/{self.max_blocks} "
                        f"blocks); request {request.request_id!r} rejected"
                    )
                deadline = None if timeout is None else time.monotonic() + timeout
                while self._pending_blocks + blocks > self.max_blocks:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        self.rejected += 1
                        raise QueueFullError(
                            f"timed out after {timeout:.3f}s waiting for queue "
                            f"space for request {request.request_id!r}"
                        )
                    self._not_full.wait(remaining)
                    if self._closed:
                        raise ServiceClosedError(
                            "queue closed while waiting for space"
                        )
            sequence = next(self._sequence)
            enqueued_at = time.monotonic()
            entry = QueuedRequest(
                request=request,
                priority=int(priority),
                sequence=sequence,
                enqueued_at=enqueued_at,
                deadline_at=(
                    None if deadline_s is None else enqueued_at + deadline_s
                ),
            )
            heapq.heappush(self._heap, (entry.priority, sequence, entry))
            self._by_arrival[sequence] = entry
            self._pending_blocks += blocks
            if entry.deadline_at is not None:
                self._deadline_entries += 1
                heapq.heappush(self._deadline_heap, (entry.deadline_at, sequence))
            self._work.notify_all()
        # Outside the lock: a cancel() from another thread runs this callback
        # synchronously, and the discard it triggers takes the lock itself.
        entry.future.add_done_callback(
            lambda future, entry=entry: self._on_future_done(entry)
        )
        return entry

    def _on_future_done(self, entry: QueuedRequest) -> None:
        """Eagerly discards an entry whose future was cancelled in-queue.

        Done callbacks fire for normal resolution too; only a *cancelled*
        future whose entry is still queued needs work — its blocks stop
        counting against admission and the flush budget immediately, and
        blocked producers get the freed space.
        """
        if not entry.future.cancelled():
            return
        with self._lock:
            if entry.sequence not in self._by_arrival:
                return  # already drained (or expired); accounted elsewhere
            self._remove_entry_locked(entry)
            self.cancelled += 1
            self._not_full.notify_all()
            self._work.notify_all()

    def _remove_entry_locked(self, entry: QueuedRequest) -> None:
        del self._by_arrival[entry.sequence]
        self._pending_blocks -= entry.request.num_blocks
        if entry.deadline_at is not None:
            self._deadline_entries -= 1
        self._compact_heap_locked()

    def _compact_heap_locked(self) -> None:
        """Rebuilds the heaps once lazy deletions dominate them.

        Entries removed out of band (cancelled, expired, or drained as the
        arrival-oldest) stay in the heaps as stale tuples until a pop
        happens to pass them — but the priority heap only drains when live
        entries exist, so an idle queue fed speculative submit-then-cancel
        traffic would otherwise pin every cancelled request's payload
        forever.  Rebuilding when stale tuples outnumber live entries
        keeps both heaps O(live) at amortized O(1) per removal.
        """
        stale = len(self._heap) - len(self._by_arrival)
        if stale > 16 and stale > len(self._by_arrival):
            self._heap = [
                (entry.priority, entry.sequence, entry)
                for entry in self._by_arrival.values()
            ]
            heapq.heapify(self._heap)
        stale_deadlines = len(self._deadline_heap) - self._deadline_entries
        if stale_deadlines > 16 and stale_deadlines > self._deadline_entries:
            self._deadline_heap = [
                (entry.deadline_at, entry.sequence)
                for entry in self._by_arrival.values()
                if entry.deadline_at is not None
            ]
            heapq.heapify(self._deadline_heap)

    # ------------------------------------------------------------------ #
    # Consumer (dispatcher) side.
    # ------------------------------------------------------------------ #
    def take_batch(
        self,
        max_blocks: int,
        max_wait_s: Union[float, Callable[[int], float]],
    ) -> Tuple[List[QueuedRequest], str]:
        """Blocks until a flush is due, then drains and returns one batch.

        ``max_wait_s`` is either a fixed flush deadline in seconds or a
        callable ``pending_blocks -> seconds`` that is re-evaluated on
        every wake-up (how the adaptive flush controller drives the
        dispatcher).  The callable runs under the queue lock, so it must
        not call back into the queue.

        Returns ``(entries, reason)`` with ``reason`` one of ``"size"``,
        ``"deadline"`` or ``"close"``.  Entries come out in priority order
        (ties by arrival) and cover at most ``max_blocks`` blocks, with two
        deliberate exceptions: the arrival-oldest entry is always included
        (sustained high-priority traffic must not starve it past its
        deadline), and an over-sized request rides along uncut (the
        prediction service splits it into micro-batches anyway).  An empty
        list (reason ``"close"``) means the queue was closed and fully
        drained: the dispatcher should exit.

        Requests whose per-request deadline has passed are dropped here —
        before they can occupy batch capacity — and their futures resolve
        with :class:`RequestExpiredError`.
        """
        if max_blocks < 1:
            raise ValueError("max_blocks must be positive")
        if not callable(max_wait_s) and max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        while True:
            expired: List[QueuedRequest] = []
            batch: Optional[List[QueuedRequest]] = None
            reason = ""
            with self._lock:
                while True:
                    now = time.monotonic()
                    expired.extend(self._pop_expired_locked(now))
                    if not self._by_arrival:
                        if self._closed:
                            batch, reason = [], "close"
                            break
                        if expired:
                            break  # resolve them before blocking again
                        self._work.wait()
                        continue
                    wait_s = (
                        max(max_wait_s(self._pending_blocks), 0.0)
                        if callable(max_wait_s)
                        else max_wait_s
                    )
                    oldest = next(iter(self._by_arrival.values()))
                    age = now - oldest.enqueued_at
                    if self._pending_blocks >= max_blocks:
                        reason = "size"
                    elif self._closed:
                        reason = "close"
                    elif age >= wait_s:
                        reason = "deadline"
                    else:
                        if expired:
                            break  # resolve outside the lock, then re-enter
                        timeout = wait_s - age
                        next_expiry = self._next_expiry_locked()
                        if next_expiry is not None:
                            timeout = min(timeout, max(next_expiry - now, 0.0))
                        self._work.wait(timeout=timeout)
                        continue
                    batch = self._drain_locked(max_blocks)
                    break
            # Futures are resolved outside the lock: done callbacks run in
            # the resolving thread and may call back into the queue.
            for entry in expired:
                self._resolve_expired(entry)
            if batch is not None:
                return batch, reason

    def _pop_expired_locked(self, now: float) -> List[QueuedRequest]:
        """Removes (without resolving) every entry past its deadline.

        O(expired log n) via the deadline heap — a deadline-carrying
        backlog must not cost a full queue scan per dispatcher wake-up.
        """
        if not self._deadline_entries:
            return []
        expired: List[QueuedRequest] = []
        while self._deadline_heap:
            deadline_at, sequence = self._deadline_heap[0]
            entry = self._by_arrival.get(sequence)
            if entry is None:
                heapq.heappop(self._deadline_heap)  # left some other way
                continue
            if deadline_at > now:
                break
            heapq.heappop(self._deadline_heap)
            self._remove_entry_locked(entry)
            expired.append(entry)
        if expired:
            self._not_full.notify_all()
        return expired

    def _next_expiry_locked(self) -> Optional[float]:
        """The soonest pending per-request deadline, if any."""
        while self._deadline_heap:
            deadline_at, sequence = self._deadline_heap[0]
            if sequence in self._by_arrival:
                return deadline_at
            heapq.heappop(self._deadline_heap)  # stale: left some other way
        return None

    def _resolve_expired(self, entry: QueuedRequest) -> None:
        # set_running first: if the client cancelled concurrently, the
        # future is already resolved and set_exception would raise
        # InvalidStateError.  A cancel that won the race is counted as a
        # cancellation, keeping every dropped entry counted exactly once.
        waited = time.monotonic() - entry.enqueued_at
        if entry.future.set_running_or_notify_cancel():
            entry.future.set_exception(
                RequestExpiredError(
                    f"request {entry.request.request_id!r} expired after "
                    f"waiting {waited:.3f}s (deadline "
                    f"{entry.deadline_at - entry.enqueued_at:.3f}s)"
                )
            )
            with self._lock:
                self.expired += 1
        else:
            with self._lock:
                self.cancelled += 1

    def _drain_locked(self, max_blocks: int) -> List[QueuedRequest]:
        # Anti-starvation: the arrival-oldest entry — whose age is what
        # drives the deadline trigger — is always part of the flush,
        # whatever its priority.  Otherwise sustained high-priority traffic
        # filling every batch would leave an old bulk request (and every
        # flush's "deadline" attribution) stuck behind it forever.
        oldest_entry = next(iter(self._by_arrival.values()))
        self._remove_entry_locked(oldest_entry)
        taken: List[QueuedRequest] = [oldest_entry]
        total = oldest_entry.request.num_blocks
        while self._heap:
            _, sequence, entry = self._heap[0]
            if sequence not in self._by_arrival:
                # Already gone: drained as the oldest, cancelled or expired.
                heapq.heappop(self._heap)
                continue
            if total + entry.request.num_blocks > max_blocks:
                break
            heapq.heappop(self._heap)
            self._remove_entry_locked(entry)
            taken.append(entry)
            total += entry.request.num_blocks
        # The batch itself still leads with the highest-priority entries.
        taken.sort(key=lambda entry: (entry.priority, entry.sequence))
        self._not_full.notify_all()
        return taken

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Stops admissions; pending entries remain drainable (idempotent).

        Producers blocked in ``put`` are woken and fail; the dispatcher
        keeps receiving batches (reason ``"close"``) until the queue is
        empty, so nothing already admitted is dropped.
        """
        with self._lock:
            self._closed = True
            self._work.notify_all()
            self._not_full.notify_all()
