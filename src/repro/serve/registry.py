"""The multi-tenant model registry: many named variants, one process.

A production cost-model service rarely serves *one* model: compilers want
one head per microarchitecture, autotuners compare model families, and
mixed-precision variants trade accuracy for speed.  :class:`ModelRegistry`
hosts any number of named :class:`ModelVariant`\\ s — each a full
``ServiceConfig`` (model family × uarch tasks × dtype × sharding ×
checkpoint) — behind one process:

* **lazy load** — a variant costs nothing until its first request (or an
  explicit :meth:`ModelRegistry.load`); :meth:`ModelRegistry.unload`
  returns it to the cold state, freeing its workers and caches;
* **warm start** — loading builds an
  :class:`~repro.serve.async_service.AsyncPredictionService` from the
  variant's config, restoring its checkpoint into every replica, so the
  first request after load pays queueing cost only;
* **isolation** — every variant owns its queue, dispatcher, model replica
  and caches; a saturated bulk variant cannot starve an interactive one,
  and float32/float64 variants never alias cache entries;
* **tenancy** — :meth:`ModelRegistry.submit` takes an optional
  :class:`~repro.serve.auth.Tenant`, enforces its model allow-list
  (:class:`~repro.serve.types.AuthorizationError`) and counts requests
  per (model, tenant) for the stats report.

The registry raises the reason-coded errors of :mod:`repro.serve.types`
(``UNKNOWN_MODEL``, ``SERVICE_CLOSED``, ``FORBIDDEN``, ...) so transports
map outcomes to status codes without string matching.
"""

from __future__ import annotations

import re
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.serve.async_service import AsyncPredictionService
from repro.serve.auth import Tenant
from repro.serve.config import ServiceConfig
from repro.serve.queue import Priority
from repro.serve.stats import ServiceSnapshot, StatsStruct, WorkerStats
from repro.serve.types import (
    AuthorizationError,
    PredictionRequest,
    ServiceClosedError,
    UnknownModelError,
)

__all__ = ["ModelVariant", "ModelInfo", "ModelReport", "ModelRegistry"]

#: Registry names appear in URLs (``/v1/models/{name}/predict``).
_VARIANT_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class ModelVariant:
    """One named serveable configuration.

    Attributes:
        name: URL-safe registry name (letters, digits, ``._-``).
        config: The full service configuration of this variant — model
            family, uarch task heads, dtype, sharding, checkpoint, and the
            nested async options its front end runs with.
        description: Free-form operator note, echoed in ``GET /v1/models``.
    """

    name: str
    config: ServiceConfig = field(default_factory=ServiceConfig)
    description: str = ""

    def __post_init__(self) -> None:
        if not _VARIANT_NAME_RE.match(self.name):
            raise ValueError(
                f"variant name {self.name!r} is not URL-safe; use letters, "
                f"digits, '.', '_' or '-' (and start with a letter or digit)"
            )


@dataclass(frozen=True)
class ModelInfo(StatsStruct):
    """Registry-level description of one variant (cheap; never loads it)."""

    name: str
    model_name: str
    tasks: Tuple[str, ...]
    inference_dtype: str
    loaded: bool
    description: str
    requests_by_tenant: Dict[str, int]


@dataclass(frozen=True)
class ModelReport(StatsStruct):
    """Full per-variant stats: info + the live service's typed snapshot.

    ``snapshot`` and ``workers`` are ``None`` / empty while the variant is
    cold — asking for stats must never be what loads a model.
    """

    info: ModelInfo
    snapshot: Optional[ServiceSnapshot]
    workers: List[WorkerStats]


class ModelRegistry:
    """Thread-safe named-variant router over async prediction services.

    Args:
        variants: Initial variants; more can be registered at runtime.

    The registry lock guards the variant/service tables and the tenant
    counters.  Building a variant's service (model construction, possibly
    checkpoint load and worker spawns) happens *under* the lock: the first
    request to a cold variant briefly blocks lookups of other variants,
    which is the price of never double-building a replica.  Latency-
    sensitive deployments should :meth:`load` their variants at startup.
    """

    def __init__(self, variants: Tuple[ModelVariant, ...] = ()) -> None:
        self._lock = threading.Lock()
        self._variants: Dict[str, ModelVariant] = {}  # guarded-by: _lock
        self._services: Dict[str, AsyncPredictionService] = {}  # guarded-by: _lock
        self._tenant_requests: Dict[str, Dict[str, int]] = {}  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        for variant in variants:
            self.register(variant)

    # ------------------------------------------------------------------ #
    # Registration and lifecycle.
    # ------------------------------------------------------------------ #
    def register(self, variant: ModelVariant) -> None:
        """Adds ``variant`` to the registry (cold; nothing is built yet)."""
        with self._lock:
            self._check_open_locked()
            if variant.name in self._variants:
                raise ValueError(f"variant {variant.name!r} is already registered")
            self._variants[variant.name] = variant
            self._tenant_requests[variant.name] = {}

    def model_names(self) -> List[str]:
        """Registered variant names, in registration order."""
        with self._lock:
            return list(self._variants)

    def variant(self, name: str) -> ModelVariant:
        """The (frozen) variant registered under ``name``."""
        with self._lock:
            return self._variant_locked(name)

    def is_loaded(self, name: str) -> bool:
        with self._lock:
            self._variant_locked(name)
            return name in self._services

    def load(self, name: str) -> None:
        """Eagerly builds and warm-starts ``name`` (idempotent)."""
        with self._lock:
            self._service_locked(name)

    def unload(self, name: str) -> bool:
        """Returns ``name`` to the cold state; ``True`` if it was loaded.

        The retired service drains its queue (every admitted request is
        still answered) and frees its workers, caches and dispatcher; a
        later request simply loads a fresh instance.
        """
        with self._lock:
            self._variant_locked(name)
            service = self._services.pop(name, None)
        if service is None:
            return False
        # Closing drains the queue and joins the dispatcher — do it outside
        # the lock so other variants keep serving meanwhile.
        service.close()
        return True

    def close(self) -> None:
        """Unloads everything and refuses further use (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            services = list(self._services.values())
            self._services.clear()
        for service in services:
            service.close()

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _check_open_locked(self) -> None:
        if self._closed:
            raise ServiceClosedError("model registry is closed")

    def _variant_locked(self, name: str) -> ModelVariant:
        self._check_open_locked()
        try:
            return self._variants[name]
        except KeyError:
            raise UnknownModelError(
                f"no model variant named {name!r}; registered: "
                f"{list(self._variants)}"
            ) from None

    def _service_locked(self, name: str) -> AsyncPredictionService:
        variant = self._variant_locked(name)
        service = self._services.get(name)
        if service is None:
            service = AsyncPredictionService(
                service_config=variant.config
            ).start()
            self._services[name] = service
        return service

    # ------------------------------------------------------------------ #
    # Serving.
    # ------------------------------------------------------------------ #
    def submit(
        self,
        name: str,
        request: PredictionRequest,
        tenant: Optional[Tenant] = None,
        priority: int = Priority.NORMAL,
        timeout: Optional[float] = None,
        deadline_ms: Optional[float] = None,
    ) -> "Future":
        """Routes ``request`` to variant ``name``; returns its future.

        Loads the variant lazily on first use.  With a ``tenant``, the
        variant must be on the tenant's allow-list, and the request is
        counted against the (model, tenant) pair.

        Raises:
            UnknownModelError: No variant of that name.
            AuthorizationError: The tenant may not use this variant.
            ServiceClosedError: The registry is closed.
            QueueFullError: The variant's queue rejected the request.
        """
        tenant_name = tenant.name if tenant is not None else None
        if tenant is not None and not tenant.may_use(name):
            raise AuthorizationError(
                f"tenant {tenant.name!r} may not use model {name!r}"
            )
        with self._lock:
            service = self._service_locked(name)
        # The submit itself runs outside the registry lock: with the
        # "block" back-pressure policy it can wait for queue space, and a
        # full queue on one variant must not freeze the whole registry.
        future = service.submit(
            request, priority=priority, timeout=timeout, deadline_ms=deadline_ms
        )
        if tenant_name is not None:
            with self._lock:
                counters = self._tenant_requests.get(name)
                if counters is not None:
                    counters[tenant_name] = counters.get(tenant_name, 0) + 1
        return future

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    def _info_locked(self, name: str) -> ModelInfo:
        variant = self._variants[name]
        config = variant.config
        tasks = (
            tuple(config.tasks)
            if config.tasks is not None
            else tuple(TARGET_MICROARCHITECTURES)
        )
        return ModelInfo(
            name=name,
            model_name=config.model_name,
            tasks=tasks,
            inference_dtype=config.inference_dtype,
            loaded=name in self._services,
            description=variant.description,
            requests_by_tenant=dict(self._tenant_requests.get(name, {})),
        )

    def describe(self) -> List[ModelInfo]:
        """Cheap listing of every variant (loads nothing)."""
        with self._lock:
            self._check_open_locked()
            return [self._info_locked(name) for name in self._variants]

    def stats(self, name: str) -> ModelReport:
        """Typed stats of one variant; cold variants report info only."""
        with self._lock:
            self._variant_locked(name)
            info = self._info_locked(name)
            service = self._services.get(name)
        if service is None:
            return ModelReport(info=info, snapshot=None, workers=[])
        # snapshot()/worker_stats() take the service's own locks (and the
        # worker pipes); keep the registry responsive meanwhile.
        return ModelReport(
            info=info,
            snapshot=service.snapshot(),
            workers=service.service.worker_stats(),
        )

    def readiness(self) -> Dict[str, object]:
        """Aggregated readiness over every *loaded* variant.

        Cold variants never block readiness — lazy loading is the
        registry's normal state, not an outage.  The overall status is
        ``unready`` if the registry is closed or any loaded variant is
        unready, ``degraded`` if any is degraded, else ``ready``; the
        per-variant reports (open breakers, respawn backoff) ride along so
        a probe failure is diagnosable from the response body alone.
        """
        with self._lock:
            closed = self._closed
            services = dict(self._services)
        models: Dict[str, object] = {}
        overall = "unready" if closed else "ready"
        for name, service in services.items():
            # The per-service report takes that service's locks only; the
            # registry stays responsive while we poll.
            report = service.service.resilience_report()
            models[name] = report
            status = report.get("status", "ready")
            if status == "unready":
                overall = "unready"
            elif status == "degraded" and overall == "ready":
                overall = "degraded"
        return {"status": overall, "models": models}
