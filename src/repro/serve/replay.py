"""Trace capture, synthesis and replay: the tail-latency SLO harness.

Mean throughput hides the tail.  A serving stack that predicts a million
blocks per second is still broken if every thousandth request waits half a
second — and the only way to *measure* the tail honestly is to drive the
stack with realistic traffic and record what every request experienced.
This module provides that loop:

* :class:`TraceRequest` / :class:`Trace` — the trace format: per-request
  arrival offsets (seconds since the trace epoch), block texts, priority,
  deadline.  JSON on disk, so traces are diffable and checked-in-able.
* :class:`TraceRecorder` — the live capture hook: hand one to
  :class:`repro.serve.http.PredictionHttpServer` (its ``recorder``
  argument) and every predict call becomes a trace entry, stamped with its
  arrival offset.  Thread-safe; usable from any submission path.
* :func:`synthesize_trace` — workload synthesis when no live traffic
  exists: a fixed-seed block universe sampled with Zipf key skew (real
  block streams are heavily skewed — hot loop bodies recur constantly)
  and bursty arrivals (a two-rate Markov-modulated Poisson process:
  calm/burst phases with exponential gaps).  Same seed, same trace,
  bit-for-bit.
* :class:`TraceReplayer` — drives a trace against an
  :class:`~repro.serve.async_service.AsyncPredictionService` at recorded
  (or time-scaled) pacing and reports what actually happened:
  per-request p50/p99/p99.9 latency, jitter, error/reject counts,
  scheduling lag, and the hedging counters' delta over the run.
* :class:`SloPolicy` / :class:`SloVerdict` — budget checks over a report.
  An empty latency window yields NaN percentiles, and NaN fails every
  budget comparison — a replay that measured nothing can never *pass* an
  SLO (see :func:`repro.serve.stats.latency_percentile`).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from dataclasses import replace as dataclass_replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.queue import Priority
from repro.serve.stats import latency_percentile
from repro.serve.types import PredictionRequest, ServeError

__all__ = [
    "TraceRequest",
    "Trace",
    "TraceRecorder",
    "synthesize_trace",
    "TraceReplayer",
    "ReplayReport",
    "SloPolicy",
    "SloVerdict",
]

#: Trace JSON schema version, bumped on incompatible format changes.
TRACE_VERSION = 1


@dataclass(frozen=True)
class TraceRequest:
    """One request of a trace.

    Attributes:
        offset_s: Arrival time, in seconds since the trace epoch (the
            first request's arrival); non-negative and non-decreasing
            within a trace.
        block_texts: The canonical block texts of the request.
        priority: Queue priority (see :class:`repro.serve.queue.Priority`).
        deadline_ms: Queue deadline carried by the original request, if any.
        model: Model name the request targeted (informational; the
            replayer drives whatever service it is given).
        stream: Whether the original call used NDJSON streaming
            (informational; replay submits each request whole).
    """

    offset_s: float
    block_texts: Tuple[str, ...]
    priority: int = int(Priority.NORMAL)
    deadline_ms: Optional[float] = None
    model: Optional[str] = None
    stream: bool = False

    def __post_init__(self) -> None:
        if self.offset_s < 0:
            raise ValueError("offset_s must be >= 0")
        if not self.block_texts:
            raise ValueError("a trace request needs at least one block")

    @property
    def num_blocks(self) -> int:
        return len(self.block_texts)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "offset_s": self.offset_s,
            "blocks": list(self.block_texts),
            "priority": int(self.priority),
        }
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        if self.model is not None:
            out["model"] = self.model
        if self.stream:
            out["stream"] = True
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "TraceRequest":
        return cls(
            offset_s=float(raw["offset_s"]),
            block_texts=tuple(raw["blocks"]),
            priority=int(raw.get("priority", int(Priority.NORMAL))),
            deadline_ms=(
                None if raw.get("deadline_ms") is None else float(raw["deadline_ms"])
            ),
            model=raw.get("model"),
            stream=bool(raw.get("stream", False)),
        )


@dataclass(frozen=True)
class Trace:
    """An ordered request trace plus free-form metadata."""

    requests: Tuple[TraceRequest, ...]
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        offsets = [request.offset_s for request in self.requests]
        if any(b < a for a, b in zip(offsets, offsets[1:])):
            raise ValueError("trace offsets must be non-decreasing")

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def num_blocks(self) -> int:
        return sum(request.num_blocks for request in self.requests)

    @property
    def duration_s(self) -> float:
        """Offset of the last arrival (0.0 for an empty trace)."""
        return self.requests[-1].offset_s if self.requests else 0.0

    def scaled(self, speedup: float) -> "Trace":
        """The same trace with arrivals ``speedup`` x closer together.

        ``speedup=10`` replays a 60-second capture in 6 seconds — same
        request contents, same relative arrival pattern, compressed
        timeline.  ``speedup < 1`` slows the trace down.
        """
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        return Trace(
            requests=tuple(
                dataclass_replace(request, offset_s=request.offset_s / speedup)
                for request in self.requests
            ),
            metadata={**self.metadata, "scaled_by": speedup},
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": TRACE_VERSION,
                "metadata": self.metadata,
                "requests": [request.to_dict() for request in self.requests],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        raw = json.loads(text)
        version = raw.get("version", TRACE_VERSION)
        if version != TRACE_VERSION:
            raise ValueError(
                f"unsupported trace version {version}; this build reads "
                f"version {TRACE_VERSION}"
            )
        return cls(
            requests=tuple(
                TraceRequest.from_dict(entry) for entry in raw.get("requests", ())
            ),
            metadata=dict(raw.get("metadata", {})),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


class TraceRecorder:
    """Captures live submissions as a :class:`Trace`.

    The first recorded call defines the trace epoch; every later call is
    stamped with its monotonic offset from that epoch.  Thread-safe — the
    HTTP front end records from its loop thread, but nothing stops several
    submission paths from sharing one recorder.

    Args:
        max_requests: Capture stops (silently, counted in
            :attr:`dropped`) beyond this many requests, so a recorder left
            attached to a busy server is memory-bounded.
    """

    def __init__(self, max_requests: int = 100_000) -> None:
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        self.max_requests = int(max_requests)
        self._lock = threading.Lock()
        self._epoch: Optional[float] = None  # guarded-by: _lock
        self._requests: List[TraceRequest] = []  # guarded-by: _lock
        self.dropped = 0  # guarded-by: _lock

    def record(
        self,
        block_texts: Sequence[str],
        priority: int = int(Priority.NORMAL),
        deadline_ms: Optional[float] = None,
        model: Optional[str] = None,
        stream: bool = False,
        now: Optional[float] = None,
    ) -> None:
        """Records one submission (``now`` overrides the clock in tests)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            if self._epoch is None:
                self._epoch = now
            if len(self._requests) >= self.max_requests:
                self.dropped += 1
                return
            self._requests.append(
                TraceRequest(
                    offset_s=max(0.0, now - self._epoch),
                    block_texts=tuple(block_texts),
                    priority=int(priority),
                    deadline_ms=deadline_ms,
                    model=model,
                    stream=stream,
                )
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._requests)

    def trace(self, **metadata: Any) -> Trace:
        """The capture so far as an immutable :class:`Trace`."""
        with self._lock:
            requests = tuple(self._requests)
            dropped = self.dropped
        meta = {"source": "recorded", "dropped": dropped}
        meta.update(metadata)
        return Trace(requests=requests, metadata=meta)


def synthesize_trace(
    num_requests: int,
    seed: int,
    block_universe: Optional[Sequence[str]] = None,
    num_keys: int = 64,
    zipf_alpha: float = 1.1,
    mean_rate_rps: float = 200.0,
    burstiness: float = 4.0,
    burst_fraction: float = 0.2,
    blocks_per_request: int = 1,
    priority: int = int(Priority.NORMAL),
    deadline_ms: Optional[float] = None,
) -> Trace:
    """A deterministic synthetic trace with Zipf key skew and bursty arrivals.

    Block texts are drawn from a ``num_keys``-entry universe with
    probability proportional to ``1 / rank^zipf_alpha`` — rank 1 is the
    hot head key that :class:`repro.serve.ring.HotKeyRouter` exists for.
    Arrival gaps come from a two-phase process: a calm phase at the base
    rate and a burst phase at ``burstiness`` times that rate, with
    ``burst_fraction`` of requests arriving in bursts — the clumped
    arrivals that make tail latency interesting.  Everything flows from
    ``np.random.default_rng(seed)``: the same arguments always produce
    the identical trace.

    Args:
        num_requests: Trace length, in requests.
        seed: The RNG seed (also recorded in the trace metadata).
        block_universe: Optional block texts to sample from; synthesized
            with :class:`repro.data.synthetic.BlockGenerator` (seeded from
            ``seed``) when omitted.
        num_keys: Size of the sampled block universe.
        zipf_alpha: Skew exponent (larger = hotter head).
        mean_rate_rps: Average arrival rate over the whole trace.
        burstiness: Burst-phase rate multiplier (>= 1).
        burst_fraction: Fraction of requests arriving in burst phases.
        blocks_per_request: Blocks per request.
        priority: Queue priority stamped on every request.
        deadline_ms: Queue deadline stamped on every request, if any.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if num_keys < 1:
        raise ValueError("num_keys must be >= 1")
    if zipf_alpha < 0:
        raise ValueError("zipf_alpha must be >= 0")
    if mean_rate_rps <= 0:
        raise ValueError("mean_rate_rps must be positive")
    if burstiness < 1:
        raise ValueError("burstiness must be >= 1")
    if not 0 <= burst_fraction <= 1:
        raise ValueError("burst_fraction must be in [0, 1]")
    if blocks_per_request < 1:
        raise ValueError("blocks_per_request must be >= 1")
    rng = np.random.default_rng(seed)
    if block_universe is None:
        from repro.data.synthetic import BlockGenerator, GeneratorConfig

        generator = BlockGenerator(GeneratorConfig(seed=seed))
        block_universe = [
            block.canonical_text() for block in generator.generate_blocks(num_keys)
        ]
    else:
        block_universe = list(block_universe)
        if not block_universe:
            raise ValueError("block_universe must not be empty")
    universe = block_universe[:num_keys]
    ranks = np.arange(1, len(universe) + 1, dtype=np.float64)
    probabilities = ranks**-zipf_alpha
    probabilities /= probabilities.sum()

    # The calm/burst rates solve
    #   burst_fraction/burst_rate + (1-burst_fraction)/calm_rate = 1/mean
    # per-request in expectation, keeping the *average* rate at the asked
    # mean whatever the burst shape.
    mean_gap = 1.0 / mean_rate_rps
    burst_rate = mean_rate_rps * burstiness
    calm_share = 1.0 - burst_fraction
    calm_gap = (
        (mean_gap - burst_fraction / burst_rate) / calm_share
        if calm_share > 0
        else mean_gap
    )
    calm_gap = max(calm_gap, 0.0)

    offsets: List[float] = []
    clock = 0.0
    for index in range(num_requests):
        in_burst = rng.random() < burst_fraction
        scale = 1.0 / burst_rate if in_burst else calm_gap
        if index > 0:
            clock += float(rng.exponential(scale)) if scale > 0 else 0.0
        offsets.append(clock)

    key_indices = rng.choice(
        len(universe), size=(num_requests, blocks_per_request), p=probabilities
    )
    requests = tuple(
        TraceRequest(
            offset_s=offsets[index],
            block_texts=tuple(universe[key] for key in key_indices[index]),
            priority=priority,
            deadline_ms=deadline_ms,
        )
        for index in range(num_requests)
    )
    return Trace(
        requests=requests,
        metadata={
            "source": "synthesized",
            "seed": seed,
            "num_keys": len(universe),
            "zipf_alpha": zipf_alpha,
            "mean_rate_rps": mean_rate_rps,
            "burstiness": burstiness,
            "burst_fraction": burst_fraction,
            "blocks_per_request": blocks_per_request,
        },
    )


@dataclass(frozen=True)
class SloVerdict:
    """Outcome of checking one replay against an :class:`SloPolicy`."""

    met: bool
    violations: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {"met": self.met, "violations": list(self.violations)}


@dataclass(frozen=True)
class SloPolicy:
    """Latency/error budgets judged against a :class:`ReplayReport`.

    Any budget left ``None`` is not checked.  NaN realized values (an
    empty measurement window) fail their check: "we measured nothing"
    must never read as "we met the SLO".

    Attributes:
        p50_ms / p99_ms / p999_ms: Percentile latency budgets.
        budget_ms: Per-request latency budget for the violation *rate*
            check: the fraction of completed requests over ``budget_ms``
            must stay at or below ``max_violation_rate``.
        max_violation_rate: See ``budget_ms``.
        max_error_rate: Ceiling on ``(errors + rejected) / offered``.
    """

    p50_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    p999_ms: Optional[float] = None
    budget_ms: Optional[float] = None
    max_violation_rate: float = 0.0
    max_error_rate: float = 0.0

    def check(self, report: "ReplayReport") -> SloVerdict:
        violations: List[str] = []

        def over(realized: float, budget: Optional[float], label: str) -> None:
            if budget is None:
                return
            # NaN <= budget is False, so an unmeasured percentile lands
            # here and fails — by design.
            if not realized <= budget:
                violations.append(f"{label} {realized:.3f}ms > budget {budget:.3f}ms")

        over(report.p50_ms, self.p50_ms, "p50")
        over(report.p99_ms, self.p99_ms, "p99")
        over(report.p999_ms, self.p999_ms, "p99.9")
        if self.budget_ms is not None:
            rate = report.violation_rate(self.budget_ms)
            if not rate <= self.max_violation_rate:
                violations.append(
                    f"violation rate {rate:.4f} > {self.max_violation_rate:.4f} "
                    f"(budget {self.budget_ms:.3f}ms)"
                )
        offered = report.num_requests
        if offered > 0:
            error_rate = (report.errors + report.rejected) / offered
            if not error_rate <= self.max_error_rate:
                violations.append(
                    f"error rate {error_rate:.4f} > {self.max_error_rate:.4f}"
                )
        return SloVerdict(met=not violations, violations=tuple(violations))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "budget_ms": self.budget_ms,
            "max_violation_rate": self.max_violation_rate,
            "max_error_rate": self.max_error_rate,
        }


@dataclass(frozen=True)
class ReplayReport:
    """What one replay run measured.

    All latency figures are per-request submit -> completion wall times in
    milliseconds; percentiles are NaN when no request completed.  Jitter
    is the standard deviation of the completed latencies.  Scheduling lag
    is how late the replayer itself fired each submission relative to the
    trace timeline — a sanity signal that the measured tail belongs to
    the service, not to the load generator.
    """

    num_requests: int
    completed: int
    errors: int
    rejected: int
    duration_s: float
    offered_rps: float
    speedup: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    mean_ms: float
    max_ms: float
    jitter_ms: float
    schedule_lag_p99_ms: float
    hedges_issued: int = 0
    hedges_won: int = 0
    latencies_ms: Tuple[float, ...] = ()
    slo: Optional[SloVerdict] = None

    def violation_rate(self, budget_ms: float) -> float:
        """Fraction of completed requests slower than ``budget_ms``.

        NaN when nothing completed (no data is not zero violations).
        """
        if not self.latencies_ms:
            return float("nan")
        over = sum(1 for latency in self.latencies_ms if latency > budget_ms)
        return over / len(self.latencies_ms)

    @property
    def lost(self) -> int:
        """Requests that vanished: neither completed, errored nor rejected.

        The zero-lost invariant of the chaos gate — every submitted
        request must resolve *somehow*, even under injected crashes.
        """
        return self.num_requests - self.completed - self.errors - self.rejected

    def availability(self, budget_ms: float) -> float:
        """Fraction of offered requests answered within ``budget_ms``.

        Unlike :meth:`violation_rate`, the denominator is *every* request
        the trace offered: an error, a rejection or a lost request counts
        against availability exactly like a blown deadline does.  NaN when
        the trace was empty.
        """
        if self.num_requests <= 0:
            return float("nan")
        within = sum(1 for latency in self.latencies_ms if latency <= budget_ms)
        return within / self.num_requests

    def to_dict(self, include_latencies: bool = False) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "num_requests": self.num_requests,
            "completed": self.completed,
            "errors": self.errors,
            "rejected": self.rejected,
            "lost": self.lost,
            "duration_s": self.duration_s,
            "offered_rps": self.offered_rps,
            "speedup": self.speedup,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "jitter_ms": self.jitter_ms,
            "schedule_lag_p99_ms": self.schedule_lag_p99_ms,
            "hedges_issued": self.hedges_issued,
            "hedges_won": self.hedges_won,
        }
        if include_latencies:
            out["latencies_ms"] = list(self.latencies_ms)
        if self.slo is not None:
            out["slo"] = self.slo.to_dict()
        return out


class TraceReplayer:
    """Replays a :class:`Trace` against an async prediction service.

    The replayer sleeps to each request's (optionally time-scaled) arrival
    offset, submits it, and captures the completion time from the future's
    done callback — so latency is measured at the moment the response
    materialized, not whenever a collection loop got around to it.

    Args:
        service: An :class:`~repro.serve.async_service.AsyncPredictionService`
            (or anything with its ``submit(request, priority=...,
            deadline_ms=...)`` -> future signature; ``snapshot()`` is used
            for hedge counters when present).
        speedup: Timeline compression (see :meth:`Trace.scaled`); applied
            at replay time, the trace itself is not modified.
        slo: Optional policy checked into the report's ``slo`` field.
        result_timeout_s: Per-request ceiling on waiting for stragglers
            after the last submission; a request still unresolved counts
            as an error.
    """

    def __init__(
        self,
        service: Any,
        speedup: float = 1.0,
        slo: Optional[SloPolicy] = None,
        result_timeout_s: float = 60.0,
    ) -> None:
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        if result_timeout_s <= 0:
            raise ValueError("result_timeout_s must be positive")
        self.service = service
        self.speedup = float(speedup)
        self.slo = slo
        self.result_timeout_s = float(result_timeout_s)

    def _hedge_counters(self) -> Tuple[int, int]:
        snapshot: Optional[Callable[[], Any]] = getattr(
            self.service, "snapshot", None
        )
        if snapshot is None:
            return 0, 0
        view = snapshot()
        try:
            return int(view["hedges_issued"]), int(view["hedges_won"])
        except (KeyError, TypeError):
            return 0, 0

    def run(self, trace: Trace) -> ReplayReport:
        """Replays ``trace`` once and reports the realized latencies."""
        issued_before, won_before = self._hedge_counters()
        completions: List[Tuple[int, float]] = []
        completion_lock = threading.Lock()

        def on_done(index: int, future: Any) -> None:
            done_at = time.monotonic()
            with completion_lock:
                completions.append((index, done_at))

        start = time.monotonic()
        submitted_at: Dict[int, float] = {}
        futures: Dict[int, Any] = {}
        lags: List[float] = []
        rejected = 0
        for index, request in enumerate(trace.requests):
            target = start + request.offset_s / self.speedup
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            now = time.monotonic()
            lags.append(max(0.0, now - target))
            try:
                future = self.service.submit(
                    PredictionRequest.of(list(request.block_texts)),
                    priority=request.priority,
                    deadline_ms=request.deadline_ms,
                )
            except ServeError:
                rejected += 1
                continue
            submitted_at[index] = now
            futures[index] = future
            # functools.partial-free closure: bind index explicitly.
            future.add_done_callback(
                lambda fut, bound_index=index: on_done(bound_index, fut)
            )

        errors = 0
        for index, future in futures.items():
            try:
                future.result(timeout=self.result_timeout_s)
            except Exception:  # noqa: BLE001 - every failure mode is an error here
                errors += 1
        duration_s = time.monotonic() - start

        with completion_lock:
            done_at_by_index = dict(completions)
        latencies_ms = tuple(
            sorted(
                (done_at_by_index[index] - submitted_at[index]) * 1e3
                for index, future in futures.items()
                if index in done_at_by_index
                and not future.cancelled()
                and future.exception() is None
            )
        )
        issued_after, won_after = self._hedge_counters()
        values = np.asarray(latencies_ms, dtype=np.float64)
        report = ReplayReport(
            num_requests=trace.num_requests,
            completed=len(latencies_ms),
            errors=errors,
            rejected=rejected,
            duration_s=duration_s,
            offered_rps=(
                trace.num_requests / duration_s if duration_s > 0 else float("nan")
            ),
            speedup=self.speedup,
            p50_ms=latency_percentile(latencies_ms, 0.50),
            p99_ms=latency_percentile(latencies_ms, 0.99),
            p999_ms=latency_percentile(latencies_ms, 0.999),
            mean_ms=float(values.mean()) if values.size else float("nan"),
            max_ms=float(values.max()) if values.size else float("nan"),
            jitter_ms=float(values.std()) if values.size else float("nan"),
            schedule_lag_p99_ms=latency_percentile(lags, 0.99) * 1e3,
            hedges_issued=issued_after - issued_before,
            hedges_won=won_after - won_before,
            latencies_ms=latencies_ms,
        )
        if self.slo is not None:
            report = dataclass_replace(report, slo=self.slo.check(report))
        return report
