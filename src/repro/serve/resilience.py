"""Self-healing primitives: retries, circuit breaking, respawn backoff.

This module is the sanctioned home of every retry/backoff decision in
``repro.serve`` (analyzer rule RT001 flags ad-hoc ``time.sleep`` retry
loops elsewhere in the package):

- :class:`RetryPolicy` — frozen description of capped exponential backoff
  with *seeded* jitter: the delay for attempt ``n`` of request ``token`` is
  a pure function of ``(seed, token, n)``, so a replayed chaos run waits
  the same amount at every step.  :func:`run_with_retries` is the one
  sanctioned retry loop; :class:`RetryBudget` bounds how many retries the
  whole service may issue per sliding window so a dying backend cannot be
  hammered into the ground.
- :class:`CircuitBreaker` — per-worker closed/open/half-open state machine.
  Failures (crashes, job timeouts, corrupted replies) trip a worker open;
  after ``reset_timeout_s`` the breaker admits exactly ``probe_quota``
  probes (half-open); probe successes close it again.  The breaker never
  sleeps — callers consult :meth:`CircuitBreaker.allow` at routing time.
- :class:`BreakerRing` — a :class:`~repro.serve.ring.HashRing` adapter that
  routes around tripped workers: the owner of a key is the first clockwise
  replica whose breaker admits traffic, falling back to the true owner when
  everything is open (so the pool still heals via respawn).
- :class:`RespawnGovernor` — bounds worker respawns per sliding window with
  exponential backoff, so a crash storm cannot spin the pool through an
  endless fork/build/crash cycle.
- :class:`StalePredictionCache` — bounded LRU of last-known-good
  predictions keyed by block text, backing graceful degradation: when the
  pool is unhealthy and the deadline allows, the async front end serves
  stale values flagged ``degraded=True`` instead of failing.

Timing uses ``time.monotonic`` exclusively (never the wall clock), and the
clock is injectable everywhere so the state machines are unit-testable
without sleeping.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.utils.cache import LRUCache

__all__ = [
    "RetryPolicy",
    "RetryBudget",
    "run_with_retries",
    "BreakerPolicy",
    "CircuitBreaker",
    "BreakerRing",
    "RespawnPolicy",
    "RespawnGovernor",
    "StalePredictionCache",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


# ---------------------------------------------------------------------------
# Retries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded, deterministic jitter.

    Attributes:
        max_attempts: Total attempts including the first (1 disables
            retries).
        base_delay_ms: Delay before the first retry.
        max_delay_ms: Cap on any single delay.
        multiplier: Exponential growth factor between retries.
        jitter: Fraction of the delay randomized *downward* (0.5 means the
            actual delay lands in ``[0.5, 1.0] * capped``).  The jitter is
            derived from ``crc32(f"{seed}:{token}:{attempt}")``, not an RNG,
            so identical runs wait identically.
        seed: Jitter seed.
        budget: Retries allowed per ``budget_window_s`` sliding window
            across the whole service (0 disables the budget).
        budget_window_s: Width of the budget window.
    """

    max_attempts: int = 3
    base_delay_ms: float = 2.0
    max_delay_ms: float = 100.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    budget: int = 64
    budget_window_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_ms < 0.0 or self.max_delay_ms < 0.0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.budget < 0 or self.budget_window_s <= 0.0:
            raise ValueError("budget must be >= 0 and budget_window_s positive")

    def delay_s(self, attempt: int, token: str = "") -> float:
        """Deterministic delay (seconds) before retry number ``attempt``."""
        capped = min(self.base_delay_ms * self.multiplier**attempt, self.max_delay_ms)
        unit = zlib.crc32(f"{self.seed}:{token}:{attempt}".encode("utf-8")) / 2**32
        return capped * (1.0 - self.jitter * unit) / 1000.0

    def make_budget(self, clock: Callable[[], float] = time.monotonic) -> Optional["RetryBudget"]:
        """Builds the runtime budget, or None when the budget is disabled."""
        if self.budget <= 0:
            return None
        return RetryBudget(self.budget, self.budget_window_s, clock=clock)


class RetryBudget:
    """Sliding-window cap on service-wide retries (thread-safe)."""

    def __init__(
        self,
        max_retries: int,
        window_s: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_retries = int(max_retries)
        self.window_s = float(window_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._spent: Deque[float] = deque()  # guarded-by: _lock
        self.denied = 0  # guarded-by: _lock

    def try_acquire(self) -> bool:
        """Consumes one retry token; False when the window is exhausted."""
        now = self._clock()
        with self._lock:
            while self._spent and now - self._spent[0] > self.window_s:
                self._spent.popleft()
            if len(self._spent) >= self.max_retries:
                self.denied += 1
                return False
            self._spent.append(now)
            return True


def run_with_retries(
    fn: Callable[[], object],
    policy: RetryPolicy,
    budget: Optional[RetryBudget] = None,
    retryable: Optional[Callable[[BaseException], bool]] = None,
    on_retry: Optional[Callable[[int, float, BaseException], None]] = None,
    token: str = "",
    sleep: Callable[[float], None] = time.sleep,
) -> object:
    """The sanctioned retry loop: runs ``fn`` under ``policy``.

    Retries only errors ``retryable`` admits (everything, when None), stops
    when attempts or the budget run out, and re-raises the last error.
    ``on_retry(attempt, delay_s, error)`` fires before each backoff sleep.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except Exception as error:
            if retryable is not None and not retryable(error):
                raise
            if attempt + 1 >= policy.max_attempts:
                raise
            if budget is not None and not budget.try_acquire():
                raise
            delay = policy.delay_s(attempt, token)
            if on_retry is not None:
                on_retry(attempt, delay, error)
            sleep(delay)
            attempt += 1


# ---------------------------------------------------------------------------
# Circuit breaking
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning knobs of the per-worker circuit breaker.

    Attributes:
        failure_threshold: Consecutive failures that trip a closed breaker.
        reset_timeout_s: Time an open breaker waits before going half-open.
        probe_quota: Requests admitted while half-open with no outcome
            recorded yet (exactly this many ``allow`` calls return True).
        success_threshold: Probe successes required to close a half-open
            breaker.
    """

    failure_threshold: int = 3
    reset_timeout_s: float = 1.0
    probe_quota: int = 1
    success_threshold: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.reset_timeout_s <= 0.0:
            raise ValueError("reset_timeout_s must be positive")
        if self.probe_quota < 1:
            raise ValueError("probe_quota must be at least 1")
        if self.success_threshold < 1:
            raise ValueError("success_threshold must be at least 1")


class _BreakerEntry:
    """Mutable per-worker breaker state (all access under the owner's lock)."""

    __slots__ = ("state", "failures", "successes", "probes_in_flight", "opened_at")

    def __init__(self) -> None:
        self.state = BREAKER_CLOSED
        self.failures = 0
        self.successes = 0
        self.probes_in_flight = 0
        self.opened_at = 0.0


class CircuitBreaker:
    """Per-worker closed/open/half-open breaker (thread-safe).

    Legal transitions, and nothing else:

    - ``closed -> open`` after ``failure_threshold`` consecutive failures
      (counted as a *trip*);
    - ``open -> half_open`` once ``reset_timeout_s`` has elapsed (evaluated
      lazily whenever the state is consulted);
    - ``half_open -> open`` on a probe failure (another trip);
    - ``half_open -> closed`` after ``success_threshold`` probe successes
      (counted as a *recovery*).

    Outcomes that arrive for states they do not apply to (a late success
    while open, say) are ignored rather than corrupting the machine.
    """

    def __init__(
        self,
        policy: BreakerPolicy = BreakerPolicy(),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: Dict[int, _BreakerEntry] = {}  # guarded-by: _lock
        self.trips = 0  # guarded-by: _lock
        self.probes = 0  # guarded-by: _lock
        self.recoveries = 0  # guarded-by: _lock

    def _entry_locked(self, worker_id: int) -> _BreakerEntry:
        entry = self._entries.get(worker_id)
        if entry is None:
            entry = _BreakerEntry()
            self._entries[worker_id] = entry
        return entry

    def _refresh_locked(self, entry: _BreakerEntry) -> None:
        if entry.state == BREAKER_OPEN:
            if self._clock() - entry.opened_at >= self.policy.reset_timeout_s:
                entry.state = BREAKER_HALF_OPEN
                entry.successes = 0
                entry.probes_in_flight = 0

    def _trip_locked(self, entry: _BreakerEntry) -> None:
        entry.state = BREAKER_OPEN
        entry.opened_at = self._clock()
        entry.failures = 0
        entry.successes = 0
        entry.probes_in_flight = 0
        self.trips += 1

    def state(self, worker_id: int) -> str:
        """Current state of the worker's breaker (refreshing open→half-open)."""
        with self._lock:
            entry = self._entry_locked(worker_id)
            self._refresh_locked(entry)
            return entry.state

    def allow(self, worker_id: int) -> bool:
        """True when the worker may receive traffic right now.

        Half-open admits exactly ``probe_quota`` calls between recorded
        outcomes; each admission counts as a probe.
        """
        with self._lock:
            entry = self._entry_locked(worker_id)
            self._refresh_locked(entry)
            if entry.state == BREAKER_CLOSED:
                return True
            if entry.state == BREAKER_OPEN:
                return False
            if entry.probes_in_flight >= self.policy.probe_quota:
                return False
            entry.probes_in_flight += 1
            self.probes += 1
            return True

    def record_success(self, worker_id: int) -> None:
        """Feeds a successful outcome into the worker's breaker."""
        with self._lock:
            entry = self._entry_locked(worker_id)
            self._refresh_locked(entry)
            if entry.state == BREAKER_CLOSED:
                entry.failures = 0
            elif entry.state == BREAKER_HALF_OPEN:
                entry.probes_in_flight = max(0, entry.probes_in_flight - 1)
                entry.successes += 1
                if entry.successes >= self.policy.success_threshold:
                    entry.state = BREAKER_CLOSED
                    entry.failures = 0
                    entry.successes = 0
                    entry.probes_in_flight = 0
                    self.recoveries += 1

    def record_failure(self, worker_id: int) -> None:
        """Feeds a failed outcome (crash, timeout, corrupt reply) in."""
        with self._lock:
            entry = self._entry_locked(worker_id)
            self._refresh_locked(entry)
            if entry.state == BREAKER_CLOSED:
                entry.failures += 1
                if entry.failures >= self.policy.failure_threshold:
                    self._trip_locked(entry)
            elif entry.state == BREAKER_HALF_OPEN:
                self._trip_locked(entry)

    def forget(self, worker_id: int) -> None:
        """Drops state for a retired worker id."""
        with self._lock:
            self._entries.pop(worker_id, None)

    def states(self) -> Dict[int, str]:
        """Snapshot of every tracked worker's state."""
        with self._lock:
            for entry in self._entries.values():
                self._refresh_locked(entry)
            return {worker_id: entry.state for worker_id, entry in self._entries.items()}

    def open_count(self) -> int:
        """Number of workers whose breaker is currently open."""
        return sum(1 for state in self.states().values() if state == BREAKER_OPEN)

    def counters(self) -> Dict[str, int]:
        """Trip / probe / recovery tallies."""
        with self._lock:
            return {"trips": self.trips, "probes": self.probes, "recoveries": self.recoveries}


class BreakerRing:
    """Hash-ring adapter that routes around workers with open breakers.

    Wraps a :class:`~repro.serve.ring.HashRing` (or anything with its
    ``owner`` / ``owners`` / ``__len__`` surface): the owner of a key
    becomes the first clockwise replica the breaker admits.  When every
    replica is refused the true owner is returned — traffic must land
    somewhere, and the pool's respawn path heals it.
    """

    def __init__(self, ring, breaker: CircuitBreaker) -> None:
        self._ring = ring
        self._breaker = breaker

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def nodes(self):
        return self._ring.nodes

    def owner(self, key: int) -> int:
        candidates = self._ring.owners(key, count=len(self._ring))
        for node in candidates:
            if self._breaker.allow(node):
                return node
        return candidates[0]

    def owners(self, key: int, count: int) -> List[int]:
        candidates = self._ring.owners(key, count=len(self._ring))
        allowed = [node for node in candidates if self._breaker.allow(node)]
        if not allowed:
            return self._ring.owners(key, count=count)
        return allowed[: max(1, count)]

    def shares(self):
        return self._ring.shares()


# ---------------------------------------------------------------------------
# Respawn governance
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RespawnPolicy:
    """Bounds on worker respawns per sliding window.

    Attributes:
        max_respawns: Respawns tolerated per worker per ``window_s`` before
            backoff engages.
        window_s: Width of the respawn-counting window.
        backoff_base_s: First backoff duration once the window overflows.
        backoff_max_s: Cap on the exponential backoff.
        multiplier: Backoff growth per consecutive overflow.
    """

    max_respawns: int = 3
    window_s: float = 5.0
    backoff_base_s: float = 0.5
    backoff_max_s: float = 10.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_respawns < 1:
            raise ValueError("max_respawns must be at least 1")
        if self.window_s <= 0.0 or self.backoff_base_s <= 0.0 or self.backoff_max_s <= 0.0:
            raise ValueError("window and backoff durations must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1.0")


class _GovernorEntry:
    """Mutable per-worker respawn bookkeeping (under the owner's lock)."""

    __slots__ = ("respawns", "backoff_until", "consecutive_overflows")

    def __init__(self) -> None:
        self.respawns: Deque[float] = deque()
        self.backoff_until = 0.0
        self.consecutive_overflows = 0


class RespawnGovernor:
    """Per-worker respawn rate limiter with exponential backoff."""

    def __init__(
        self,
        policy: RespawnPolicy = RespawnPolicy(),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: Dict[int, _GovernorEntry] = {}  # guarded-by: _lock
        self.suppressed = 0  # guarded-by: _lock

    def _entry_locked(self, worker_id: int) -> _GovernorEntry:
        entry = self._entries.get(worker_id)
        if entry is None:
            entry = _GovernorEntry()
            self._entries[worker_id] = entry
        return entry

    def _prune_locked(self, entry: _GovernorEntry, now: float) -> None:
        while entry.respawns and now - entry.respawns[0] > self.policy.window_s:
            entry.respawns.popleft()

    def may_respawn(self, worker_id: int) -> bool:
        """True when the worker may be respawned right now.

        A False answer means the caller should leave the worker dead until
        the backoff expires; each refusal is counted in ``suppressed``.
        """
        now = self._clock()
        with self._lock:
            entry = self._entry_locked(worker_id)
            if now < entry.backoff_until:
                self.suppressed += 1
                return False
            self._prune_locked(entry, now)
            if not entry.respawns:
                entry.consecutive_overflows = 0
            if len(entry.respawns) >= self.policy.max_respawns:
                duration = min(
                    self.policy.backoff_base_s
                    * self.policy.multiplier**entry.consecutive_overflows,
                    self.policy.backoff_max_s,
                )
                entry.backoff_until = now + duration
                entry.consecutive_overflows += 1
                self.suppressed += 1
                return False
            return True

    def record_respawn(self, worker_id: int) -> None:
        """Counts one actual respawn of the worker."""
        now = self._clock()
        with self._lock:
            entry = self._entry_locked(worker_id)
            self._prune_locked(entry, now)
            entry.respawns.append(now)

    def in_backoff(self, worker_id: int) -> bool:
        """True while the worker's respawn backoff window is active."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(worker_id)
            return entry is not None and now < entry.backoff_until

    def backoff_workers(self) -> List[int]:
        """Worker ids currently held in backoff."""
        now = self._clock()
        with self._lock:
            return [
                worker_id
                for worker_id, entry in self._entries.items()
                if now < entry.backoff_until
            ]

    def forget(self, worker_id: int) -> None:
        """Drops state for a retired worker id."""
        with self._lock:
            self._entries.pop(worker_id, None)


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------


class StalePredictionCache:
    """Bounded LRU of last-known-good predictions, keyed by block text.

    Successful flushes record per-block throughputs; when the backing
    service is failing, the async front end answers from here with
    ``degraded=True`` instead of erroring — provided *every* block of the
    request (and every requested task) has a stale value.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        self._lock = threading.Lock()
        self._cache: LRUCache[str, Dict[str, float]] = LRUCache(maxsize)  # guarded-by: _lock
        self._dtype = "float64"  # dtype of the last recorded predictions  # guarded-by: _lock
        self.served = 0  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def record(self, texts: Sequence[str], predictions: Dict[str, np.ndarray]) -> None:
        """Stores per-text values from a successful prediction payload."""
        if not predictions:
            return
        with self._lock:
            for task, values in predictions.items():
                self._dtype = str(np.asarray(values).dtype)
                break
            for index, text in enumerate(texts):
                entry = dict(self._cache.get(text) or {})
                for task, values in predictions.items():
                    entry[task] = float(np.asarray(values)[index])
                self._cache.put(text, entry)

    def lookup(
        self, texts: Sequence[str], tasks: Optional[Sequence[str]] = None
    ) -> Optional[Dict[str, np.ndarray]]:
        """Rebuilds a full predictions payload from stale entries, or None.

        Returns None unless every text has an entry covering every
        requested task (partial answers would silently change response
        shape).  ``tasks=None`` uses the tasks of the first entry.
        """
        with self._lock:
            entries = []
            for text in texts:
                entry = self._cache.get(text)
                if entry is None:
                    return None
                entries.append(entry)
            if not entries:
                return None
            wanted = tuple(tasks) if tasks is not None else tuple(sorted(entries[0]))
            if any(task not in entry for entry in entries for task in wanted):
                return None
            payload = {
                task: np.array([entry[task] for entry in entries], dtype=self._dtype)
                for task in wanted
            }
            self.served += 1
            return payload
