"""Consistent hash ring for elastic worker sharding.

The original hash sharding routed every block to worker
``shard_key(text) % num_workers``.  That is perfectly stable while the
worker count is fixed — and maximally unstable the moment it changes:
going from N to N+1 workers remaps roughly ``N/(N+1)`` of all keys, so a
single resize cold-starts almost every worker's encode and prediction
caches at once.

A consistent hash ring fixes the resize cost.  Every worker owns a set of
*virtual nodes* — pseudo-random points on a 32-bit ring derived from the
worker id — and a key belongs to the worker owning the first point at or
after the key's hash (wrapping around).  Adding worker N only claims the
arcs immediately before worker N's points: in expectation ``1/(N+1)`` of
the key space moves, all of it *to* the new worker, and every key that
does not land on the new worker keeps its previous owner exactly.
Removing a worker is the mirror image — its arcs fall back to the ring
neighbours, nobody else moves.  That is what lets the elastic pool scale
with queue depth while the surviving workers' caches stay warm.

Vnode points use CRC32 like :func:`repro.serve.batching.shard_key` — a
salted ``hash()`` would scatter the ring differently in every process,
breaking parent/worker agreement after respawns.

Hot-key replication
-------------------

Consistent hashing gives every key exactly one owner — which is exactly
wrong for a Zipf-skewed key stream, where the head key alone can carry a
double-digit share of the traffic and serializes on one worker while the
rest of the pool idles.  :class:`HotKeyTracker` surfaces the Zipf head
(bounded space-saving counters with periodic decay), and
:class:`HotKeyRouter` routes those keys *read-any* across their first
``replicas`` distinct ring successors (:meth:`HashRing.owners`) instead
of pinning them to one.  Throughput predictions are deterministic per
block text, so any replica's answer is equally correct; each replica's
prediction cache warms the key independently and the per-key round-robin
spreads the load.  Cold keys keep the pure single-owner routing (perfect
cache affinity), and replica sets move under resizes exactly like single
owners do: ~1/N of the key space, no more.
"""

from __future__ import annotations

import bisect
import heapq
import zlib
from typing import Dict, FrozenSet, List, Sequence, Tuple

__all__ = [
    "HashRing",
    "HotKeyTracker",
    "HotKeyRouter",
    "DEFAULT_VNODES",
    "RING_SPACE",
]

#: Virtual nodes per worker.  More vnodes mean better balance (relative
#: load deviation shrinks roughly with 1/sqrt(vnodes)) at a small rebuild
#: and lookup cost.  1024 keeps even a two-worker ring within ~1% of an
#: even split — that matters: at 128 vnodes a 44/56 split made the
#: busier worker the flush-cadence bottleneck and measurably inflated
#: p99 flush waits in the sustained serving benchmark.  Rebuilds stay
#: trivial (resizes sort workers x vnodes points, a few ms at most).
DEFAULT_VNODES = 1024

#: Size of the ring's key space (CRC32 is 32-bit).
RING_SPACE = 1 << 32


def _vnode_point(node: int, replica: int) -> int:
    """The ring position of one virtual node (stable across processes)."""
    return zlib.crc32(f"worker-{node}#vnode-{replica}".encode("utf-8"))


class HashRing:
    """A consistent hash ring over integer worker ids.

    Args:
        num_vnodes: Virtual nodes per worker.
        nodes: Optional initial worker ids.
    """

    def __init__(
        self, num_vnodes: int = DEFAULT_VNODES, nodes: Sequence[int] = ()
    ) -> None:
        if num_vnodes < 1:
            raise ValueError("num_vnodes must be positive")
        self.num_vnodes = int(num_vnodes)
        # Sorted, parallel: _points[i] is the ring position of the vnode
        # owned by _owners[i].  Ties (vanishingly rare CRC collisions) are
        # broken deterministically by owner id via the (point, node) sort.
        self._points: List[int] = []
        self._owners: List[int] = []
        self._nodes: set = set()
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------ #
    # Membership.
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> Tuple[int, ...]:
        """The worker ids on the ring, sorted."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._nodes

    def add_node(self, node: int) -> None:
        """Places ``node``'s virtual nodes on the ring."""
        node = int(node)
        if node in self._nodes:
            raise ValueError(f"node {node} is already on the ring")
        self._nodes.add(node)
        self._rebuild()

    def remove_node(self, node: int) -> None:
        """Removes ``node``'s virtual nodes; its arcs fall to the neighbours."""
        node = int(node)
        if node not in self._nodes:
            raise ValueError(f"node {node} is not on the ring")
        self._nodes.remove(node)
        self._rebuild()

    def _rebuild(self) -> None:
        # Rebuilding from scratch keeps add/remove trivially correct; the
        # ring is tiny (workers x vnodes) and resizes are rare events
        # guarded by a cooldown, so O(n log n) here is irrelevant.
        pairs = sorted(
            (_vnode_point(node, replica), node)
            for node in self._nodes
            for replica in range(self.num_vnodes)
        )
        self._points = [point for point, _ in pairs]
        self._owners = [node for _, node in pairs]

    # ------------------------------------------------------------------ #
    # Lookup.
    # ------------------------------------------------------------------ #
    def owner(self, key: int) -> int:
        """The worker id owning ``key`` (any int; taken modulo the ring)."""
        if not self._points:
            raise LookupError("the ring has no nodes")
        index = bisect.bisect_left(self._points, int(key) % RING_SPACE)
        if index == len(self._points):
            index = 0  # wrap: keys past the last point belong to the first
        return self._owners[index]

    def owners(self, key: int, count: int = 1) -> List[int]:
        """The first ``count`` *distinct* workers clockwise from ``key``.

        ``owners(key, 1) == [owner(key)]`` by construction, and growing
        ``count`` only ever appends — the replica set of a key is a prefix
        of its clockwise successor sequence, which is what makes
        replication inherit consistent hashing's movement bound: adding a
        node can displace at most one member of any key's replica set
        (the new node itself slots in), removing a node replaces only that
        node with the next successor.

        ``count`` is clamped to the number of nodes on the ring (a
        two-worker pool cannot hold three replicas).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if not self._points:
            raise LookupError("the ring has no nodes")
        count = min(count, len(self._nodes))
        index = bisect.bisect_left(self._points, int(key) % RING_SPACE)
        total = len(self._points)
        owners: List[int] = []
        seen: set = set()
        # Walk clockwise until `count` distinct owners surface; bounded by
        # one full lap (every node appears within one lap by definition).
        for step in range(total):
            position = (index + step) % total
            node = self._owners[position]
            if node not in seen:
                seen.add(node)
                owners.append(node)
                if len(owners) == count:
                    break
        return owners

    def shares(self) -> Dict[int, float]:
        """Fraction of the key space owned per worker (sums to 1.0)."""
        if not self._points:
            return {}
        shares: Dict[int, float] = {node: 0.0 for node in self._nodes}
        previous = self._points[-1] - RING_SPACE  # wrap-around arc
        for point, node in zip(self._points, self._owners):
            shares[node] += (point - previous) / RING_SPACE
            previous = point
        return shares


class HotKeyTracker:
    """Bounded frequency tracker surfacing the Zipf head of a key stream.

    A space-saving-style counter: at most ``capacity`` keys are tracked;
    when a new key arrives at capacity it evicts the current minimum and
    inherits its count (the classic over-estimate bound, fine here — we
    only need the *head* to surface, not exact counts).  Every
    ``decay_interval`` observations all counts halve and zeros drop, so a
    formerly-hot key cools off instead of staying hot forever.

    The hot set (the top ``hot_count`` keys with at least ``min_hits``
    observations) is recomputed lazily once at least ``refresh_interval``
    observations have arrived since the previous recomputation — a
    watermark, not a modulo, so a refresh consumed early (the very first
    route asks for the hot set) cannot push the next one a full interval
    out.  Per-observation cost stays O(1) dict work.

    Not thread-safe by itself; the service observes keys under its own
    submission lock.
    """

    def __init__(
        self,
        capacity: int = 1024,
        hot_count: int = 8,
        min_hits: int = 16,
        decay_interval: int = 65536,
        refresh_interval: int = 64,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if hot_count < 1:
            raise ValueError("hot_count must be >= 1")
        if min_hits < 1:
            raise ValueError("min_hits must be >= 1")
        if decay_interval < 1 or refresh_interval < 1:
            raise ValueError("intervals must be >= 1")
        self.capacity = int(capacity)
        self.hot_count = int(hot_count)
        self.min_hits = int(min_hits)
        self.decay_interval = int(decay_interval)
        self.refresh_interval = int(refresh_interval)
        self._counts: Dict[int, int] = {}
        self._observed = 0
        self._hot: FrozenSet[int] = frozenset()
        self._refreshed_at = 0  # _observed value at the last hot-set refresh

    def observe(self, key: int) -> None:
        """Records one occurrence of ``key``."""
        counts = self._counts
        if key in counts:
            counts[key] += 1
        elif len(counts) < self.capacity:
            counts[key] = 1
        else:
            victim = min(counts, key=counts.__getitem__)
            inherited = counts.pop(victim)
            counts[key] = inherited + 1
        self._observed += 1
        if self._observed % self.decay_interval == 0:
            self._counts = {
                tracked: count // 2
                for tracked, count in counts.items()
                if count // 2 > 0
            }
            # Force a refresh on the next read: decayed keys may have
            # dropped below min_hits.
            self._refreshed_at = self._observed - self.refresh_interval

    def hot_keys(self) -> FrozenSet[int]:
        """The current hot set (lazily refreshed)."""
        if self._observed - self._refreshed_at >= self.refresh_interval:
            eligible = [
                (count, key)
                for key, count in self._counts.items()
                if count >= self.min_hits
            ]
            top = heapq.nlargest(self.hot_count, eligible)
            self._hot = frozenset(key for _, key in top)
            self._refreshed_at = self._observed
        return self._hot

    def __len__(self) -> int:
        return len(self._counts)


class HotKeyRouter:
    """Read-any routing of hot keys over their ring replica sets.

    Cold keys route exactly like the plain ring (``ring.owner``): one
    owner, perfect cache affinity.  Keys the tracker classifies hot route
    round-robin across their first ``replicas`` distinct ring successors,
    so the Zipf head's traffic spreads instead of serializing on one
    worker — each replica's prediction cache warms the key once and every
    route after that is a cache hit wherever it lands.

    The router reads the live ring on every route, so pool resizes need
    no notification: replica sets follow the ring's own movement bound.
    Not thread-safe by itself (used under the service's submission lock).
    """

    def __init__(
        self,
        ring: HashRing,
        replicas: int = 2,
        tracker: HotKeyTracker = None,
        hot_count: int = 8,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.ring = ring
        self.replicas = int(replicas)
        # `tracker or ...` would discard an *empty* tracker (its __len__ is
        # 0, hence falsy) — an explicit None check is required.
        if tracker is None:
            tracker = HotKeyTracker(hot_count=hot_count)
        self.tracker = tracker
        #: Per-hot-key round-robin cursor (pruned to the live hot set).
        self._cursors: Dict[int, int] = {}
        #: Blocks routed through a replica set (vs. the single owner).
        self.replicated_routes = 0
        self.total_routes = 0

    def route(self, key: int) -> int:
        """The worker ``key`` should go to right now (and counts the route)."""
        self.total_routes += 1
        if self.replicas > 1 and key in self.tracker.hot_keys():
            owners = self.ring.owners(key, self.replicas)
            if len(owners) > 1:
                cursor = self._cursors.get(key, 0)
                self._cursors[key] = cursor + 1
                self.replicated_routes += 1
                if len(self._cursors) > 4 * self.tracker.hot_count:
                    hot = self.tracker.hot_keys()
                    self._cursors = {
                        k: v for k, v in self._cursors.items() if k in hot
                    }
                return owners[cursor % len(owners)]
        return self.ring.owner(key)

    def route_text(self, text: str) -> int:
        """Observes and routes one block text (the coalescer's owner_of)."""
        key = zlib.crc32(text.encode("utf-8"))
        self.tracker.observe(key)
        return self.route(key)

    @property
    def hot_keys(self) -> FrozenSet[int]:
        """The tracker's current hot set."""
        return self.tracker.hot_keys()
