"""Consistent hash ring for elastic worker sharding.

The original hash sharding routed every block to worker
``shard_key(text) % num_workers``.  That is perfectly stable while the
worker count is fixed — and maximally unstable the moment it changes:
going from N to N+1 workers remaps roughly ``N/(N+1)`` of all keys, so a
single resize cold-starts almost every worker's encode and prediction
caches at once.

A consistent hash ring fixes the resize cost.  Every worker owns a set of
*virtual nodes* — pseudo-random points on a 32-bit ring derived from the
worker id — and a key belongs to the worker owning the first point at or
after the key's hash (wrapping around).  Adding worker N only claims the
arcs immediately before worker N's points: in expectation ``1/(N+1)`` of
the key space moves, all of it *to* the new worker, and every key that
does not land on the new worker keeps its previous owner exactly.
Removing a worker is the mirror image — its arcs fall back to the ring
neighbours, nobody else moves.  That is what lets the elastic pool scale
with queue depth while the surviving workers' caches stay warm.

Vnode points use CRC32 like :func:`repro.serve.batching.shard_key` — a
salted ``hash()`` would scatter the ring differently in every process,
breaking parent/worker agreement after respawns.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Dict, List, Sequence, Tuple

__all__ = ["HashRing", "DEFAULT_VNODES", "RING_SPACE"]

#: Virtual nodes per worker.  More vnodes mean better balance (relative
#: load deviation shrinks roughly with 1/sqrt(vnodes)) at a small rebuild
#: and lookup cost.  1024 keeps even a two-worker ring within ~1% of an
#: even split — that matters: at 128 vnodes a 44/56 split made the
#: busier worker the flush-cadence bottleneck and measurably inflated
#: p99 flush waits in the sustained serving benchmark.  Rebuilds stay
#: trivial (resizes sort workers x vnodes points, a few ms at most).
DEFAULT_VNODES = 1024

#: Size of the ring's key space (CRC32 is 32-bit).
RING_SPACE = 1 << 32


def _vnode_point(node: int, replica: int) -> int:
    """The ring position of one virtual node (stable across processes)."""
    return zlib.crc32(f"worker-{node}#vnode-{replica}".encode("utf-8"))


class HashRing:
    """A consistent hash ring over integer worker ids.

    Args:
        num_vnodes: Virtual nodes per worker.
        nodes: Optional initial worker ids.
    """

    def __init__(
        self, num_vnodes: int = DEFAULT_VNODES, nodes: Sequence[int] = ()
    ) -> None:
        if num_vnodes < 1:
            raise ValueError("num_vnodes must be positive")
        self.num_vnodes = int(num_vnodes)
        # Sorted, parallel: _points[i] is the ring position of the vnode
        # owned by _owners[i].  Ties (vanishingly rare CRC collisions) are
        # broken deterministically by owner id via the (point, node) sort.
        self._points: List[int] = []
        self._owners: List[int] = []
        self._nodes: set = set()
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------ #
    # Membership.
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> Tuple[int, ...]:
        """The worker ids on the ring, sorted."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._nodes

    def add_node(self, node: int) -> None:
        """Places ``node``'s virtual nodes on the ring."""
        node = int(node)
        if node in self._nodes:
            raise ValueError(f"node {node} is already on the ring")
        self._nodes.add(node)
        self._rebuild()

    def remove_node(self, node: int) -> None:
        """Removes ``node``'s virtual nodes; its arcs fall to the neighbours."""
        node = int(node)
        if node not in self._nodes:
            raise ValueError(f"node {node} is not on the ring")
        self._nodes.remove(node)
        self._rebuild()

    def _rebuild(self) -> None:
        # Rebuilding from scratch keeps add/remove trivially correct; the
        # ring is tiny (workers x vnodes) and resizes are rare events
        # guarded by a cooldown, so O(n log n) here is irrelevant.
        pairs = sorted(
            (_vnode_point(node, replica), node)
            for node in self._nodes
            for replica in range(self.num_vnodes)
        )
        self._points = [point for point, _ in pairs]
        self._owners = [node for _, node in pairs]

    # ------------------------------------------------------------------ #
    # Lookup.
    # ------------------------------------------------------------------ #
    def owner(self, key: int) -> int:
        """The worker id owning ``key`` (any int; taken modulo the ring)."""
        if not self._points:
            raise LookupError("the ring has no nodes")
        index = bisect.bisect_left(self._points, int(key) % RING_SPACE)
        if index == len(self._points):
            index = 0  # wrap: keys past the last point belong to the first
        return self._owners[index]

    def shares(self) -> Dict[int, float]:
        """Fraction of the key space owned per worker (sums to 1.0)."""
        if not self._points:
            return {}
        shares: Dict[int, float] = {node: 0.0 for node in self._nodes}
        previous = self._points[-1] - RING_SPACE  # wrap-around arc
        for point, node in zip(self._points, self._owners):
            shares[node] += (point - previous) / RING_SPACE
            previous = point
        return shares
