"""The batched prediction service.

:class:`PredictionService` is the serving front end of the reproduction:

* **Warm-start model loading** — the model is constructed once (optionally
  restoring a checkpoint saved by :func:`repro.nn.save_checkpoint`) and then
  kept warm, so request latency never includes construction cost.
* **Micro-batch coalescing** — heterogeneous requests submitted together are
  merged into size-bounded micro-batches
  (:func:`repro.serve.batching.coalesce_requests`), which keeps the numpy
  kernels dense regardless of how clients slice their traffic.
* **Worker sharding** — with ``num_workers > 0`` the work is sharded
  across a pool of addressable worker processes, each holding its own warm
  model replica.  With the default ``sharding="hash"`` every block is
  routed by a stable hash of its canonical text, so each worker's encode
  and prediction caches own a fixed partition of the key space;
  ``sharding="round_robin"`` deals micro-batches out cyclically instead
  (kept for comparison benchmarks).  Crashed workers are detected and
  respawned transparently.  With ``num_workers = 0`` everything runs
  in-process, which is the right choice for unit tests and for callers
  that already manage their own parallelism.

The service speaks canonical block text at the boundary, so it composes
with any transport (CLI, RPC, files) without pulling one in here.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.datasets import TARGET_MICROARCHITECTURES
from repro.isa.basic_block import BasicBlock
from repro.models.base import ThroughputModel
from repro.serve.batching import (
    coalesce_requests,
    coalesce_requests_by_ring,
    coalesce_requests_by_router,
)
from repro.serve.config import SHARDING_MODES, ServiceConfig
from repro.serve.resilience import BreakerRing, CircuitBreaker
from repro.serve.ring import HotKeyRouter
from repro.serve.stats import CacheStats, ModelStats, WorkerStats
from repro.serve.types import (
    PredictionRequest,
    PredictionResponse,
    ServiceClosedError,
)
from repro.serve.workers import (
    PARSE_CACHE_SIZE,
    PoolAutoscaler,
    ShardedWorkerPool,
    build_model,
    predict_texts,
)
from repro.utils.cache import LRUCache

# ServiceConfig moved to repro.serve.config; re-exported here so the
# historical ``from repro.serve.service import ServiceConfig`` keeps working.
__all__ = ["ServiceConfig", "ServiceStats", "PredictionService", "SHARDING_MODES"]


@dataclass
class ServiceStats:
    """Aggregate counters of one service instance."""

    requests: int = 0
    blocks: int = 0
    batches: int = 0
    seconds: float = 0.0
    #: Worker processes respawned after a crash (sharded mode only).
    respawns: int = 0
    #: Pool resizes applied (manual ``scale_workers`` and autoscaler both).
    resizes: int = 0

    @property
    def blocks_per_second(self) -> float:
        return self.blocks / self.seconds if self.seconds > 0 else 0.0


class PredictionService:
    """Coalescing, sharding prediction front end over a throughput model.

    Args:
        config: Service configuration.
        model: Optional pre-built (e.g. freshly trained) model to serve
            in-process.  Only valid with ``num_workers=0``; worker processes
            always build their replicas from the config so that they can be
            respawned.  A pre-built model keeps its own ``inference_dtype``
            (the config's dtype only governs replicas the service builds).
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        model: Optional[ThroughputModel] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        if model is not None and self.config.num_workers > 0:
            raise ValueError(
                "a pre-built model can only be served in-process; use "
                "checkpoint_path to ship weights to worker processes"
            )
        self._model = model
        self._pool: Optional[ShardedWorkerPool] = None
        self._autoscaler: Optional[PoolAutoscaler] = None
        # Per-worker circuit breaker (None unless the config enables one).
        # Shared with the pool, which feeds outcomes in; routing consults
        # it to walk past open workers.
        self._breaker: Optional[CircuitBreaker] = (
            CircuitBreaker(self.config.breaker_policy)
            if getattr(self.config, "breaker_policy", None) is not None
            else None
        )
        # Breaker-aware view of the pool's ring, built lazily with the
        # pool (None when circuit breaking is off).
        self._breaker_ring: Optional[BreakerRing] = None  # guarded-by: _submit_lock
        # Hot-key replication router (hash sharding with
        # hot_key_replicas > 1 only), built lazily with the pool.
        self._hot_router: Optional[HotKeyRouter] = None  # guarded-by: _submit_lock
        self._parse_cache: LRUCache = LRUCache(PARSE_CACHE_SIZE)
        # Round-robin sharding deals micro-batches out across *submissions*
        # (not restarting at worker 0 every submit), like the former
        # ``Pool.map`` pool did over time.
        self._round_robin_position = 0
        # Serializes submissions: the model caches, stats, parse cache and
        # worker pipes are all single-submission state, so a service shared
        # by several threads (e.g. two async front ends) flushes one
        # submission at a time.
        self._submit_lock = threading.Lock()
        self._closed = False
        self.stats = ServiceStats()

    # ------------------------------------------------------------------ #
    # Warm start and lifecycle.
    # ------------------------------------------------------------------ #
    @property
    def model(self) -> ThroughputModel:
        """The in-process model replica (built on first access)."""
        if self._model is None:
            self._model = build_model(self.config)
        return self._model

    @property
    def inference_dtype(self) -> str:
        """The compute dtype this service predicts in.

        The served model's dtype when one is (or has been) built, else the
        config dtype every replica will be built with.
        """
        if self._model is not None:
            return self._model.inference_dtype
        return self.config.inference_dtype

    def warm_start(self) -> "PredictionService":
        """Eagerly builds the model (and worker pool), returning ``self``.

        After ``warm_start`` returns, the first request pays no
        construction, checkpoint-load or worker-spawn cost: in sharded mode
        the pool is pinged, which blocks until every replica is built.
        """
        if self.config.num_workers > 0:
            self._ensure_pool().ping()
        else:
            _ = self.model
        return self

    def _ensure_pool(self) -> ShardedWorkerPool:
        if self._closed:
            # Without this, any use after close() would silently respawn a
            # whole new worker pool that nothing ever shuts down again.
            raise ServiceClosedError(
                "service is closed; worker pools do not restart"
            )
        if self._pool is None:
            self._validate_worker_config()
            self._pool = ShardedWorkerPool(self.config, breaker=self._breaker)
        return self._pool

    # ------------------------------------------------------------------ #
    # Elasticity.
    # ------------------------------------------------------------------ #
    @property
    def worker_bounds(self) -> Tuple[int, int]:
        """The ``(min, max)`` worker counts elastic scaling may use."""
        low = (
            self.config.num_workers
            if self.config.min_workers is None
            else self.config.min_workers
        )
        high = (
            self.config.num_workers
            if self.config.max_workers is None
            else self.config.max_workers
        )
        return low, high

    @property
    def autoscaling_enabled(self) -> bool:
        """Whether the config allows any pool size besides the initial one."""
        if self.config.num_workers < 1:
            return False
        low, high = self.worker_bounds
        return low < high

    @property
    def num_workers(self) -> int:
        """The pool's current worker count (0 for in-process services)."""
        if self._pool is not None:
            return self._pool.num_workers
        return self.config.num_workers

    def scale_workers(self, count: int) -> int:
        """Resizes the worker pool to ``count`` replicas; returns the delta.

        Serialized against submissions (consistent-ring routing decisions
        must never observe a half-applied resize).  Manual calls may pick
        any count >= 1, but note that while autoscaling is enabled the
        monitor clamps the pool back inside ``[min_workers, max_workers]``
        on a subsequent poll — an out-of-bounds manual override only
        sticks on services without elastic bounds.
        """
        if self.config.num_workers < 1:
            raise RuntimeError("an in-process service has no worker pool to scale")
        with self._submit_lock:
            delta = self._ensure_pool().scale_to(count)
            if delta:
                self.stats.resizes += 1
            return delta

    def maybe_autoscale(
        self,
        pending_blocks: int,
        *,
        flush_wait_p99_s: Optional[float] = None,
        batch_latency_s: Optional[float] = None,
        wait_budget_s: Optional[float] = None,
    ) -> int:
        """Applies one autoscaler decision; returns the live worker count.

        Called by the async front end's monitor with the current queue
        depth plus, when it has them, realized-latency signals: the recent
        p99 flush wait, the typical per-flush service time, and the wait
        budget those are judged against (see
        :meth:`repro.serve.workers.PoolAutoscaler.decide`).  NaN signals
        mean "no data yet" and are ignored.  A no-op unless
        :attr:`autoscaling_enabled` (and the pool has been built, so an
        idle service is never warm-started just to shrink it).
        """
        if not self.autoscaling_enabled or self._pool is None or self._closed:
            return self.num_workers
        if self._autoscaler is None:
            low, high = self.worker_bounds
            self._autoscaler = PoolAutoscaler(
                low,
                high,
                self.config.max_batch_size,
                cooldown_s=self.config.scale_cooldown_s,
            )
        current = self._pool.num_workers
        target = self._autoscaler.decide(
            pending_blocks,
            current,
            flush_wait_p99_s=flush_wait_p99_s,
            batch_latency_s=batch_latency_s,
            wait_budget_s=wait_budget_s,
        )
        if target != current:
            self.scale_workers(target)
        return target

    def _routing_ring_locked(self, pool: ShardedWorkerPool):
        """The ring routing decisions should consult (breaker-aware if on).

        With circuit breaking enabled the pool's live ring is wrapped in a
        :class:`~repro.serve.resilience.BreakerRing`, so the owner of a key
        becomes the first clockwise replica whose breaker admits traffic —
        blocks route *around* tripped workers instead of piling onto them.
        Caller holds ``_submit_lock``.
        """
        if self._breaker is None:
            return pool.ring
        if self._breaker_ring is None:
            self._breaker_ring = BreakerRing(pool.ring, self._breaker)
        return self._breaker_ring

    def _hot_router_locked(self, pool: ShardedWorkerPool) -> Optional[HotKeyRouter]:
        """The hot-key router, built on first use (``None`` when disabled).

        The router wraps the pool's *live* ring (breaker-aware when circuit
        breaking is on), so resizes need no re-wiring — replica sets follow
        the ring.  Caller holds ``_submit_lock``.
        """
        if self.config.hot_key_replicas <= 1:
            return None
        if self._hot_router is None:
            self._hot_router = HotKeyRouter(
                self._routing_ring_locked(pool),
                replicas=self.config.hot_key_replicas,
                hot_count=self.config.hot_key_count,
            )
        return self._hot_router

    def worker_stats(self) -> List[WorkerStats]:
        """Typed per-worker cache/ring stats (empty for in-process services)."""
        if self.config.num_workers < 1 or self._pool is None:
            return []
        return self._pool.worker_stats()

    def snapshot(self) -> ModelStats:
        """Typed aggregate view of this service (see :mod:`repro.serve.stats`).

        Includes the in-process replica's cache counters when one has been
        built; in worker mode each replica reports its own through
        :meth:`worker_stats`.
        """
        cache: Optional[CacheStats] = None
        if self._model is not None and self.config.num_workers == 0:
            raw = dict(self._model.cache_stats())
            raw["parse_hits"] = self._parse_cache.hits
            raw["parse_misses"] = self._parse_cache.misses
            cache = CacheStats.from_model_stats(raw)
        with self._submit_lock:
            stats = self.stats
            router = self._hot_router
            pool = self._pool
            breaker = self._breaker
            breaker_counts = (
                breaker.counters()
                if breaker is not None
                else {"trips": 0, "probes": 0, "recoveries": 0}
            )
            return ModelStats(
                model_name=self.config.model_name,
                inference_dtype=self.inference_dtype,
                requests=stats.requests,
                blocks=stats.blocks,
                batches=stats.batches,
                seconds=stats.seconds,
                blocks_per_second=stats.blocks_per_second,
                respawns=stats.respawns,
                resizes=stats.resizes,
                num_workers=self.num_workers,
                hot_key_replicas=self.config.hot_key_replicas,
                hot_keys=len(router.hot_keys) if router is not None else 0,
                replicated_routes=(
                    router.replicated_routes if router is not None else 0
                ),
                breaker_trips=breaker_counts["trips"],
                breaker_probes=breaker_counts["probes"],
                breaker_recoveries=breaker_counts["recoveries"],
                breaker_open_workers=(
                    breaker.open_count() if breaker is not None else 0
                ),
                job_timeouts=pool.job_timeouts if pool is not None else 0,
                corrupt_replies=pool.corrupt_replies if pool is not None else 0,
                respawns_suppressed=(
                    pool.respawns_suppressed if pool is not None else 0
                ),
                cache=cache,
            )

    def resilience_report(self) -> Dict[str, object]:
        """Readiness detail: breaker and respawn-backoff state.

        ``status`` is ``"ready"`` (all workers healthy), ``"degraded"``
        (some breaker open or some worker held in respawn backoff — the
        service still answers, routing around the sick replicas) or
        ``"unready"`` (closed, or every worker is dead and backed off).
        """
        pool = self._pool
        backoff = pool.respawn_backoff_workers() if pool is not None else []
        open_workers = self._breaker.open_count() if self._breaker is not None else 0
        num_workers = self.num_workers
        if self._closed:
            status = "unready"
        elif num_workers > 0 and backoff and len(backoff) >= num_workers:
            status = "unready"
        elif open_workers > 0 or backoff:
            status = "degraded"
        else:
            status = "ready"
        return {
            "status": status,
            "num_workers": num_workers,
            "breaker_open_workers": open_workers,
            "respawn_backoff_workers": sorted(backoff),
            "breaker": (
                self._breaker.counters() if self._breaker is not None else None
            ),
        }

    def check_health(self) -> int:
        """Respawns any crashed worker; returns how many were respawned.

        In-process services (``num_workers=0``) have nothing to check and
        always return 0.  Sharded submissions call this implicitly, so an
        explicit call is only needed for out-of-band monitoring loops.
        """
        if self.config.num_workers == 0 or self._pool is None:
            return 0
        respawned = self._pool.ensure_healthy()
        with self._submit_lock:
            self.stats.respawns = self._pool.respawns
        return respawned

    def _validate_worker_config(self) -> None:
        """Catches configs that would crash the worker initializer.

        ``multiprocessing.Pool`` endlessly respawns workers whose
        initializer raises, so a bad model name or a missing checkpoint
        would livelock ``submit`` instead of surfacing an error; validate
        those in the parent before spawning anything.
        """
        from repro.models import MODEL_NAMES

        if self.config.model_name.lower() not in MODEL_NAMES:
            raise ValueError(
                f"unknown model {self.config.model_name!r}; "
                f"expected one of {MODEL_NAMES}"
            )
        if self.config.checkpoint_path is not None and not os.path.exists(
            self.config.checkpoint_path
        ):
            raise FileNotFoundError(
                f"checkpoint not found: {self.config.checkpoint_path}"
            )

    def close(self) -> None:
        """Shuts down the worker pool (idempotent).

        A worker-mode service cannot be reused afterwards (submitting would
        need a fresh pool); the in-process path holds no external resources
        and keeps working.
        """
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "PredictionService":
        return self.warm_start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Serving.
    # ------------------------------------------------------------------ #
    def _served_tasks(self) -> Tuple[str, ...]:
        """The microarchitecture heads the served model exposes.

        Used to validate task filters when a submission contains no blocks
        (so nothing came back from the model).  In worker mode the parent
        process holds no model, but every replica is built from the config,
        whose ``tasks=None`` resolves to the model families' shared default
        heads.
        """
        if self._model is not None or self.config.num_workers == 0:
            return tuple(self.model.tasks)
        if self.config.tasks is not None:
            return tuple(self.config.tasks)
        return tuple(TARGET_MICROARCHITECTURES)

    def submit(self, requests: Sequence[PredictionRequest]) -> List[PredictionResponse]:
        """Serves a list of heterogeneous requests.

        The requests' blocks are coalesced into micro-batches of at most
        ``config.max_batch_size`` blocks, predicted (sharded across the
        worker pool when one is configured), and reassembled into one
        response per request, in request order.

        Thread-safe: concurrent calls are serialized, one submission at a
        time.  Callers wanting cross-request batching under concurrency
        should put an :class:`~repro.serve.AsyncPredictionService` in front
        instead of submitting from many threads.
        """
        with self._submit_lock:
            return self._submit_locked(requests)

    def _submit_locked(
        self, requests: Sequence[PredictionRequest]
    ) -> List[PredictionResponse]:
        start = time.perf_counter()
        # Fail fast on unknown task filters, before any prediction work (and
        # before spawning workers) is spent on the submission.
        served_tasks = self._served_tasks()
        for request in requests:
            if request.tasks is not None:
                unknown = sorted(set(request.tasks) - set(served_tasks))
                if unknown:
                    raise KeyError(
                        f"request {request.request_id!r} asked for unknown "
                        f"tasks: {unknown}"
                    )

        if self.config.num_workers > 0 and any(
            request.num_blocks for request in requests
        ):
            # No liveness pre-check needed: run_batches detects dead workers
            # on send/recv, respawns them and resubmits the lost work.
            pool = self._ensure_pool()
            if self.config.sharding == "hash":
                router = self._hot_router_locked(pool)
                if router is not None:
                    assignments = coalesce_requests_by_router(
                        requests, self.config.max_batch_size, router
                    )
                else:
                    assignments = coalesce_requests_by_ring(
                        requests,
                        self.config.max_batch_size,
                        self._routing_ring_locked(pool),
                    )
            else:
                assignments = [
                    ((self._round_robin_position + index) % pool.num_workers, batch)
                    for index, batch in enumerate(
                        coalesce_requests(requests, self.config.max_batch_size)
                    )
                ]
                self._round_robin_position = (
                    self._round_robin_position + len(assignments)
                ) % pool.num_workers
            batches = [batch for _, batch in assignments]
            batch_results = pool.run_batches(
                [(worker, batch.block_texts) for worker, batch in assignments]
            )
            self.stats.respawns = pool.respawns
        else:
            batches = coalesce_requests(requests, self.config.max_batch_size)
            model = self.model if batches else None
            batch_results = [
                predict_texts(model, batch.block_texts, self._parse_cache)
                for batch in batches
            ]
        tasks = tuple(batch_results[0].keys()) if batch_results else served_tasks

        # Reassemble per-request arrays from the (request, position)
        # origins: scatter every batch into one flat per-task array indexed
        # by global block position (request offset + position), then slice
        # per request.  Fully vectorized so reassembly stays negligible next
        # to the (possibly cached) model work.
        request_offsets = np.cumsum([0] + [request.num_blocks for request in requests])
        total_blocks = int(request_offsets[-1])
        flat: Dict[str, np.ndarray] = {
            task: np.zeros(total_blocks) for task in tasks
        }
        for batch, result in zip(batches, batch_results):
            origins = np.asarray(batch.origins, dtype=np.int64).reshape(-1, 2)
            positions = request_offsets[origins[:, 0]] + origins[:, 1]
            for task in tasks:
                flat[task][positions] = np.asarray(result[task])

        elapsed = time.perf_counter() - start
        responses: List[PredictionResponse] = []
        for index, request in enumerate(requests):
            begin, end = request_offsets[index], request_offsets[index + 1]
            request_tasks = request.tasks if request.tasks is not None else tasks
            predictions = {task: flat[task][begin:end].copy() for task in request_tasks}
            responses.append(
                PredictionResponse(
                    request_id=request.request_id,
                    predictions=predictions,
                    num_blocks=request.num_blocks,
                    seconds=elapsed,
                )
            )
        self.stats.requests += len(requests)
        self.stats.blocks += total_blocks
        self.stats.batches += len(batches)
        self.stats.seconds += elapsed
        return responses

    def predict_blocks(
        self, blocks: Sequence[Union[BasicBlock, str]]
    ) -> Dict[str, np.ndarray]:
        """Convenience wrapper: one request, returns its prediction arrays."""
        request = PredictionRequest.of(blocks)
        return self.submit([request])[0].predictions
