"""The typed stats contract of the serving stack.

Every introspection surface of the stack returns instances of the
dataclasses below instead of ad-hoc dicts:

* ``PredictionService.snapshot()`` -> :class:`ModelStats`
* ``ShardedWorkerPool.worker_stats()`` / ``PredictionService.worker_stats()``
  -> ``List[``:class:`WorkerStats```]``
* ``AsyncPredictionService.snapshot()`` -> :class:`ServiceSnapshot`
  (sections: :class:`QueueStats`, :class:`FlushStats`, :class:`ModelStats`)
* ``GET /v1/models/{model}/stats`` serializes exactly these dataclasses —
  the JSON schema *is* the dataclass schema (:meth:`StatsStruct.to_dict`),
  so the wire format can never drift from the in-process one.

Backwards compatibility: the historical ``snapshot()`` /
``worker_stats()`` consumers indexed flat dicts
(``snapshot["flush_wait_p99_ms"]``, ``stats["prediction_hit_rate"]``).
Every stats dataclass therefore supports read-only mapping access:
``struct[key]`` resolves the key against the declared flat aliases, the
dataclass's own fields, and finally any nested section that knows the key.
New code should use attribute access (``snapshot.flush.wait_p99_ms``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "StatsStruct",
    "CacheStats",
    "WorkerStats",
    "QueueStats",
    "FlushStats",
    "HedgeStats",
    "ModelStats",
    "ResilienceStats",
    "ServiceSnapshot",
    "latency_percentile",
]


def latency_percentile(samples: Iterable[float], quantile: float) -> float:
    """The ``quantile`` (0..1) of ``samples``, or NaN for an empty window.

    NaN — not 0.0 — is the only honest answer when there are no samples:
    an SLO check or autoscaler reading 0.0 would mistake "no data" for
    "zero latency" and either pass a dead service or never scale.  NaN
    propagates through arithmetic, fails every ``<=`` comparison, and
    serializes to ``null`` on the wire (see ``repro.serve.http._jsonable``),
    so every consumer is forced to treat the empty window explicitly.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    # list() is a single C-level copy, so iterating cannot interleave with
    # a producer thread appending to a deque mid-iteration.
    values = list(samples)
    if not values:
        return float("nan")
    return float(np.quantile(np.asarray(values), quantile))


def _plain(value: Any) -> Any:
    """Plain-data view of ``value`` (StatsStructs and containers recursed)."""
    if isinstance(value, StatsStruct):
        return value.to_dict()
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        return {key: _plain(item) for key, item in value.items()}
    return value


class StatsStruct:
    """Mixin giving a stats dataclass dict-style reads and serialization.

    ``to_dict()`` recursively converts the dataclass (nested sections
    included) into plain JSON-ready dicts — the schema-driven
    serialization used by the HTTP front end.  ``struct[key]`` provides
    the historical flat-dict spelling: a key resolves, in order, against
    :attr:`_FLAT_ALIASES` (dotted paths into nested sections), the
    dataclass's own fields, and the nested sections themselves.
    """

    #: ``flat key -> dotted attribute path`` mapping for historical names
    #: whose value lives in a nested section (or under a different name).
    _FLAT_ALIASES: ClassVar[Mapping[str, str]] = {}

    def to_dict(self) -> Dict[str, Any]:
        """Recursive plain-dict view, field order preserved."""
        out: Dict[str, Any] = {}
        for spec in dataclasses.fields(self):
            out[spec.name] = _plain(getattr(self, spec.name))
        return out

    def __getitem__(self, key: str) -> Any:
        path = self._FLAT_ALIASES.get(key)
        if path is not None:
            value: Any = self
            for part in path.split("."):
                value = getattr(value, part)
            return value
        field_names = {spec.name for spec in dataclasses.fields(self)}
        if key in field_names:
            return getattr(self, key)
        for name in field_names:
            section = getattr(self, name)
            if isinstance(section, StatsStruct):
                try:
                    return section[key]
                except KeyError:
                    continue
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key: object) -> bool:
        try:
            self[key]  # type: ignore[index]
        except (KeyError, TypeError):
            return False
        return True


@dataclass(frozen=True)
class CacheStats(StatsStruct):
    """Cache counters of one model replica (encode / prediction / parse)."""

    encode_hits: int = 0
    encode_misses: int = 0
    encode_hit_rate: float = 0.0
    prediction_hits: int = 0
    prediction_misses: int = 0
    prediction_hit_rate: float = 0.0
    prediction_entries: int = 0
    parse_hits: int = 0
    parse_misses: int = 0

    @classmethod
    def from_model_stats(cls, stats: Mapping[str, Any]) -> "CacheStats":
        """Parses the flat dict of ``ThroughputModel.cache_stats()``.

        Unknown keys are ignored; missing keys keep their zero defaults —
        worker replicas may add counters before the parent upgrades.
        """
        field_names = {spec.name for spec in dataclasses.fields(cls)}
        return cls(**{key: stats[key] for key in stats.keys() & field_names})


@dataclass(frozen=True)
class WorkerStats(StatsStruct):
    """One worker replica's identity, ring share and cache counters.

    A dead worker held in respawn backoff reports ``alive=False`` with
    ``respawn_backoff_active=True`` and zeroed cache counters (its process
    cannot be asked); ``breaker_state`` is the worker's circuit-breaker
    state (always ``"closed"`` when circuit breaking is disabled).
    """

    worker_id: int
    spawn_count: int
    ring_share: float
    inference_dtype: str
    job_errors: int
    cache: CacheStats
    alive: bool = True
    respawn_backoff_active: bool = False
    breaker_state: str = "closed"


@dataclass(frozen=True)
class QueueStats(StatsStruct):
    """Admission-side state of the async front end's request queue."""

    depth_blocks: int
    depth_requests: int
    max_blocks: int
    backpressure: str
    submitted_requests: int
    submitted_blocks: int
    rejected: int
    cancelled_drops: int
    expired_drops: int


@dataclass(frozen=True)
class FlushStats(StatsStruct):
    """Dispatcher-side flush counters and realized latency percentiles.

    Two latency families with deliberately distinct names:

    * ``wait_*`` — per *flush*, the wait of that flush's oldest request
      (the dispatcher's deadline-keeping signal; biased low as a request
      latency, since only one request per flush is sampled);
    * ``request_*`` — per *request*, enqueue -> completion (what a client
      actually experienced, including the service call itself).

    All percentiles are NaN while their sample window is empty (never
    0.0 — "no data" must not read as "zero latency").
    """

    policy: str
    current_deadline_ms: float
    flushes: int
    size_flushes: int
    deadline_flushes: int
    close_flushes: int
    flushed_blocks: int
    mean_flush_blocks: float
    wait_p50_ms: float
    wait_p99_ms: float
    deadline_p50_ms: float
    deadline_p99_ms: float
    request_p50_ms: float = float("nan")
    request_p99_ms: float = float("nan")
    request_p999_ms: float = float("nan")
    requests_completed: int = 0
    request_errors: int = 0


@dataclass(frozen=True)
class HedgeStats(StatsStruct):
    """Hedged-request counters of the async front end.

    ``issued`` counts duplicate submissions (a request outlived the hedge
    deadline while queued or in flight); ``won`` counts client responses
    that came from the hedge rather than the primary; ``losers_cancelled``
    counts losing attempts cancelled while still queued (their blocks were
    freed without reaching a worker).  ``deadline_ms`` is the hedge
    deadline currently in effect — NaN until ``hedge_min_samples`` request
    latencies have been observed.
    """

    enabled: bool = False
    issued: int = 0
    won: int = 0
    losers_cancelled: int = 0
    deadline_ms: float = float("nan")
    inflight: int = 0


@dataclass(frozen=True)
class ModelStats(StatsStruct):
    """Aggregate serving counters of one (sync) prediction service."""

    model_name: str
    inference_dtype: str
    requests: int
    blocks: int
    batches: int
    seconds: float
    blocks_per_second: float
    respawns: int
    resizes: int
    num_workers: int
    #: Replication factor applied to Zipf-head keys (1 = replication off).
    hot_key_replicas: int = 1
    #: Keys currently classified hot (and routed read-any over replicas).
    hot_keys: int = 0
    #: Blocks routed through a replica set instead of the single ring owner.
    replicated_routes: int = 0
    #: Circuit-breaker trips (closed/half-open -> open transitions).
    breaker_trips: int = 0
    #: Probe requests admitted by half-open breakers.
    breaker_probes: int = 0
    #: Half-open -> closed recoveries.
    breaker_recoveries: int = 0
    #: Workers whose breaker is open right now.
    breaker_open_workers: int = 0
    #: Worker jobs killed by the per-job watchdog (hung replicas).
    job_timeouts: int = 0
    #: Worker replies discarded as corrupt (non-finite predictions).
    corrupt_replies: int = 0
    #: Respawn attempts refused by the respawn governor (backoff active).
    respawns_suppressed: int = 0
    #: Cache counters of the in-process replica; ``None`` in worker mode
    #: (each replica reports its own through ``worker_stats()``) and until
    #: the model is first built.
    cache: Optional[CacheStats] = None


@dataclass(frozen=True)
class ResilienceStats(StatsStruct):
    """Self-healing counters of the async front end.

    ``retries`` counts backoff retries actually taken by the dispatcher;
    ``retries_exhausted`` counts submissions that still failed after the
    last attempt; ``retry_budget_denied`` counts retries refused by the
    sliding-window budget.  ``degraded_responses`` counts requests served
    from the stale prediction cache (flagged ``degraded=True``), and
    ``injected_queue_rejections`` counts submissions rejected by an armed
    queue-saturation fault.
    """

    retries: int = 0
    retries_exhausted: int = 0
    retry_budget_denied: int = 0
    degraded_responses: int = 0
    stale_cache_entries: int = 0
    injected_queue_rejections: int = 0


@dataclass(frozen=True)
class ServiceSnapshot(StatsStruct):
    """Point-in-time view of one async serving stack.

    Sections: :attr:`queue` (admission), :attr:`flush` (dispatcher),
    :attr:`model` (the underlying sync service), :attr:`hedge` (the hedged
    duplicate machinery), plus the flush controller's own
    :attr:`controller` state dict and the autoscale monitor's error
    counter.  The historical flat keys
    (``snapshot["flush_wait_p99_ms"]`` etc.) resolve through
    :attr:`_FLAT_ALIASES`.
    """

    queue: QueueStats
    flush: FlushStats
    model: ModelStats
    hedge: HedgeStats
    controller: Dict[str, Any]
    autoscale_errors: int
    resilience: ResilienceStats = field(default_factory=ResilienceStats)

    _FLAT_ALIASES: ClassVar[Mapping[str, str]] = {
        "flush_policy": "flush.policy",
        "current_deadline_ms": "flush.current_deadline_ms",
        "queue_depth_blocks": "queue.depth_blocks",
        "queue_depth_requests": "queue.depth_requests",
        "requests": "queue.submitted_requests",
        "blocks": "queue.submitted_blocks",
        "flushes": "flush.flushes",
        "size_flushes": "flush.size_flushes",
        "deadline_flushes": "flush.deadline_flushes",
        "close_flushes": "flush.close_flushes",
        "flushed_blocks": "flush.flushed_blocks",
        "mean_flush_blocks": "flush.mean_flush_blocks",
        "flush_wait_p50_ms": "flush.wait_p50_ms",
        "flush_wait_p99_ms": "flush.wait_p99_ms",
        "flush_deadline_p50_ms": "flush.deadline_p50_ms",
        "flush_deadline_p99_ms": "flush.deadline_p99_ms",
        "request_latency_p50_ms": "flush.request_p50_ms",
        "request_latency_p99_ms": "flush.request_p99_ms",
        "request_latency_p999_ms": "flush.request_p999_ms",
        "hedges_issued": "hedge.issued",
        "hedges_won": "hedge.won",
        "cancelled_drops": "queue.cancelled_drops",
        "expired_drops": "queue.expired_drops",
        "rejected": "queue.rejected",
        "num_workers": "model.num_workers",
        "retries": "resilience.retries",
        "retries_exhausted": "resilience.retries_exhausted",
        "degraded_responses": "resilience.degraded_responses",
        "breaker_trips": "model.breaker_trips",
        "breaker_recoveries": "model.breaker_recoveries",
        "breaker_open_workers": "model.breaker_open_workers",
    }


def worker_stats_from_raw(
    raw: Mapping[str, Any],
    worker_id: int,
    spawn_count: int,
    ring_share: float,
    alive: bool = True,
    respawn_backoff_active: bool = False,
    breaker_state: str = "closed",
) -> WorkerStats:
    """Builds a :class:`WorkerStats` from one worker's raw stats reply."""
    return WorkerStats(
        worker_id=worker_id,
        spawn_count=spawn_count,
        ring_share=ring_share,
        inference_dtype=str(raw.get("inference_dtype", "")),
        job_errors=int(raw.get("job_errors", 0)),
        cache=CacheStats.from_model_stats(raw),
        alive=alive,
        respawn_backoff_active=respawn_backoff_active,
        breaker_state=breaker_state,
    )


def worker_stats_list(entries: List[WorkerStats]) -> List[Dict[str, Any]]:
    """Plain-dict view of a ``worker_stats()`` result (JSON-ready)."""
    return [entry.to_dict() for entry in entries]
