"""Public envelope types and errors shared by every serving front end.

This module is the bottom of the ``repro.serve`` dependency stack: the
request/response envelopes (:class:`PredictionRequest`,
:class:`PredictionResponse`) and the error taxonomy live here so that the
in-process front ends (:mod:`repro.serve.service`,
:mod:`repro.serve.async_service`) and the network front end
(:mod:`repro.serve.http`) all speak exactly the same types.

Every serving error carries a machine-readable :class:`ReasonCode` in its
``code`` attribute.  Transport layers map codes — never message strings —
to their own status space (the HTTP front end maps ``QUEUE_FULL`` to 429,
``DEADLINE_EXPIRED`` to 408, ``SERVICE_CLOSED`` to 503, and so on), so
rewording an error message can never change protocol behaviour.

The envelope types were originally defined in :mod:`repro.serve.batching`;
that module re-exports them, so old import paths keep working.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.isa.basic_block import BasicBlock

__all__ = [
    "ReasonCode",
    "ServeError",
    "QueueFullError",
    "RequestExpiredError",
    "ServiceClosedError",
    "UnknownModelError",
    "AuthenticationError",
    "AuthorizationError",
    "InvalidRequestError",
    "PredictionRequest",
    "PredictionResponse",
]


class ReasonCode(enum.Enum):
    """Machine-readable reason of a rejected / failed serving request.

    Transport front ends dispatch on these values (the HTTP server maps
    them to status codes); the string values are what goes over the wire
    in error payloads.
    """

    #: The request queue is at capacity (back-pressure rejection).
    QUEUE_FULL = "queue_full"
    #: The request's per-request latency budget ran out before dispatch.
    DEADLINE_EXPIRED = "deadline_expired"
    #: The service / queue / registry is shutting down or closed.
    SERVICE_CLOSED = "service_closed"
    #: No model variant registered under the requested name.
    UNKNOWN_MODEL = "unknown_model"
    #: Missing or unrecognised API key.
    UNAUTHENTICATED = "unauthenticated"
    #: Valid tenant, but the requested model is not on its allow-list.
    FORBIDDEN = "forbidden"
    #: Malformed request payload (bad JSON, wrong field types, unknown
    #: task filters).
    INVALID_REQUEST = "invalid_request"
    #: Unexpected server-side failure.
    INTERNAL = "internal"


class ServeError(Exception):
    """Base of every serving error; carries a :class:`ReasonCode`.

    Subclasses double-inherit from the builtin exception their historical
    counterpart derived from (``RuntimeError`` / ``TimeoutError`` / ...),
    so pre-existing ``except`` clauses keep catching them.
    """

    code: ReasonCode = ReasonCode.INTERNAL


class QueueFullError(ServeError, RuntimeError):
    """The queue is at capacity and the back-pressure policy rejected."""

    code = ReasonCode.QUEUE_FULL


class RequestExpiredError(ServeError, TimeoutError):
    """A request's per-request deadline passed before it was dispatched."""

    code = ReasonCode.DEADLINE_EXPIRED


class ServiceClosedError(ServeError, RuntimeError):
    """The service (or its queue / worker pool / registry) is closed."""

    code = ReasonCode.SERVICE_CLOSED


class UnknownModelError(ServeError, LookupError):
    """No model variant is registered under the requested name."""

    code = ReasonCode.UNKNOWN_MODEL


class AuthenticationError(ServeError, PermissionError):
    """The request carried no API key, or one no tenant owns."""

    code = ReasonCode.UNAUTHENTICATED


class AuthorizationError(ServeError, PermissionError):
    """The tenant is authenticated but may not use the requested model."""

    code = ReasonCode.FORBIDDEN


class InvalidRequestError(ServeError, ValueError):
    """The request payload is malformed."""

    code = ReasonCode.INVALID_REQUEST


_REQUEST_COUNTER = itertools.count()


def _canonical_text(block: Union[BasicBlock, str]) -> str:
    """Returns the canonical Intel-syntax text of a block (or passes text through)."""
    if isinstance(block, BasicBlock):
        return block.canonical_text()
    return str(block)


@dataclass(frozen=True)
class PredictionRequest:
    """One client request: predict the throughput of a list of blocks.

    Attributes:
        block_texts: Canonical Intel-syntax text of every block, one
            multi-line string per block.
        request_id: Stable identifier echoed in the response.
        tasks: Optional subset of the model's microarchitecture heads to
            return; ``None`` returns all of them.
    """

    block_texts: Tuple[str, ...]
    request_id: str
    tasks: Optional[Tuple[str, ...]] = None

    @staticmethod
    def of(
        blocks: Sequence[Union[BasicBlock, str]],
        request_id: Optional[str] = None,
        tasks: Optional[Sequence[str]] = None,
    ) -> "PredictionRequest":
        """Builds a request from blocks or block texts."""
        if request_id is None:
            request_id = f"request-{next(_REQUEST_COUNTER)}"
        return PredictionRequest(
            block_texts=tuple(_canonical_text(block) for block in blocks),
            request_id=request_id,
            tasks=tuple(tasks) if tasks is not None else None,
        )

    @property
    def num_blocks(self) -> int:
        return len(self.block_texts)


@dataclass
class PredictionResponse:
    """Per-request result: one throughput per block per task.

    Attributes:
        request_id: Identifier of the originating request.
        predictions: ``{task: [num_blocks] float array}``.
        num_blocks: Number of blocks predicted.
        seconds: Wall-clock service time of the request (coalescing makes
            this shared across requests of the same submission).
        degraded: True when the predictions were served from the stale
            prediction cache because the live pool was unavailable.
    """

    request_id: str
    predictions: Dict[str, np.ndarray]
    num_blocks: int
    seconds: float = 0.0
    degraded: bool = False
