"""Sharded worker processes with health checks and automatic respawn.

The original worker pool was a ``multiprocessing.Pool`` whose ``map`` dealt
micro-batches to whichever worker was free.  That wastes the workers' warm
caches: the same block lands on a different replica every submission, so
every replica slowly re-encodes (and re-predicts) the whole key space.  This
module replaces it with a :class:`ShardedWorkerPool` of *addressable*
workers:

* each worker is a dedicated process with its own duplex pipe, so the
  parent can route a micro-batch to a specific worker — which is what makes
  stable block-text-hash sharding (see
  :func:`repro.serve.batching.coalesce_requests_by_shard`) possible;
* each worker owns a warm model replica plus parse cache, and can report
  its cache counters (the per-worker shard-affinity stats used by the
  serving benchmarks);
* the parent detects crashed workers (dead process, broken pipe) both via
  explicit health checks and mid-submission, respawns them from the service
  config, and transparently resubmits the work that was in flight —
  predictions are pure, so resubmission is always safe;
* the pool is *elastic*: :meth:`ShardedWorkerPool.scale_to` grows and
  shrinks the worker count at runtime, keeping a consistent
  :class:`~repro.serve.ring.HashRing` over the live worker ids in sync so
  only ~1/N of the cache key space moves per resize.  Worker ids stay
  contiguous (``0 .. count-1``): scaling up re-adds the lowest free id and
  scaling down retires the highest, so the ring topology — and therefore
  every surviving worker's cache partition — is a pure function of the
  worker count.  :class:`PoolAutoscaler` turns queue depth into resize
  decisions under min/max bounds and a cooldown.

The job protocol is deliberately tiny: ``(kind, job_id, payload)`` requests
and ``(status, job_id, payload)`` replies, with kinds ``predict``, ``stats``,
``ping`` and ``stop``.  Job ids let the parent discard stale replies after a
respawn instead of mis-assigning them.
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
import multiprocessing.connection
import os
import threading
import time
import traceback
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.models import create_model
from repro.models.base import ThroughputModel
from repro.serve.faults import FaultInjector
from repro.serve.resilience import CircuitBreaker, RespawnGovernor, RespawnPolicy
from repro.serve.ring import HashRing
from repro.serve.stats import WorkerStats, worker_stats_from_raw
from repro.serve.types import ServiceClosedError
from repro.utils.cache import LRUCache

__all__ = [
    "PoolAutoscaler",
    "ShardedWorkerPool",
    "WorkerCrashError",
    "PARSE_CACHE_SIZE",
]

#: Capacity of the text -> parsed BasicBlock caches (service and workers).
PARSE_CACHE_SIZE = 8192

#: How often (seconds) the parent re-checks a worker's liveness while
#: waiting for a reply.  Predictions may legitimately take much longer; the
#: poll only bounds how quickly a *crash* is noticed, not the job itself.
_POLL_INTERVAL_S = 0.05

#: Respawn budget per ``run_batches`` call.  A worker that dies
#: deterministically on some input would otherwise crash-loop forever.
_MAX_RESPAWNS_PER_CALL = 3

#: Exit code of a worker killed by an injected crash fault (visible in the
#: parent's process table; any nonzero code is handled the same way).
_CRASH_EXIT_CODE = 17


class WorkerCrashError(RuntimeError):
    """A worker crashed repeatedly and its work could not be completed."""


def _worker_context():
    """A fork-safe multiprocessing context for worker (re)spawns.

    Workers are respawned wherever a crash is detected — including the async
    front end's dispatcher thread — and ``fork`` in a multi-threaded parent
    can inherit held locks into the child, wedging it inside
    :func:`build_model` forever.  ``forkserver`` forks from a clean
    single-threaded server instead (with this module preloaded so replicas
    don't re-import numpy per spawn); platforms without it use ``spawn``.
    """
    try:
        context = multiprocessing.get_context("forkserver")
        context.set_forkserver_preload(["repro.serve.workers"])
    except ValueError:
        context = multiprocessing.get_context("spawn")
    return context


def build_model(config) -> ThroughputModel:
    """Constructs (and warm-starts) one model replica from a service config.

    The config's ``inference_dtype`` is threaded into the replica, which is
    how a sharded pool ends up with every worker predicting in float32 when
    the service says so — replicas respawned after a crash come through this
    same path, so the dtype survives respawns too.
    """
    kwargs = {}
    if config.tasks is not None:
        kwargs["tasks"] = config.tasks
    dtype = getattr(config, "inference_dtype", None)
    if dtype is not None:
        kwargs["inference_dtype"] = dtype
    return create_model(
        config.model_name,
        small=config.small_model,
        seed=config.seed,
        checkpoint_path=config.checkpoint_path,
        **kwargs,
    )


def predict_texts(
    model: ThroughputModel,
    block_texts: Sequence[str],
    parse_cache: Optional[LRUCache] = None,
) -> Dict[str, np.ndarray]:
    """Parses block texts (through ``parse_cache`` when given) and predicts.

    Caching the parsed blocks keeps steady-state serving of repeated texts
    from paying parse + render cost before the model's prediction cache can
    even be consulted.
    """
    blocks = []
    for text in block_texts:
        block = parse_cache.get(text) if parse_cache is not None else None
        if block is None:
            block = BasicBlock.from_text(text)
            if parse_cache is not None:
                parse_cache.put(text, block)
        blocks.append(block)
    return model.predict(blocks)


def _predictions_corrupt(payload: object) -> bool:
    """True when a predict reply carries any non-finite prediction.

    Only consulted while a fault plan is armed — the parent's defence
    against the ``corrupt_reply`` fault (and, under chaos, against any
    real bit-flip the transport might ever produce).
    """
    if not isinstance(payload, dict):
        return False
    return any(
        not bool(np.isfinite(np.asarray(values)).all())
        for values in payload.values()
    )


def _apply_worker_fault(injector: Optional[FaultInjector], block_texts) -> bool:
    """Executes any worker-side fault due for this predict job.

    A ``crash`` fault exits the process on the spot (the parent sees EOF
    and respawns); ``hang`` / ``slow_reply`` sleep for the spec's delay
    before the job proceeds.  Returns True when the reply should be
    corrupted (``corrupt_reply`` fault).
    """
    if injector is None:
        return False
    action = injector.worker_fault(block_texts)
    if action is None:
        return False
    kind, delay_s = action
    if kind == "crash":
        os._exit(_CRASH_EXIT_CODE)
    if delay_s > 0.0:
        time.sleep(delay_s)
    return kind == "corrupt_reply"


def _worker_main(config, connection, incarnation: int = 1) -> None:
    """Entry point of one worker process: warm model, serve jobs until stop.

    ``incarnation`` is this replica's spawn generation (1 = the original
    process, 2 = first respawn, ...); the fault injector uses it so a
    replica respawned after an injected crash does not re-fault on the
    same keys.
    """
    model = build_model(config)
    parse_cache = LRUCache(PARSE_CACHE_SIZE)
    fault_plan = getattr(config, "fault_plan", None)
    injector = None if fault_plan is None else FaultInjector(fault_plan, incarnation)
    job_errors = 0
    while True:
        try:
            kind, job_id, payload = connection.recv()
        except (EOFError, KeyboardInterrupt):
            return
        if kind == "stop":
            return
        try:
            if kind == "predict":
                corrupt = _apply_worker_fault(injector, payload)
                result = predict_texts(model, payload, parse_cache)
                if corrupt:
                    result = injector.corrupt(result)
            elif kind == "stats":
                result = dict(model.cache_stats())
                result["parse_hits"] = parse_cache.hits
                result["parse_misses"] = parse_cache.misses
                # Which precision this replica actually predicts in; lets
                # the parent (and tests) verify dtype propagation.
                result["inference_dtype"] = model.inference_dtype
                # Jobs this replica failed since it (re)spawned: the parent
                # only raises the first traceback per run_batches call, so
                # the count is how monitoring sees repeat offenders.
                result["job_errors"] = job_errors
            elif kind == "ping":
                result = os.getpid()
            else:
                raise ValueError(f"unknown worker job kind {kind!r}")
            connection.send(("ok", job_id, result))
        except Exception:
            job_errors += 1
            connection.send(("error", job_id, traceback.format_exc()))


class _WorkerHandle:
    """Parent-side handle of one worker: process, pipe, respawn bookkeeping."""

    def __init__(self, config, worker_id: int, context) -> None:
        self._config = config
        self._context = context
        self.worker_id = worker_id
        self.spawn_count = 0
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.connection = None
        self.spawn()

    def spawn(self) -> None:
        self.discard()
        parent_end, child_end = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(self._config, child_end, self.spawn_count + 1),
            name=f"repro-serve-worker-{self.worker_id}",
            daemon=True,
        )
        process.start()
        child_end.close()  # the parent keeps only its own end
        self.process = process
        self.connection = parent_end
        self.spawn_count += 1

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def discard(self) -> None:
        """Tears down the current process/pipe without replacing them."""
        if self.connection is not None:
            try:
                self.connection.close()
            except OSError:
                pass
            self.connection = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=2.0)
            self.process = None


class ShardedWorkerPool:
    """An elastic pool of addressable warm-model workers.

    Unlike ``multiprocessing.Pool`` the assignment of work to workers is
    entirely up to the caller (jobs address workers by id), dead workers
    are respawned automatically, in-flight work lost to a crash is
    resubmitted to the replacement, and the worker count can be scaled at
    runtime (:meth:`scale_to`) with a consistent hash :attr:`ring` tracking
    the live ids so callers can route with minimal cache movement.

    Worker ids are always the contiguous range ``0 .. num_workers - 1``:
    scaling down retires the highest ids and scaling back up re-creates
    them, which makes the ring topology (and hence each worker's cache
    partition) a deterministic function of the worker count alone.
    """

    def __init__(
        self,
        config,
        num_workers: Optional[int] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self._config = config
        self._context = _worker_context()
        self._job_ids = itertools.count()
        #: Optional per-worker circuit breaker (owned by the service);
        #: crashes / timeouts / corrupt replies feed failures in, ok
        #: predict replies feed successes.
        self._breaker = breaker
        #: Respawn rate limiter — bounds health-check respawns per window
        #: so a crash-storming worker cannot spin the pool.
        self._governor = RespawnGovernor(
            getattr(config, "respawn_policy", None) or RespawnPolicy()
        )
        #: Per-job watchdog: an in-flight job older than this is treated as
        #: a crash (hung replica).  None = wait forever (historical).
        self._job_timeout_s = getattr(config, "worker_job_timeout_s", None)
        #: Validate predict replies for finiteness only when a fault plan
        #: is armed — normal serving never pays the scan.
        self._validate_replies = getattr(config, "fault_plan", None) is not None
        #: Jobs killed by the per-job watchdog.
        self.job_timeouts = 0
        #: Predict replies discarded as corrupt (non-finite values).
        self.corrupt_replies = 0
        count = config.num_workers if num_workers is None else num_workers
        if count < 1:
            raise ValueError("a worker pool needs at least one worker")
        self._workers = [
            _WorkerHandle(config, worker_id, self._context)
            for worker_id in range(count)
        ]
        #: Consistent hash ring over the live worker ids; hash-sharding
        #: callers route every block to ``ring.owner(shard_key(text))``.
        self.ring = HashRing(nodes=range(count))
        #: Chronological resize log: ``{"action", "worker_id",
        #: "num_workers", "at"}`` per worker added or retired.  Bounded so
        #: a long-lived autoscaled pool cannot grow it without limit.
        self.resize_events: Deque[Dict[str, object]] = deque(maxlen=1024)
        # One submission owns all pipes at a time: replies are correlated to
        # jobs by per-worker FIFO order, which concurrent callers (e.g. two
        # async front ends sharing one service) would interleave.
        self._jobs_lock = threading.Lock()
        self._closed = False
        #: Total workers respawned over the pool's lifetime (health checks
        #: and mid-submission crash recovery both count).
        self.respawns = 0
        #: Total error replies received from workers.  ``run_batches`` only
        #: raises the *first* traceback per call; this counts every one, so
        #: errors masked by an earlier failure still show up in monitoring.
        self.job_errors = 0

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    # ------------------------------------------------------------------ #
    # Elasticity.
    # ------------------------------------------------------------------ #
    def scale_to(self, count: int) -> int:
        """Grows or shrinks the pool to ``count`` workers; returns the delta.

        Serialized against submissions via the jobs lock, so no in-flight
        batch can be addressed to a worker being retired.  Retired workers
        are stopped and their processes discarded; re-grown worker ids get
        fresh (cold-cache) replicas, but every *surviving* worker keeps its
        warm caches and — thanks to the consistent ring — almost all of its
        key partition.

        Callers routing through :attr:`ring` must serialize their routing
        decisions against ``scale_to`` themselves (the prediction service
        holds its submit lock across both).
        """
        if count < 1:
            raise ValueError("a worker pool needs at least one worker")
        with self._jobs_lock:
            self._check_open_locked()
            delta = count - len(self._workers)
            while len(self._workers) > count:
                worker = self._workers.pop()
                self._retire_locked(worker)
                self.ring.remove_node(worker.worker_id)
                self._governor.forget(worker.worker_id)
                if self._breaker is not None:
                    self._breaker.forget(worker.worker_id)
                self._record_resize("remove", worker.worker_id)
            while len(self._workers) < count:
                worker_id = len(self._workers)
                self._workers.append(
                    _WorkerHandle(self._config, worker_id, self._context)
                )
                self.ring.add_node(worker_id)
                self._record_resize("add", worker_id)
            return delta

    def _retire_locked(self, worker: _WorkerHandle) -> None:
        if worker.connection is not None and worker.alive():
            try:
                worker.connection.send(("stop", -1, None))
            except (BrokenPipeError, OSError):
                pass
        worker.discard()

    def _record_resize(self, action: str, worker_id: int) -> None:
        self.resize_events.append(
            {
                "action": action,
                "worker_id": worker_id,
                "num_workers": len(self._workers),
                "at": time.monotonic(),
            }
        )

    # ------------------------------------------------------------------ #
    # Health.
    # ------------------------------------------------------------------ #
    def ensure_healthy(self) -> int:
        """Respawns dead workers the respawn governor admits; returns count.

        Taken under the jobs lock so an out-of-band monitoring thread can
        never replace a connection a concurrent submission is waiting on.
        A worker that has exhausted its respawn window stays dead until
        its backoff expires (``respawns_suppressed`` counts the refusals),
        so a crash-storming replica cannot spin the pool through an
        endless fork/build/crash cycle.
        """
        with self._jobs_lock:
            self._check_open_locked()
            respawned = 0
            for worker in self._workers:
                if not worker.alive():
                    if not self._governor.may_respawn(worker.worker_id):
                        continue
                    worker.spawn()
                    self._governor.record_respawn(worker.worker_id)
                    respawned += 1
            self.respawns += respawned
            return respawned

    @property
    def respawns_suppressed(self) -> int:
        """Respawn attempts refused by the governor's backoff."""
        return self._governor.suppressed

    def respawn_backoff_workers(self) -> List[int]:
        """Worker ids currently held in respawn backoff."""
        return self._governor.backoff_workers()

    def respawn_backoff_active(self) -> bool:
        """True while any worker is held in respawn backoff."""
        return bool(self._governor.backoff_workers())

    def ping(self) -> List[int]:
        """Round-trips every worker, returning their PIDs.

        Blocks until each worker has finished warm-starting its model and
        answered, so it doubles as the pool's warm-up barrier.
        """
        results = self._run_jobs([(index, "ping", None) for index in range(self.num_workers)])
        return [int(pid) for pid in results]

    def worker_stats(self) -> List[WorkerStats]:
        """Typed per-worker stats (:class:`~repro.serve.stats.WorkerStats`):
        the replica's cache counters (encode/prediction/parse hits, misses),
        its ``inference_dtype``, its ``job_errors`` count (jobs that raised
        since the replica spawned), its stable ``worker_id``, the fraction
        of the hash ring it owns (``ring_share``) and its ``spawn_count``
        (1 = never respawned).  Entries support the historical flat
        dict-style reads (``entry["prediction_hit_rate"]``).

        Everything — the stats round-trips, the ring shares and the
        worker pairing — happens under the jobs lock, so a concurrent
        ``scale_to`` (e.g. the autoscale monitor) can never mispair stats
        with a half-applied resize.

        Dead workers are *not* round-tripped (asking them would force the
        respawn the governor may be suppressing); they report a
        placeholder entry with ``alive=False`` and zeroed cache counters
        instead.
        """
        with self._jobs_lock:
            self._check_open_locked()
            alive_indexes = [
                index for index, worker in enumerate(self._workers) if worker.alive()
            ]
            results = self._run_jobs_locked(
                [(index, "stats", None) for index in alive_indexes]
            )
            raw_by_index = dict(zip(alive_indexes, results))
            shares = self.ring.shares()
            entries = []
            for index, worker in enumerate(self._workers):
                raw = raw_by_index.get(index)
                state = (
                    self._breaker.state(worker.worker_id)
                    if self._breaker is not None
                    else "closed"
                )
                entries.append(
                    worker_stats_from_raw(
                        raw if raw is not None else {},
                        worker_id=worker.worker_id,
                        spawn_count=worker.spawn_count,
                        ring_share=shares.get(worker.worker_id, 0.0),
                        alive=raw is not None,
                        respawn_backoff_active=self._governor.in_backoff(
                            worker.worker_id
                        ),
                        breaker_state=state,
                    )
                )
            return entries

    # ------------------------------------------------------------------ #
    # Work.
    # ------------------------------------------------------------------ #
    def run_batches(
        self, assignments: Sequence[Tuple[int, Tuple[str, ...]]]
    ) -> List[Dict[str, np.ndarray]]:
        """Predicts every ``(worker_index, block_texts)`` assignment.

        Workers run their assignments concurrently (each worker serially, in
        order).  Results are returned aligned with ``assignments``.  Crashed
        workers are respawned and their outstanding assignments resubmitted;
        a worker that keeps crashing raises :class:`WorkerCrashError`.
        """
        return self._run_jobs(
            [(worker_index, "predict", texts) for worker_index, texts in assignments]
        )

    #: In-flight jobs per worker.  Bounding this keeps both pipe directions
    #: shallow, so neither side can block on a full OS pipe buffer while the
    #: other side is blocked too (the classic fan-out deadlock of sending a
    #: whole job list eagerly).
    _MAX_IN_FLIGHT = 2

    def _run_jobs(self, jobs: Sequence[Tuple[int, str, object]]) -> List[object]:
        """Dispatches jobs to their workers and gathers results in order."""
        with self._jobs_lock:
            self._check_open_locked()
            return self._run_jobs_locked(jobs)

    def _run_jobs_locked(self, jobs: Sequence[Tuple[int, str, object]]) -> List[object]:
        results: List[object] = [None] * len(jobs)
        # Per-worker queues of (job_id, job_index, kind, payload); in-flight
        # entries grow a ``sent_at`` timestamp for the job watchdog.  Workers
        # answer in submission order, so the head of ``in_flight`` is always
        # the reply expected next from that worker.
        waiting: Dict[int, List[Tuple[int, int, str, object]]] = {}
        in_flight: Dict[int, List[Tuple[int, int, str, object, float]]] = {}
        for job_index, (worker_index, kind, payload) in enumerate(jobs):
            if not 0 <= worker_index < self.num_workers:
                raise IndexError(f"no such worker: {worker_index}")
            job_id = next(self._job_ids)
            waiting.setdefault(worker_index, []).append(
                (job_id, job_index, kind, payload)
            )
            in_flight.setdefault(worker_index, [])
        respawn_budget = _MAX_RESPAWNS_PER_CALL * self.num_workers
        # Corrupt replies are re-queued for recomputation; bound that the
        # same way respawns are so a deterministically-corrupting worker
        # cannot loop forever.
        requeue_budget = _MAX_RESPAWNS_PER_CALL * self.num_workers
        first_error: Optional[str] = None

        def handle_crash(worker_index: int) -> None:
            nonlocal respawn_budget
            worker = self._workers[worker_index]
            if self._breaker is not None:
                self._breaker.record_failure(worker.worker_id)
            if respawn_budget <= 0:
                raise WorkerCrashError(
                    f"worker {worker_index} crashed repeatedly; giving up "
                    f"after {self.respawns} respawns"
                )
            respawn_budget -= 1
            worker.spawn()
            self.respawns += 1
            self._governor.record_respawn(worker.worker_id)
            # Everything sent but unanswered died with the process; put it
            # back at the front so the replacement recomputes it first.
            waiting[worker_index][:0] = [
                entry[:4] for entry in in_flight[worker_index]
            ]
            in_flight[worker_index].clear()

        def handle_reply(worker_index: int, reply) -> None:
            nonlocal first_error, requeue_budget
            status, job_id, payload = reply
            if job_id != in_flight[worker_index][0][0]:
                return  # stale reply from before a respawn; discard
            entry = in_flight[worker_index].pop(0)
            _, job_index, kind, job_payload, _ = entry
            worker_id = self._workers[worker_index].worker_id
            if status == "ok":
                if (
                    kind == "predict"
                    and self._validate_replies
                    and _predictions_corrupt(payload)
                ):
                    self.corrupt_replies += 1
                    if self._breaker is not None:
                        self._breaker.record_failure(worker_id)
                    if requeue_budget > 0:
                        requeue_budget -= 1
                        waiting[worker_index].insert(0, entry[:4])
                    else:
                        self.job_errors += 1
                        if first_error is None:
                            first_error = (
                                f"worker {worker_id} kept returning corrupt "
                                f"(non-finite) predictions"
                            )
                    return
                results[job_index] = payload
                if kind == "predict" and self._breaker is not None:
                    self._breaker.record_success(worker_id)
            else:
                self.job_errors += 1
                if first_error is None:
                    first_error = payload

        def sweep_job_timeouts() -> None:
            if self._job_timeout_s is None:
                return
            now = time.monotonic()
            for worker_index, flight in in_flight.items():
                if not flight or now - flight[0][4] <= self._job_timeout_s:
                    continue
                # The head job has been in flight too long: the replica is
                # hung (or injected to hang).  Kill it and let the crash
                # path respawn and resubmit.
                self.job_timeouts += 1
                worker = self._workers[worker_index]
                if worker.process is not None and worker.process.is_alive():
                    worker.process.terminate()
                handle_crash(worker_index)

        while any(waiting.values()) or any(in_flight.values()):
            for worker_index in waiting:
                # Top up this worker's in-flight window.
                while (
                    waiting[worker_index]
                    and len(in_flight[worker_index]) < self._MAX_IN_FLIGHT
                ):
                    job = waiting[worker_index].pop(0)
                    try:
                        self._workers[worker_index].connection.send(
                            (job[2], job[0], job[3])
                        )
                        in_flight[worker_index].append(job + (time.monotonic(),))
                    except (BrokenPipeError, OSError):
                        waiting[worker_index].insert(0, job)
                        handle_crash(worker_index)
            # Wait on every busy worker's pipe at once: the first reply (or
            # EOF of a dying worker) wakes us, with no serial per-worker
            # poll latency.
            connection_owner = {
                self._workers[worker_index].connection: worker_index
                for worker_index, flight in in_flight.items()
                if flight
            }
            if not connection_owner:
                continue
            ready = multiprocessing.connection.wait(
                list(connection_owner), timeout=_POLL_INTERVAL_S
            )
            sweep_job_timeouts()
            if not ready:
                # No replies within the poll window; sweep for silent deaths
                # (a SIGKILLed worker's pipe usually reports EOF via wait,
                # but be defensive).
                for connection, worker_index in connection_owner.items():
                    if self._workers[worker_index].connection is not connection:
                        continue  # already respawned by the watchdog
                    if not self._workers[worker_index].alive():
                        handle_crash(worker_index)
                continue
            for connection in ready:
                worker_index = connection_owner[connection]
                if self._workers[worker_index].connection is not connection:
                    continue  # worker was respawned by the watchdog
                try:
                    reply = connection.recv()
                except (EOFError, BrokenPipeError, OSError):
                    handle_crash(worker_index)
                    continue
                handle_reply(worker_index, reply)
        if first_error is not None:
            raise RuntimeError(f"worker job failed:\n{first_error}")
        return results

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #
    def _check_open_locked(self) -> None:
        if self._closed:
            raise ServiceClosedError("worker pool is closed")

    def close(self) -> None:
        """Stops every worker (idempotent).

        Taken under the jobs lock: an in-flight ``run_batches`` finishes
        (including any crash-recovery respawns it performs) before teardown,
        so no worker process can be spawned after its pool is closed.
        """
        with self._jobs_lock:
            if self._closed:
                return
            self._closed = True
            for worker in self._workers:
                self._retire_locked(worker)


class PoolAutoscaler:
    """Turns queue depth and realized latency into pool-resize decisions.

    The policy is deliberately conservative:

    * **scale up** when the pending backlog exceeds
      ``scale_up_backlog_batches`` size-flushes *per worker* — the queue is
      growing faster than the current pool drains it — or when the
      realized-latency signals say the SLO is already slipping (see
      :meth:`decide`);
    * **scale down** when the queue has stayed below one batch *total* —
      and no latency signal has shown pressure — for ``idle_grace_s``:
      the pool is provably over-provisioned;
    * never outside ``[min_workers, max_workers]``, and never within
      ``cooldown_s`` of the previous resize (spawning a replica costs a
      model build; flapping would be worse than either steady state).

    The caller (the async front end's autoscale monitor) polls
    :meth:`decide` with the live queue depth and applies the returned
    target via ``PredictionService.scale_workers``.
    """

    def __init__(
        self,
        min_workers: int,
        max_workers: int,
        max_batch_size: int,
        cooldown_s: float = 2.0,
        idle_grace_s: float = 1.0,
        scale_up_backlog_batches: float = 2.0,
    ) -> None:
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if max_workers < min_workers:
            raise ValueError("need min_workers <= max_workers")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        self.min_workers = int(min_workers)
        self.max_workers = int(max_workers)
        self.max_batch_size = int(max_batch_size)
        self.cooldown_s = float(cooldown_s)
        self.idle_grace_s = float(idle_grace_s)
        self.scale_up_backlog_batches = float(scale_up_backlog_batches)
        self._last_resize_at: Optional[float] = None
        self._busy_since: Optional[float] = None  # last time the queue was busy

    @staticmethod
    def _signal(value: Optional[float]) -> Optional[float]:
        """Normalizes a latency signal: ``None``/NaN mean "no data"."""
        if value is None or math.isnan(value):
            return None
        return float(value)

    def decide(
        self,
        pending_blocks: int,
        num_workers: int,
        now: Optional[float] = None,
        *,
        flush_wait_p99_s: Optional[float] = None,
        batch_latency_s: Optional[float] = None,
        wait_budget_s: Optional[float] = None,
    ) -> int:
        """The worker count the pool should run right now.

        Besides the queue depth, the caller may pass realized-latency
        signals (``None``/NaN = no data, behave exactly as before):

        * ``flush_wait_p99_s`` — the recent p99 of realized flush waits.
          Exceeding ``wait_budget_s`` means clients are *already* waiting
          too long, however short the queue looks right now: scale up.
        * ``batch_latency_s`` — the typical wall time of one service
          flush.  ``pending / max_batch_size x batch_latency / workers``
          estimates how long draining the current backlog will take; a
          drain time over budget is pressure the pure depth threshold
          (which assumes flushes are instant) misses on slow models.

        Latency pressure also counts as "busy", so an over-budget pool is
        never scaled down no matter how shallow its queue.  Returns
        ``num_workers`` (no change) unless a resize is due; the caller is
        responsible for applying the change and may call again immediately
        (the cooldown starts from the *decision*).
        """
        now = time.monotonic() if now is None else now
        wait_p99 = self._signal(flush_wait_p99_s)
        batch_latency = self._signal(batch_latency_s)
        budget = self._signal(wait_budget_s)
        latency_pressure = False
        if budget is not None and budget > 0:
            if wait_p99 is not None and wait_p99 > budget:
                latency_pressure = True
            if batch_latency is not None and num_workers > 0:
                pending_batches = pending_blocks / self.max_batch_size
                drain_s = pending_batches * batch_latency / num_workers
                if drain_s > budget:
                    latency_pressure = True
        if (
            self._busy_since is None
            or pending_blocks >= self.max_batch_size
            or latency_pressure
        ):
            self._busy_since = now
        target = min(max(num_workers, self.min_workers), self.max_workers)
        if target != num_workers:
            pass  # out of bounds: clamp back regardless of cooldown
        elif self._last_resize_at is not None and (
            now - self._last_resize_at < self.cooldown_s
        ):
            return num_workers
        elif (
            pending_blocks
            >= self.scale_up_backlog_batches * self.max_batch_size * num_workers
            or latency_pressure
        ) and num_workers < self.max_workers:
            target = num_workers + 1
        elif (
            now - self._busy_since >= self.idle_grace_s
            and num_workers > self.min_workers
        ):
            target = num_workers - 1
        if target != num_workers:
            self._last_resize_at = now
        return target
