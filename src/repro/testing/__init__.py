"""Reusable test harnesses (numerical equivalence, golden corpora).

Kept inside the package — not under ``tests/`` — so benchmarks, CI legs and
downstream users can all import the same tolerance logic the unit tests
enforce.
"""

from repro.testing.equivalence import (
    EquivalenceReport,
    TaskEquivalence,
    assert_allclose_for_dtype,
    assert_prediction_equivalent,
    compare_predictions,
    load_golden,
    relative_errors,
    save_golden,
)
from repro.testing.gradcheck import GradcheckResult, gradcheck, numeric_gradient

__all__ = [
    "GradcheckResult",
    "gradcheck",
    "numeric_gradient",
    "EquivalenceReport",
    "TaskEquivalence",
    "assert_allclose_for_dtype",
    "assert_prediction_equivalent",
    "compare_predictions",
    "load_golden",
    "relative_errors",
    "save_golden",
]
