"""Tolerance-aware equivalence harness for mixed-precision inference.

The float32 inference mode (``inference_dtype="float32"``) is only safe to
ship if its predictions are *numerically equivalent* to the float64 path —
not bit-identical, which single precision cannot be, but within an explicit
tolerance contract.  This module is that contract, in executable form:

* :func:`relative_errors` — element-wise relative deviation with a robust
  denominator (``max(|a|, |b|, floor)``), so near-zero predictions do not
  manufacture infinite relative errors;
* :func:`compare_predictions` — per-task comparison of two prediction
  dicts, optionally against ground-truth labels, yielding an
  :class:`EquivalenceReport` with per-task max/mean relative error and the
  MAPE delta (in percentage points) the reduced precision costs;
* :func:`assert_prediction_equivalent` — the one-call harness used by
  ``tests/equivalence`` and the throughput benchmarks: predicts the same
  blocks with a reference (float64) and a candidate (float32) model and
  asserts both the relative-error tolerance and the MAPE-delta budget;
* :func:`save_golden` / :func:`load_golden` — checked-in golden float64
  predictions for a fixed seed corpus, so the float64 path itself is pinned
  against drift and float32 is judged against a stable reference.

The thresholds are arguments, not constants: the serving SLO owns them.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.isa.basic_block import BasicBlock
from repro.models.base import ThroughputModel
from repro.training.metrics import mape

__all__ = [
    "TaskEquivalence",
    "EquivalenceReport",
    "relative_errors",
    "compare_predictions",
    "assert_prediction_equivalent",
    "assert_allclose_for_dtype",
    "save_golden",
    "load_golden",
]

#: Denominator floor of :func:`relative_errors`.  Predictions are cycles per
#: hundred loop iterations, i.e. O(100); deviations below the floor are
#: judged absolutely rather than relatively.
DEFAULT_FLOOR = 1.0


def relative_errors(
    reference: np.ndarray, candidate: np.ndarray, floor: float = DEFAULT_FLOOR
) -> np.ndarray:
    """Element-wise relative deviation of ``candidate`` from ``reference``.

    Uses ``|a - b| / max(|a|, |b|, floor)``: symmetric in the operands and
    bounded even when an (untrained or adversarial) model predicts values
    near zero.
    """
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if reference.shape != candidate.shape:
        raise ValueError(
            f"shape mismatch: reference {reference.shape} vs candidate "
            f"{candidate.shape}"
        )
    denominator = np.maximum(
        np.maximum(np.abs(reference), np.abs(candidate)), float(floor)
    )
    return np.abs(reference - candidate) / denominator


@dataclass(frozen=True)
class TaskEquivalence:
    """Equivalence measurements of one prediction head.

    Attributes:
        task: Microarchitecture key of the head.
        max_rel_error: Worst element-wise relative deviation.
        mean_rel_error: Mean element-wise relative deviation.
        mape_reference: Reference-model MAPE against labels, in percent
            (``None`` without labels).
        mape_candidate: Candidate-model MAPE against labels, in percent.
        mape_delta: ``mape_candidate - mape_reference`` in percentage
            points — the accuracy the reduced precision actually costs.
    """

    task: str
    max_rel_error: float
    mean_rel_error: float
    mape_reference: Optional[float] = None
    mape_candidate: Optional[float] = None
    mape_delta: Optional[float] = None


@dataclass(frozen=True)
class EquivalenceReport:
    """Per-task equivalence of a candidate prediction set vs a reference."""

    tasks: tuple

    @property
    def max_rel_error(self) -> float:
        return max(entry.max_rel_error for entry in self.tasks)

    @property
    def max_abs_mape_delta(self) -> float:
        """Largest |MAPE delta| across tasks (0.0 when labels were absent)."""
        deltas = [
            abs(entry.mape_delta)
            for entry in self.tasks
            if entry.mape_delta is not None
        ]
        return max(deltas) if deltas else 0.0

    def summary(self) -> str:
        lines = []
        for entry in self.tasks:
            line = (
                f"{entry.task}: rel err max={entry.max_rel_error:.2e} "
                f"mean={entry.mean_rel_error:.2e}"
            )
            if entry.mape_delta is not None:
                line += (
                    f", MAPE {entry.mape_reference:.3f}% -> "
                    f"{entry.mape_candidate:.3f}% "
                    f"(delta {entry.mape_delta:+.3f} pp)"
                )
            lines.append(line)
        return "\n".join(lines)


def compare_predictions(
    reference: Mapping[str, np.ndarray],
    candidate: Mapping[str, np.ndarray],
    labels: Optional[Mapping[str, np.ndarray]] = None,
    floor: float = DEFAULT_FLOOR,
) -> EquivalenceReport:
    """Builds an :class:`EquivalenceReport` from two prediction dicts.

    Args:
        reference: Per-task reference predictions (typically float64).
        candidate: Per-task candidate predictions (typically float32).
        labels: Optional per-task ground truth; enables the MAPE columns.
        floor: Denominator floor of :func:`relative_errors`.
    """
    missing = sorted(set(reference) - set(candidate))
    if missing:
        raise KeyError(f"candidate predictions are missing tasks: {missing}")
    entries: List[TaskEquivalence] = []
    for task in reference:
        errors = relative_errors(reference[task], candidate[task], floor=floor)
        mape_reference = mape_candidate = mape_delta = None
        if labels is not None and task in labels:
            actual = np.asarray(labels[task], dtype=np.float64)
            mape_reference = 100.0 * mape(np.asarray(reference[task]), actual)
            mape_candidate = 100.0 * mape(np.asarray(candidate[task]), actual)
            mape_delta = mape_candidate - mape_reference
        entries.append(
            TaskEquivalence(
                task=task,
                max_rel_error=float(errors.max()) if errors.size else 0.0,
                mean_rel_error=float(errors.mean()) if errors.size else 0.0,
                mape_reference=mape_reference,
                mape_candidate=mape_candidate,
                mape_delta=mape_delta,
            )
        )
    return EquivalenceReport(tasks=tuple(entries))


def assert_prediction_equivalent(
    model64: ThroughputModel,
    model32: ThroughputModel,
    blocks: Sequence[BasicBlock],
    rel_tol: float = 1e-3,
    mape_budget: float = 0.5,
    labels: Optional[Mapping[str, np.ndarray]] = None,
    batch_size: Optional[int] = None,
    floor: float = DEFAULT_FLOOR,
) -> EquivalenceReport:
    """Asserts the two models' predictions are numerically equivalent.

    Predicts ``blocks`` with both models and raises :class:`AssertionError`
    (with the full per-task report in the message) unless:

    * every element-wise relative deviation is at most ``rel_tol``, and
    * with ``labels``, every per-task |MAPE delta| is at most
      ``mape_budget`` percentage points — the acceptance criterion of the
      mixed-precision serving mode.

    The models are expected to hold identical weights (same seed or an
    explicit ``load_state_dict``); the harness verifies the *dtype* contract,
    not training.  Returns the report for printing/recording on success.
    """
    if not len(blocks):
        raise ValueError("cannot check equivalence on an empty block list")
    reference = model64.predict(blocks, batch_size=batch_size)
    candidate = model32.predict(blocks, batch_size=batch_size)
    report = compare_predictions(reference, candidate, labels=labels, floor=floor)
    problems = []
    if report.max_rel_error > rel_tol:
        problems.append(
            f"max relative error {report.max_rel_error:.3e} exceeds "
            f"rel_tol {rel_tol:.3e}"
        )
    if labels is not None and report.max_abs_mape_delta > mape_budget:
        problems.append(
            f"|MAPE delta| {report.max_abs_mape_delta:.3f} pp exceeds "
            f"budget {mape_budget:.3f} pp"
        )
    if problems:
        raise AssertionError(
            f"{model32.inference_dtype} predictions are not equivalent to "
            f"{model64.inference_dtype}: " + "; ".join(problems) + "\n"
            + report.summary()
        )
    return report


def assert_allclose_for_dtype(
    actual,
    desired,
    dtype,
    strict_rtol: float = 1e-9,
    rtol32: float = 1e-5,
    atol32: float = 1e-4,
) -> None:
    """``assert_allclose`` whose tolerance follows the inference dtype.

    Float64 inference is bit-stable across batching, sharding and process
    boundaries, so tests hold it to ``strict_rtol``.  Float32 (e.g. under
    the ``INFERENCE_DTYPE=float32`` CI leg) is a tolerance contract instead:
    BLAS kernels may round differently across micro-batch shapes, so
    equality is judged at single-precision resolution (``rtol32/atol32``).
    ``dtype`` accepts a name ("float32") or a numpy dtype — pass the
    model's or service's ``inference_dtype``.
    """
    if np.dtype(dtype) == np.float32:
        np.testing.assert_allclose(actual, desired, rtol=rtol32, atol=atol32)
    else:
        np.testing.assert_allclose(actual, desired, rtol=strict_rtol)


# ---------------------------------------------------------------------- #
# Golden prediction files.
# ---------------------------------------------------------------------- #
def save_golden(
    path: str,
    predictions: Mapping[str, np.ndarray],
    metadata: Optional[Mapping[str, object]] = None,
) -> None:
    """Writes per-task float64 predictions (plus metadata) as JSON.

    JSON keeps goldens reviewable in diffs; float64 values round-trip
    exactly through ``repr``-style JSON floats.
    """
    payload = {
        "metadata": dict(metadata or {}),
        "predictions": {
            task: [float(value) for value in np.asarray(values).reshape(-1)]
            for task, values in predictions.items()
        },
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_golden(path: str) -> tuple:
    """Loads ``(predictions, metadata)`` saved by :func:`save_golden`."""
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"golden prediction file not found: {path} "
            "(regenerate with `python tests/equivalence/harness.py --regenerate`)"
        )
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    predictions: Dict[str, np.ndarray] = {
        task: np.asarray(values, dtype=np.float64)
        for task, values in payload["predictions"].items()
    }
    return predictions, payload.get("metadata", {})
