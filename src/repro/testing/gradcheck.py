"""Numeric gradient checking (central difference vs. analytic backward).

Every hand-written backward in the autodiff engine — and in particular the
fused training-fast-path ops of :mod:`repro.nn.fused` — is verified against
central-difference gradients by ``tests/test_nn_gradcheck.py`` using this
harness.  It is kept inside the package (like
:mod:`repro.testing.equivalence`) so future ops can be checked from
anywhere, including one-off scripts.

Usage::

    weight = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    gradcheck(lambda: fused_dense(inputs, weight, None, "relu"),
              {"weight": weight})

The callable rebuilds the output from the *current* values of the checked
tensors on every invocation; the harness perturbs each entry of each
tensor's ``data`` in place, reduces the output to a scalar through a fixed
random projection (so every output element influences the loss), and
compares the resulting finite differences against the gradients produced by
``backward()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Union

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["GradcheckResult", "gradcheck", "numeric_gradient"]


@dataclass(frozen=True)
class GradcheckResult:
    """Outcome of one tensor's gradient comparison."""

    name: str
    max_abs_error: float
    passed: bool


def numeric_gradient(
    function: Callable[[], float], array: np.ndarray, epsilon: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``function()`` w.r.t. ``array``.

    ``array`` is perturbed in place (and restored), so ``function`` must
    read it afresh on every call.
    """
    gradient = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    flat_gradient = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = function()
        flat[index] = original - epsilon
        minus = function()
        flat[index] = original
        flat_gradient[index] = (plus - minus) / (2.0 * epsilon)
    return gradient


def gradcheck(
    build_output: Callable[[], Union[Tensor, np.ndarray]],
    tensors: Dict[str, Tensor],
    epsilon: float = 1e-6,
    atol: float = 1e-6,
    rtol: float = 1e-4,
    projection_seed: int = 0,
) -> List[GradcheckResult]:
    """Checks analytic gradients of ``build_output()`` against central
    differences, for every tensor in ``tensors``.

    Args:
        build_output: Rebuilds the op under test from the current values of
            ``tensors`` and returns its output (a :class:`Tensor` of any
            shape; raw arrays are accepted for ops that collapse to numpy
            under some configurations).
        tensors: Name → tensor (``requires_grad=True``) whose gradients are
            compared.
        epsilon: Central-difference step.
        atol / rtol: Tolerances of the comparison
            (``np.testing.assert_allclose`` semantics).
        projection_seed: Seed of the fixed random projection that reduces
            the output to a scalar.

    Returns:
        One :class:`GradcheckResult` per checked tensor (all passed — a
        failure raises ``AssertionError`` with the offending tensors).
    """
    reference = build_output()
    reference_data = reference.data if isinstance(reference, Tensor) else np.asarray(reference)
    projection = np.random.default_rng(projection_seed).normal(size=reference_data.shape)

    def scalar() -> float:
        value = build_output()
        data = value.data if isinstance(value, Tensor) else np.asarray(value)
        return float((data * projection).sum())

    for tensor in tensors.values():
        tensor.zero_grad()
    loss = (build_output() * Tensor(projection)).sum()
    loss.backward()

    results: List[GradcheckResult] = []
    failures: List[str] = []
    for name, tensor in tensors.items():
        analytic = (
            tensor.grad.copy() if tensor.grad is not None else np.zeros_like(tensor.data)
        )
        numeric = numeric_gradient(scalar, tensor.data, epsilon=epsilon)
        max_abs_error = float(np.max(np.abs(analytic - numeric))) if analytic.size else 0.0
        passed = bool(
            np.allclose(analytic, numeric, rtol=rtol, atol=atol, equal_nan=False)
        )
        results.append(GradcheckResult(name=name, max_abs_error=max_abs_error, passed=passed))
        if not passed:
            failures.append(f"{name}: max |analytic - numeric| = {max_abs_error:.3e}")
    if failures:
        raise AssertionError("gradient check failed for " + "; ".join(failures))
    return results
