"""Training loop, checkpoint selection and evaluation metrics."""

from repro.training.metrics import (
    RegressionMetrics,
    compute_metrics,
    mape,
    pearson_correlation,
    prediction_heatmap,
    relative_error_histogram,
    spearman_correlation,
    underestimation_fraction,
)
from repro.training.trainer import (
    StepResult,
    Trainer,
    TrainingHistory,
    evaluate_model,
)

__all__ = [
    "RegressionMetrics",
    "compute_metrics",
    "mape",
    "pearson_correlation",
    "prediction_heatmap",
    "relative_error_histogram",
    "spearman_correlation",
    "underestimation_fraction",
    "StepResult",
    "Trainer",
    "TrainingHistory",
    "evaluate_model",
]
