"""Evaluation metrics and analysis tools.

The paper reports three headline metrics for every model and
microarchitecture (Tables 5, 6, 8): the Mean Absolute Percentage Error
(MAPE), the Spearman rank correlation and the Pearson linear correlation
between measured and predicted throughputs.  It additionally analyses the
models with prediction heatmaps (Figures 3 and 5) and relative-error
histograms (Figure 4).  All of those are implemented here on plain numpy
arrays, independent of any model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats

from repro.nn.losses import ZERO_TARGET_THRESHOLD

__all__ = [
    "RegressionMetrics",
    "compute_metrics",
    "mape",
    "spearman_correlation",
    "pearson_correlation",
    "prediction_heatmap",
    "relative_error_histogram",
]


# Targets with |value| <= ZERO_TARGET_THRESHOLD (imported from the training
# losses so the exclusion sets stay in sync) are excluded from the
# relative-error metrics; a single zero target would otherwise contribute an
# ``|error| / epsilon`` term of order 1e9, poisoning the Table 5/6 MAPE
# columns.


def _validate(predicted: np.ndarray, actual: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    predicted = np.asarray(predicted, dtype=np.float64).reshape(-1)
    actual = np.asarray(actual, dtype=np.float64).reshape(-1)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"prediction/label shape mismatch: {predicted.shape} vs {actual.shape}"
        )
    if predicted.size == 0:
        raise ValueError("cannot compute metrics on empty arrays")
    return predicted, actual


def mape(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Mean absolute percentage error over non-zero targets, as a fraction."""
    predicted, actual = _validate(predicted, actual)
    valid = np.abs(actual) > ZERO_TARGET_THRESHOLD
    if not np.any(valid):
        return 0.0
    errors = np.abs(actual[valid] - predicted[valid]) / np.abs(actual[valid])
    return float(np.mean(errors))


def spearman_correlation(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Spearman rank correlation between predictions and measurements."""
    predicted, actual = _validate(predicted, actual)
    if np.allclose(predicted, predicted[0]) or np.allclose(actual, actual[0]):
        return 0.0
    result = stats.spearmanr(actual, predicted)
    value = float(result.statistic if hasattr(result, "statistic") else result[0])
    return 0.0 if np.isnan(value) else value


def pearson_correlation(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Pearson linear correlation between predictions and measurements."""
    predicted, actual = _validate(predicted, actual)
    if np.allclose(predicted, predicted[0]) or np.allclose(actual, actual[0]):
        return 0.0
    result = stats.pearsonr(actual, predicted)
    value = float(result.statistic if hasattr(result, "statistic") else result[0])
    return 0.0 if np.isnan(value) else value


@dataclass(frozen=True)
class RegressionMetrics:
    """The metric triple reported in the paper's tables.

    Attributes:
        mape: Mean absolute percentage error (fraction).
        spearman: Spearman rank correlation.
        pearson: Pearson linear correlation.
        num_samples: Number of evaluated blocks.
    """

    mape: float
    spearman: float
    pearson: float
    num_samples: int

    def format_row(self) -> str:
        """Formats the metrics in the style used by Tables 5/6/8."""
        return (
            f"MAPE {self.mape * 100.0:5.2f}%  "
            f"Spearman {self.spearman:.4f} / Pearson {self.pearson:.4f}"
        )


def compute_metrics(predicted: np.ndarray, actual: np.ndarray) -> RegressionMetrics:
    """Computes MAPE, Spearman and Pearson in one call."""
    predicted, actual = _validate(predicted, actual)
    return RegressionMetrics(
        mape=mape(predicted, actual),
        spearman=spearman_correlation(predicted, actual),
        pearson=pearson_correlation(predicted, actual),
        num_samples=int(predicted.size),
    )


def prediction_heatmap(
    predicted: np.ndarray,
    actual: np.ndarray,
    max_cycles: float = 10.0,
    num_bins: int = 50,
    normalization: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """2-D histogram of measured vs predicted throughput (Figures 3 and 5).

    The paper normalises throughputs "to a single run of each basic block"
    and plots values under 10 cycles; ``normalization`` divides both axes
    (use 100 when the inputs are per-100-iteration values) and
    ``max_cycles`` crops the plot range.

    Returns:
        ``(histogram, x_edges, y_edges)`` where ``histogram[i, j]`` counts
        blocks whose measured value falls in x-bin ``i`` and predicted value
        in y-bin ``j``.
    """
    predicted, actual = _validate(predicted, actual)
    measured_axis = actual / normalization
    predicted_axis = predicted / normalization
    mask = (measured_axis <= max_cycles) & (predicted_axis <= max_cycles)
    edges = np.linspace(0.0, max_cycles, num_bins + 1)
    histogram, x_edges, y_edges = np.histogram2d(
        measured_axis[mask], predicted_axis[mask], bins=(edges, edges)
    )
    return histogram, x_edges, y_edges


def relative_error_histogram(
    predicted: np.ndarray,
    actual: np.ndarray,
    limit: float = 1.5,
    num_bins: int = 60,
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of signed relative errors (Figure 4).

    The relative error is ``(predicted - actual) / actual``; negative values
    are underestimates.  The paper plots the range [-1.5, 1.5].

    Returns:
        ``(counts, bin_edges)`` as produced by ``numpy.histogram``.
    """
    predicted, actual = _validate(predicted, actual)
    valid = np.abs(actual) > ZERO_TARGET_THRESHOLD
    relative_error = (predicted[valid] - actual[valid]) / np.abs(actual[valid])
    clipped = np.clip(relative_error, -limit, limit)
    return np.histogram(clipped, bins=num_bins, range=(-limit, limit))


def underestimation_fraction(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Fraction of blocks whose throughput is underestimated.

    Used to verify the paper's observation that Ithemal "has a tendency to
    underestimate" while GRANITE is balanced (Section 5.1).
    """
    predicted, actual = _validate(predicted, actual)
    return float(np.mean(predicted < actual))
